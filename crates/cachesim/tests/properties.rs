//! Property-based tests for the cache simulator's core invariants.

use ccp_cachesim::{
    AccessKind, AccessOutcome, HierarchyConfig, MemoryHierarchy, SetAssociativeCache, WayMask,
};
use proptest::prelude::*;

proptest! {
    /// Any contiguous mask accepted by `new` round-trips through bits().
    #[test]
    fn mask_roundtrip(start in 0u32..28, len in 1u32..5) {
        let bits = (((1u64 << len) - 1) as u32) << start;
        let m = WayMask::new(bits).unwrap();
        prop_assert_eq!(m.bits(), bits);
        prop_assert_eq!(m.way_count(), len);
    }

    /// from_ways(n) always yields n ways and is contiguous from bit 0.
    #[test]
    fn from_ways_consistent(n in 1u32..=32) {
        let m = WayMask::from_ways(n).unwrap();
        prop_assert_eq!(m.way_count(), n);
        prop_assert!(m.allows(0));
        prop_assert!(m.allows(n - 1));
        if n < 32 { prop_assert!(!m.allows(n)); }
    }

    /// A line just accessed is always present immediately after.
    #[test]
    fn access_installs_line(lines in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut c = SetAssociativeCache::new(16 * 1024, 8);
        let mask = WayMask::from_ways(8).unwrap();
        for &l in &lines {
            c.access(l, mask);
            prop_assert!(c.probe(l), "line {} must be present right after access", l);
        }
    }

    /// Occupancy never exceeds capacity, regardless of the access pattern.
    #[test]
    fn occupancy_bounded(lines in proptest::collection::vec(0u64..100_000, 1..500)) {
        let mut c = SetAssociativeCache::new(4 * 1024, 4);
        let mask = WayMask::from_ways(4).unwrap();
        for &l in &lines {
            c.access(l, mask);
        }
        prop_assert!(c.occupancy() <= 64); // 4 KiB / 64 B lines
    }

    /// With a mask of k ways, a stream can never occupy more than k ways of
    /// any set it did not already own lines in.
    #[test]
    fn masked_footprint_bounded(k in 1u32..4, n in 1u64..500) {
        let mut c = SetAssociativeCache::new(4 * 1024, 8); // 8 sets
        let mask = WayMask::from_ways(k).unwrap();
        // Stream n distinct lines all mapping to set 0 (multiples of 8).
        for i in 0..n {
            c.access(i * 8, mask);
        }
        // At most k of them can be resident.
        let resident = (0..n).filter(|i| c.probe(i * 8)).count() as u64;
        prop_assert!(resident <= u64::from(k));
    }

    /// Determinism: replaying the same access sequence on a fresh hierarchy
    /// yields identical statistics and clocks.
    #[test]
    fn hierarchy_deterministic(addrs in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let run = |addrs: &[u64]| {
            let mut m = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
            for &a in addrs {
                m.access(0, a, AccessKind::Read);
            }
            (m.clock_centi(0), *m.stats(0))
        };
        prop_assert_eq!(run(&addrs), run(&addrs));
    }

    /// The clock is monotonically non-decreasing and every access costs
    /// something.
    #[test]
    fn clock_monotone(addrs in proptest::collection::vec(0u64..100_000, 1..300)) {
        let mut m = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
        let mut last = 0;
        for &a in &addrs {
            m.access(0, a, AccessKind::Read);
            let now = m.clock_centi(0);
            prop_assert!(now > last);
            last = now;
        }
    }

    /// L2 stats partition: every demand access is exactly one of
    /// {l2 hit, llc hit, llc miss}.
    #[test]
    fn stats_partition(addrs in proptest::collection::vec(0u64..500_000, 1..400)) {
        let mut m = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
        for &a in &addrs {
            m.access(0, a, AccessKind::Read);
        }
        let s = m.stats(0);
        prop_assert_eq!(s.l2.accesses(), addrs.len() as u64);
        prop_assert_eq!(s.l2.misses, s.llc.accesses());
    }

    /// A narrower mask never yields a *better* hit count than a wider one
    /// for the same single-stream trace (LRU inclusion property analogue).
    #[test]
    fn wider_mask_never_worse(seed in 0u64..1000) {
        // Pseudo-random but deterministic trace over a working set larger
        // than the narrow partition and smaller than the wide one.
        let mut x = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut trace = Vec::with_capacity(400);
        for _ in 0..400 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            trace.push((x >> 16) % (32 * 1024)); // 32 KiB working set
        }
        let hits_with = |ways: u32| {
            let mut m = MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), 1);
            m.set_mask(0, WayMask::from_ways(ways).unwrap());
            for &a in &trace {
                m.access(0, a, AccessKind::Read);
            }
            m.stats(0).llc.hits + m.stats(0).l2.hits
        };
        prop_assert!(hits_with(8) >= hits_with(2));
    }
}

#[test]
fn miss_outcome_reports_eviction() {
    let mut c = SetAssociativeCache::new(4 * 1024, 4);
    let mask = WayMask::from_ways(4).unwrap();
    // 16 sets; fill set 0's four ways then overflow it.
    for i in 0..4 {
        assert!(matches!(
            c.access(i * 16, mask),
            AccessOutcome::Miss { evicted: None }
        ));
    }
    match c.access(4 * 16, mask) {
        AccessOutcome::Miss { evicted: Some(old) } => assert_eq!(old, 0),
        other => panic!("expected eviction of LRU line, got {other:?}"),
    }
}
