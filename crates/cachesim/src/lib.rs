//! # ccp-cachesim
//!
//! A deterministic set-associative cache-hierarchy simulator with Intel
//! CAT-style *way-mask* allocation control.
//!
//! The simulator models the memory system of the paper's testbed (an Intel
//! Xeon E5-2699 v4): private L2 caches, a shared inclusive last-level cache
//! (LLC) partitionable by way masks, a stream prefetcher, and a DRAM channel
//! with finite bandwidth and queuing. It is the substrate on which the
//! simulated database operators of `ccp-engine` replay their memory-access
//! patterns, which is what lets this repository regenerate every figure of
//! the paper on hardware without Cache Allocation Technology.
//!
//! ## CAT semantics
//!
//! Intel CAT restricts *allocation*, not *lookup*: a core whose class of
//! service has way mask `m` may hit on a line cached in **any** way, but when
//! it misses, the victim line is chosen only among the ways set in `m`.
//! [`SetAssociativeCache::access`] implements exactly this.
//!
//! ## Determinism
//!
//! There is no wall-clock time and no hidden randomness anywhere in this
//! crate: the same access sequence always produces the same hit/miss
//! sequence, cycle counts and statistics. This is what makes the experiment
//! harness reproducible.
//!
//! ## Quick example
//!
//! ```
//! use ccp_cachesim::{HierarchyConfig, MemoryHierarchy, WayMask, AccessKind};
//!
//! let mut mem = MemoryHierarchy::new(HierarchyConfig::broadwell_e5_2699_v4(), 2);
//! // Restrict stream 1 to 10% of the LLC (2 of 20 ways), like the paper's
//! // polluting column scan.
//! mem.set_mask(1, WayMask::from_ways(2).unwrap());
//! let cost = mem.access(0, 0x1000, AccessKind::Read);
//! assert!(cost > 0);
//! ```

pub mod addr;
pub mod cache;
pub mod config;
pub mod dram;
pub mod hierarchy;
pub mod mask;
pub mod prefetch;
pub mod stats;

pub use addr::{AddrSpace, Region};
pub use cache::{AccessOutcome, ReplacementPolicy, SetAssociativeCache};
pub use config::{CacheLevelConfig, CostModel, DramConfig, HierarchyConfig};
pub use dram::DramChannel;
pub use hierarchy::{AccessKind, MemoryHierarchy, StreamId};
pub use mask::{MaskError, WayMask, MAX_WAYS};
pub use stats::{CacheStats, StreamStats};

/// Size of a cache line in bytes. Fixed at 64 across all modeled levels,
/// matching every Intel server microarchitecture since Nehalem.
pub const LINE_BYTES: u64 = 64;

/// Returns the cache-line index of a byte address.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr / LINE_BYTES
}
