//! A single set-associative cache level with CAT-style masked allocation.
//!
//! The cache stores only line *tags* (no data — the simulator cares about
//! hit/miss behaviour, not values) with true-LRU replacement. Allocation is
//! restricted by a [`WayMask`]: hits are honoured in any way, but a fill may
//! only victimize ways the accessing stream's mask allows. This mirrors what
//! Intel CAT does in hardware and what the paper exploits.

use crate::mask::WayMask;
use serde::{Deserialize, Serialize};

/// Sentinel for an invalid (empty) way.
const INVALID: u64 = u64::MAX;

/// Replacement policy of a cache level.
///
/// The paper's Broadwell LLC is not strictly LRU — Intel server parts use
/// adaptive RRIP-family policies that resist streaming pollution, which is
/// one reason the paper's *unpartitioned* co-run numbers degrade less than
/// a strict-LRU model predicts. The simulator supports all three so the
/// `abl_replacement` ablation can quantify that divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// True least-recently-used (per-way timestamps).
    #[default]
    Lru,
    /// Static RRIP with 2-bit re-reference prediction values: lines are
    /// inserted "distant" (RRPV 2), promoted to 0 on hit, victims are
    /// RRPV 3 lines. Streaming lines age out before re-used lines.
    Srrip,
    /// Deterministic pseudo-random victim among the allowed ways.
    Random,
}

/// Maximum RRPV for the 2-bit SRRIP policy.
const RRPV_MAX: u64 = 3;
/// Insertion RRPV ("long re-reference interval").
const RRPV_INSERT: u64 = 2;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was filled; `evicted` is the line that was displaced, if the
    /// chosen victim way held a valid line. The hierarchy uses it to
    /// back-invalidate inner caches (the modeled LLC is inclusive).
    Miss { evicted: Option<u64> },
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// A set-associative, tag-only cache with a configurable replacement
/// policy (default: true LRU).
#[derive(Debug, Clone)]
pub struct SetAssociativeCache {
    sets: u64,
    ways: u32,
    /// `sets * ways` tags, row-major by set. `INVALID` marks an empty way.
    tags: Vec<u64>,
    /// Per-way replacement metadata parallel to `tags`: LRU timestamps or
    /// SRRIP re-reference prediction values, depending on the policy.
    stamps: Vec<u64>,
    tick: u64,
    policy: ReplacementPolicy,
    /// xorshift state for `ReplacementPolicy::Random` (deterministic).
    rng: u64,
}

impl SetAssociativeCache {
    /// Creates an empty LRU cache of `size_bytes` with `ways` ways.
    ///
    /// # Panics
    /// Panics if the geometry yields zero sets or `ways` is 0 or > 32 —
    /// these are programming errors in configuration code, not runtime
    /// conditions.
    pub fn new(size_bytes: u64, ways: u32) -> Self {
        Self::with_policy(size_bytes, ways, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    ///
    /// # Panics
    /// See [`SetAssociativeCache::new`].
    pub fn with_policy(size_bytes: u64, ways: u32, policy: ReplacementPolicy) -> Self {
        assert!(
            (1..=32).contains(&ways),
            "associativity must be in 1..=32, got {ways}"
        );
        let sets = size_bytes / (u64::from(ways) * crate::LINE_BYTES);
        assert!(
            sets > 0,
            "cache of {size_bytes} B with {ways} ways has no sets"
        );
        let slots = (sets * u64::from(ways)) as usize;
        SetAssociativeCache {
            sets,
            ways,
            tags: vec![INVALID; slots],
            stamps: vec![0; slots],
            tick: 0,
            policy,
            rng: 0x853c_49e6_748f_ea9b,
        }
    }

    /// The cache's replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    #[inline]
    pub fn ways(&self) -> u32 {
        self.ways
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line % self.sets) as usize * self.ways as usize
    }

    /// Accesses `line` under allocation mask `mask`.
    ///
    /// A hit promotes the line (LRU stamp / RRPV 0) regardless of the
    /// mask. A miss fills a victim way *among the ways `mask` allows*,
    /// returning the displaced line if one was valid.
    pub fn access(&mut self, line: u64, mask: WayMask) -> AccessOutcome {
        let base = self.set_of(line);
        self.tick += 1;
        // Hit path: CAT does not restrict lookups.
        for w in 0..self.ways as usize {
            if self.tags[base + w] == line {
                self.stamps[base + w] = match self.policy {
                    ReplacementPolicy::Lru | ReplacementPolicy::Random => self.tick,
                    ReplacementPolicy::Srrip => 0, // "near-immediate re-reference"
                };
                return AccessOutcome::Hit;
            }
        }
        // Miss: victimize only within the mask; invalid ways always first.
        let victim = match self.find_invalid_way(base, mask) {
            Some(idx) => idx,
            None => match self.policy {
                ReplacementPolicy::Lru => self.lru_victim(base, mask),
                ReplacementPolicy::Srrip => self.srrip_victim(base, mask),
                ReplacementPolicy::Random => self.random_victim(base, mask),
            },
        };
        let evicted = match self.tags[victim] {
            INVALID => None,
            old => Some(old),
        };
        self.tags[victim] = line;
        self.stamps[victim] = match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Random => self.tick,
            ReplacementPolicy::Srrip => RRPV_INSERT,
        };
        AccessOutcome::Miss { evicted }
    }

    #[inline]
    fn find_invalid_way(&self, base: usize, mask: WayMask) -> Option<usize> {
        (0..self.ways)
            .filter(|&w| mask.allows(w))
            .map(|w| base + w as usize)
            .find(|&idx| self.tags[idx] == INVALID)
    }

    fn lru_victim(&self, base: usize, mask: WayMask) -> usize {
        let mut victim = usize::MAX;
        let mut victim_stamp = u64::MAX;
        for w in 0..self.ways {
            if !mask.allows(w) {
                continue;
            }
            let idx = base + w as usize;
            if self.stamps[idx] < victim_stamp {
                victim_stamp = self.stamps[idx];
                victim = idx;
            }
        }
        debug_assert!(
            victim != usize::MAX,
            "non-empty mask always yields a victim"
        );
        victim
    }

    fn srrip_victim(&mut self, base: usize, mask: WayMask) -> usize {
        // Find an allowed way at RRPV_MAX; if none, age all allowed ways
        // and retry — the standard SRRIP search, bounded by RRPV_MAX
        // rounds.
        loop {
            for w in 0..self.ways {
                if !mask.allows(w) {
                    continue;
                }
                let idx = base + w as usize;
                if self.stamps[idx] >= RRPV_MAX {
                    return idx;
                }
            }
            for w in 0..self.ways {
                if mask.allows(w) {
                    let idx = base + w as usize;
                    self.stamps[idx] += 1;
                }
            }
        }
    }

    fn random_victim(&mut self, base: usize, mask: WayMask) -> usize {
        // xorshift64*; pick the n-th allowed way.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let allowed = mask.way_count();
        let pick = (self.rng % u64::from(allowed)) as u32;
        let mut seen = 0;
        for w in 0..self.ways {
            if mask.allows(w) {
                if seen == pick {
                    return base + w as usize;
                }
                seen += 1;
            }
        }
        unreachable!("mask has {allowed} allowed ways, pick {pick} must exist")
    }

    /// Checks presence without touching LRU state.
    pub fn probe(&self, line: u64) -> bool {
        let base = self.set_of(line);
        (0..self.ways as usize).any(|w| self.tags[base + w] == line)
    }

    /// Removes `line` if present; returns whether it was present. Used for
    /// inclusive back-invalidation.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let base = self.set_of(line);
        for w in 0..self.ways as usize {
            if self.tags[base + w] == line {
                self.tags[base + w] = INVALID;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently cached.
    pub fn occupancy(&self) -> u64 {
        self.tags.iter().filter(|&&t| t != INVALID).count() as u64
    }

    /// Empties the cache.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full8() -> WayMask {
        WayMask::from_ways(8).unwrap()
    }

    /// 8 sets x 8 ways cache for testing (4 KiB).
    fn small() -> SetAssociativeCache {
        SetAssociativeCache::new(4096, 8)
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.sets(), 8);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(matches!(
            c.access(42, full8()),
            AccessOutcome::Miss { evicted: None }
        ));
        assert!(c.access(42, full8()).is_hit());
        assert!(c.probe(42));
    }

    #[test]
    fn lru_evicts_oldest_within_set() {
        let mut c = small();
        // Lines 0, 8, 16, ... all map to set 0 (8 sets). Fill all 8 ways.
        for i in 0..8 {
            c.access(i * 8, full8());
        }
        // Touch line 0 so it is most recently used.
        c.access(0, full8());
        // Next fill in set 0 must evict line 8 (the LRU one), not line 0.
        let out = c.access(64, full8());
        assert_eq!(out, AccessOutcome::Miss { evicted: Some(8) });
        assert!(c.probe(0));
        assert!(!c.probe(8));
    }

    #[test]
    fn masked_fill_only_victimizes_allowed_ways() {
        let mut c = small();
        let full = full8();
        let low2 = WayMask::from_ways(2).unwrap();
        // Fill set 0 completely with a full mask.
        for i in 0..8 {
            c.access(i * 8, full);
        }
        // A stream restricted to 2 ways churns through set 0: it may evict
        // at most the lines in ways 0 and 1, leaving 6 resident lines
        // untouched no matter how many lines it streams.
        for i in 100..200 {
            c.access(i * 8, low2);
        }
        let survivors = (0..8).filter(|i| c.probe(i * 8)).count();
        assert_eq!(
            survivors, 6,
            "masked stream must not evict beyond its 2 ways"
        );
    }

    #[test]
    fn masked_stream_hits_outside_its_ways() {
        let mut c = small();
        let full = full8();
        let low2 = WayMask::from_ways(2).unwrap();
        // Owner fills way 2.. with line 7*8 somewhere beyond the low ways.
        for i in 0..8 {
            c.access(i * 8, full);
        }
        // The restricted stream still *hits* on any resident line: CAT
        // restricts allocation, not lookup.
        assert!(c.access(7 * 8, low2).is_hit());
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(5, full8());
        assert!(c.invalidate(5));
        assert!(!c.probe(5));
        assert!(!c.invalidate(5));
    }

    #[test]
    fn occupancy_and_flush() {
        let mut c = small();
        for i in 0..10 {
            c.access(i, full8());
        }
        assert_eq!(c.occupancy(), 10);
        c.flush();
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn single_way_mask_thrashes_itself() {
        let mut c = small();
        let one = WayMask::from_ways(1).unwrap();
        // Two alternating lines in the same set with a 1-way mask never hit.
        let mut hits = 0;
        for _ in 0..10 {
            if c.access(0, one).is_hit() {
                hits += 1;
            }
            if c.access(8, one).is_hit() {
                hits += 1;
            }
        }
        assert_eq!(hits, 0);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn rejects_zero_ways() {
        let _ = SetAssociativeCache::new(4096, 0);
    }

    #[test]
    fn srrip_protects_reused_lines_from_streaming() {
        let mut c = SetAssociativeCache::with_policy(4096, 8, ReplacementPolicy::Srrip);
        let full = full8();
        // Establish a hot line in set 0 (insert + hit -> RRPV 0), re-used
        // every few accesses, while 32 distinct streaming lines pass
        // through the set (RRPV 2 inserts, never re-used).
        c.access(0, full);
        c.access(0, full);
        for i in 1..=32u64 {
            c.access(i * 8, full);
            if i % 4 == 0 {
                c.access(0, full); // periodic re-use
            }
        }
        assert!(c.probe(0), "SRRIP must keep the re-used line resident");
    }

    #[test]
    fn lru_evicts_reused_line_under_the_same_stream() {
        // Scan resistance: a line re-used every 12 streaming fills. Under
        // 8-way LRU the 12 intervening fills always push it out; under
        // 2-bit SRRIP a hit resets its RRPV to 0 and ~3 aging passes
        // (~21 fills) must elapse before it becomes a victim, so it
        // survives between re-uses.
        let mut c = SetAssociativeCache::with_policy(4096, 8, ReplacementPolicy::Lru);
        let mut s = SetAssociativeCache::with_policy(4096, 8, ReplacementPolicy::Srrip);
        let full = full8();
        // Establish the hot line: insert, then hit (SRRIP RRPV -> 0).
        c.access(0, full);
        c.access(0, full);
        s.access(0, full);
        s.access(0, full);
        let mut lru_misses_on_hot = 0;
        let mut srrip_misses_on_hot = 0;
        for i in 1..=120u64 {
            c.access(i * 8, full);
            s.access(i * 8, full);
            if i % 12 == 0 {
                if !c.access(0, full).is_hit() {
                    lru_misses_on_hot += 1;
                }
                if !s.access(0, full).is_hit() {
                    srrip_misses_on_hot += 1;
                }
            }
        }
        assert!(
            srrip_misses_on_hot < lru_misses_on_hot,
            "SRRIP ({srrip_misses_on_hot}) must miss the hot line less than LRU ({lru_misses_on_hot})"
        );
    }

    #[test]
    fn srrip_respects_way_masks() {
        let mut c = SetAssociativeCache::with_policy(4096, 8, ReplacementPolicy::Srrip);
        let full = full8();
        let low2 = WayMask::from_ways(2).unwrap();
        for i in 0..8 {
            c.access(i * 8, full);
        }
        for i in 100..200 {
            c.access(i * 8, low2);
        }
        let survivors = (0..8).filter(|i| c.probe(i * 8)).count();
        assert!(
            survivors >= 6,
            "masked SRRIP stream evicted beyond its ways: {survivors}"
        );
    }

    #[test]
    fn random_policy_is_deterministic_and_masked() {
        let run = || {
            let mut c = SetAssociativeCache::with_policy(4096, 8, ReplacementPolicy::Random);
            let low2 = WayMask::from_ways(2).unwrap();
            let full = full8();
            for i in 0..8 {
                c.access(i * 8, full);
            }
            for i in 100..300u64 {
                c.access(i * 8, low2);
            }
            (0..8).filter(|i| c.probe(i * 8)).count()
        };
        let survivors = run();
        assert_eq!(survivors, run(), "random policy must be deterministic");
        assert!(
            survivors >= 6,
            "masked random stream evicted beyond its ways"
        );
    }

    #[test]
    fn all_policies_install_the_accessed_line() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Srrip,
            ReplacementPolicy::Random,
        ] {
            let mut c = SetAssociativeCache::with_policy(4096, 4, policy);
            let mask = WayMask::from_ways(4).unwrap();
            for line in [0u64, 1, 77, 1000, 0, 77] {
                c.access(line, mask);
                assert!(c.probe(line), "{policy:?} lost line {line}");
            }
        }
    }
}
