//! CAT capacity bitmasks (CBMs).
//!
//! Intel CAT expresses an LLC partition as a bitmask over the cache's ways:
//! bit *i* set means the class of service may fill into way *i*. Hardware
//! requires masks to be non-empty and to consist of **contiguous** set bits
//! (`Intel SDM vol. 3, 17.19.4`); the Linux resctrl interface enforces the
//! same, so we validate identically.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum number of ways any modeled cache may have. 32 comfortably covers
/// real hardware (CAT CBMs are at most 20 bits on the paper's Broadwell).
pub const MAX_WAYS: u32 = 32;

/// Errors arising from invalid capacity bitmasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskError {
    /// The mask has no bits set; a class of service must own at least one way.
    Empty,
    /// The set bits are not contiguous, which CAT hardware rejects.
    NotContiguous(u32),
    /// The mask has bits set above the cache's way count.
    TooWide { mask: u32, ways: u32 },
    /// Requested more ways than the cache has.
    TooManyWays { requested: u32, available: u32 },
}

impl fmt::Display for MaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskError::Empty => write!(f, "capacity bitmask must have at least one bit set"),
            MaskError::NotContiguous(m) => {
                write!(f, "capacity bitmask {m:#x} is not contiguous")
            }
            MaskError::TooWide { mask, ways } => {
                write!(
                    f,
                    "capacity bitmask {mask:#x} exceeds the cache's {ways} ways"
                )
            }
            MaskError::TooManyWays {
                requested,
                available,
            } => {
                write!(
                    f,
                    "requested {requested} ways but the cache has only {available}"
                )
            }
        }
    }
}

impl std::error::Error for MaskError {}

/// A validated CAT capacity bitmask: non-empty, contiguous set bits.
///
/// The paper's three schemes map to:
/// * `0x3`     — 2/20 ways = 10 % of the LLC (polluting operators),
/// * `0xfff`   — 12/20 ways = 60 % (the FK join when cache-sensitive),
/// * `0xfffff` — all 20 ways = 100 % (cache-sensitive operators, default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WayMask(u32);

impl WayMask {
    /// Validates and wraps a raw bitmask.
    ///
    /// # Errors
    /// Returns [`MaskError::Empty`] for a zero mask and
    /// [`MaskError::NotContiguous`] when the set bits have gaps.
    pub fn new(bits: u32) -> Result<Self, MaskError> {
        if bits == 0 {
            return Err(MaskError::Empty);
        }
        // A contiguous run of ones, shifted right by its trailing zeros,
        // becomes 2^k - 1, i.e. (run + 1) is a power of two.
        let shifted = bits >> bits.trailing_zeros();
        if (shifted & shifted.wrapping_add(1)) != 0 {
            return Err(MaskError::NotContiguous(bits));
        }
        Ok(WayMask(bits))
    }

    /// The lowest `n` ways (`0b1`, `0b11`, `0b111`, ...).
    ///
    /// # Errors
    /// `n` must be between 1 and [`MAX_WAYS`].
    pub fn from_ways(n: u32) -> Result<Self, MaskError> {
        if n == 0 {
            return Err(MaskError::Empty);
        }
        if n > MAX_WAYS {
            return Err(MaskError::TooManyWays {
                requested: n,
                available: MAX_WAYS,
            });
        }
        let bits = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
        Ok(WayMask(bits))
    }

    /// A mask covering all `ways` ways of a cache.
    ///
    /// # Errors
    /// `ways` must be between 1 and [`MAX_WAYS`].
    pub fn full(ways: u32) -> Result<Self, MaskError> {
        Self::from_ways(ways)
    }

    /// The smallest contiguous low-order mask covering at least `percent` %
    /// of a `ways`-way cache, but never fewer than one way.
    ///
    /// `percent(10, 20)` yields `0x3` — the paper's pollution-confinement
    /// mask on the 20-way Broadwell LLC.
    ///
    /// # Errors
    /// Propagates [`MaskError`] when `ways` is out of range.
    pub fn percent(percent: u32, ways: u32) -> Result<Self, MaskError> {
        let n = ((u64::from(ways) * u64::from(percent)).div_ceil(100)).max(1) as u32;
        Self::from_ways(n.min(ways))
    }

    /// A contiguous run of `len` ways starting at way `lo`.
    ///
    /// This is the constructor adaptive repartitioning uses to carve
    /// non-overlapping regions out of the LLC: polluting classes are
    /// anchored at way 0 (`from_ways`), sensitive ones at the top end
    /// (`range(ways - n, n)`), so the two never share fill victims.
    ///
    /// # Errors
    /// Returns [`MaskError::Empty`] when `len` is zero and
    /// [`MaskError::TooManyWays`] when the run extends past [`MAX_WAYS`].
    pub fn range(lo: u32, len: u32) -> Result<Self, MaskError> {
        if len == 0 {
            return Err(MaskError::Empty);
        }
        if lo.saturating_add(len) > MAX_WAYS {
            return Err(MaskError::TooManyWays {
                requested: lo.saturating_add(len),
                available: MAX_WAYS,
            });
        }
        let run = ((1u64 << len) - 1) as u32;
        Ok(WayMask(run << lo))
    }

    /// The raw bitmask.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Number of ways this mask grants.
    #[inline]
    pub fn way_count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether way `w` may be used as a fill victim under this mask.
    #[inline]
    pub fn allows(self, w: u32) -> bool {
        (self.0 >> w) & 1 == 1
    }

    /// Cache capacity, in bytes, this mask grants on a cache of
    /// `total_bytes` with `ways` ways.
    pub fn capacity_bytes(self, total_bytes: u64, ways: u32) -> u64 {
        total_bytes / u64::from(ways) * u64::from(self.way_count())
    }

    /// Checks this mask fits a cache with `ways` ways.
    ///
    /// # Errors
    /// Returns [`MaskError::TooWide`] otherwise.
    pub fn check_fits(self, ways: u32) -> Result<(), MaskError> {
        if ways >= 32 || self.0 < (1u32 << ways) {
            Ok(())
        } else {
            Err(MaskError::TooWide { mask: self.0, ways })
        }
    }
}

/// Renders as the hex CBM string used by resctrl schemata files.
impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_mask() {
        assert_eq!(WayMask::new(0), Err(MaskError::Empty));
    }

    #[test]
    fn accepts_contiguous_masks() {
        for bits in [0x1, 0x3, 0x6, 0xf0, 0xfff, 0xfffff, u32::MAX] {
            assert!(WayMask::new(bits).is_ok(), "mask {bits:#x} should be valid");
        }
    }

    #[test]
    fn rejects_gapped_masks() {
        for bits in [0x5, 0x9, 0x101, 0b1011, 0xf0f] {
            assert_eq!(WayMask::new(bits), Err(MaskError::NotContiguous(bits)));
        }
    }

    #[test]
    fn from_ways_builds_low_order_runs() {
        assert_eq!(WayMask::from_ways(1).unwrap().bits(), 0x1);
        assert_eq!(WayMask::from_ways(2).unwrap().bits(), 0x3);
        assert_eq!(WayMask::from_ways(12).unwrap().bits(), 0xfff);
        assert_eq!(WayMask::from_ways(20).unwrap().bits(), 0xfffff);
        assert_eq!(WayMask::from_ways(32).unwrap().bits(), u32::MAX);
    }

    #[test]
    fn from_ways_rejects_out_of_range() {
        assert_eq!(WayMask::from_ways(0), Err(MaskError::Empty));
        assert!(matches!(
            WayMask::from_ways(33),
            Err(MaskError::TooManyWays { .. })
        ));
    }

    #[test]
    fn range_builds_anchored_runs() {
        assert_eq!(WayMask::range(0, 2).unwrap().bits(), 0x3);
        assert_eq!(WayMask::range(4, 4).unwrap().bits(), 0xf0);
        // Top-anchored 4 ways of a 20-way cache.
        assert_eq!(WayMask::range(16, 4).unwrap().bits(), 0xf0000);
        assert_eq!(WayMask::range(0, 32).unwrap().bits(), u32::MAX);
    }

    #[test]
    fn range_rejects_out_of_range() {
        assert_eq!(WayMask::range(3, 0), Err(MaskError::Empty));
        assert!(matches!(
            WayMask::range(30, 4),
            Err(MaskError::TooManyWays { .. })
        ));
        assert!(matches!(
            WayMask::range(u32::MAX, 1),
            Err(MaskError::TooManyWays { .. })
        ));
    }

    #[test]
    fn percent_matches_paper_schemes() {
        // 10% of 20 ways -> 2 ways -> 0x3 (paper section V-B).
        assert_eq!(WayMask::percent(10, 20).unwrap().bits(), 0x3);
        // 60% of 20 ways -> 12 ways -> 0xfff.
        assert_eq!(WayMask::percent(60, 20).unwrap().bits(), 0xfff);
        // 100% -> 0xfffff.
        assert_eq!(WayMask::percent(100, 20).unwrap().bits(), 0xfffff);
        // Tiny percentages still grant one way.
        assert_eq!(WayMask::percent(1, 20).unwrap().bits(), 0x1);
    }

    #[test]
    fn capacity_scales_with_way_count() {
        let llc = 55 * 1024 * 1024;
        let m = WayMask::new(0x3).unwrap();
        // 2 of 20 ways of 55 MiB = 5.5 MiB, the paper's "10% of the cache".
        assert_eq!(m.capacity_bytes(llc, 20), llc / 10);
    }

    #[test]
    fn allows_checks_individual_ways() {
        let m = WayMask::new(0b1100).unwrap();
        assert!(!m.allows(0));
        assert!(!m.allows(1));
        assert!(m.allows(2));
        assert!(m.allows(3));
        assert!(!m.allows(4));
    }

    #[test]
    fn check_fits_respects_way_count() {
        let m = WayMask::new(0xfffff).unwrap();
        assert!(m.check_fits(20).is_ok());
        assert!(m.check_fits(12).is_err());
        assert!(WayMask::new(0x3).unwrap().check_fits(2).is_ok());
    }

    #[test]
    fn display_is_resctrl_hex() {
        assert_eq!(WayMask::new(0xfff).unwrap().to_string(), "0xfff");
    }
}
