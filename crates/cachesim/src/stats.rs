//! Per-stream and aggregate cache statistics.
//!
//! The paper reports *LLC hit ratio* and *LLC misses per instruction* from
//! Intel PCM alongside every throughput number; these structs carry the
//! simulator's equivalents so the experiment harness can print the same
//! columns.

use serde::{Deserialize, Serialize};

/// Hit/miss counters for one cache level as seen by one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when there were no accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Everything the hierarchy tracks for one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Private L2 counters.
    pub l2: CacheStats,
    /// Shared LLC counters (only accesses that missed L2 reach the LLC).
    pub llc: CacheStats,
    /// Demand accesses that were satisfied early because a prefetch already
    /// brought the line in (counted inside `llc.hits` as well).
    pub prefetch_covered: u64,
    /// Prefetch requests issued on behalf of this stream.
    pub prefetches_issued: u64,
    /// Total memory-access cycles charged to this stream.
    pub cycles: u64,
    /// Instructions retired, reported by the operator models; used for the
    /// paper's "LLC misses per instruction" metric.
    pub instructions: u64,
    /// Centi-cycles spent on DRAM demand misses.
    pub stall_dram_centi: u64,
    /// Centi-cycles spent on LLC hits.
    pub stall_llc_centi: u64,
    /// Centi-cycles spent on L2 hits.
    pub stall_l2_centi: u64,
    /// Centi-cycles spent waiting for prefetch arrivals.
    pub stall_inflight_centi: u64,
}

impl StreamStats {
    /// LLC misses per instruction (the paper's MPI metric, as Intel PCM
    /// counts it: all lines fetched from DRAM, whether by demand miss or
    /// prefetch, per retired instruction). 0 when no instructions were
    /// recorded.
    pub fn llc_mpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            (self.llc.misses + self.prefetches_issued) as f64 / self.instructions as f64
        }
    }

    /// Re-use-based LLC hit ratio, PCM-like: a demand access that only
    /// "hits" because a prefetch just staged the line is not a re-use, so
    /// prefetch-covered hits count toward the denominator but not the
    /// numerator. This is the number comparable to the paper's "LLC hit
    /// ratio below 0.08" for scans.
    pub fn llc_effective_hit_ratio(&self) -> f64 {
        let denom = self.llc.accesses() + self.prefetches_issued;
        if denom == 0 {
            0.0
        } else {
            self.llc.hits.saturating_sub(self.prefetch_covered) as f64 / denom as f64
        }
    }

    /// Demand accesses that reached DRAM.
    pub fn dram_accesses(&self) -> u64 {
        self.llc.misses
    }

    /// Merges another stream's counters into this one (for whole-workload
    /// reporting, like the paper's system-wide PCM numbers).
    pub fn merge(&mut self, other: &StreamStats) {
        self.l2.merge(&other.l2);
        self.llc.merge(&other.llc);
        self.prefetch_covered += other.prefetch_covered;
        self.prefetches_issued += other.prefetches_issued;
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.stall_dram_centi += other.stall_dram_centi;
        self.stall_llc_centi += other.stall_llc_centi;
        self.stall_l2_centi += other.stall_l2_centi;
        self.stall_inflight_centi += other.stall_inflight_centi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_basic() {
        let s = CacheStats { hits: 9, misses: 1 };
        assert_eq!(s.accesses(), 10);
        assert!((s.hit_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_empty_is_zero() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
        assert_eq!(StreamStats::default().llc_mpi(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats { hits: 1, misses: 2 };
        a.merge(&CacheStats {
            hits: 10,
            misses: 20,
        });
        assert_eq!(
            a,
            CacheStats {
                hits: 11,
                misses: 22
            }
        );
    }

    #[test]
    fn mpi_uses_instructions() {
        let s = StreamStats {
            llc: CacheStats {
                hits: 0,
                misses: 50,
            },
            instructions: 1000,
            ..Default::default()
        };
        assert!((s.llc_mpi() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn stream_merge_accumulates_all_fields() {
        let mut a = StreamStats {
            l2: CacheStats { hits: 1, misses: 1 },
            llc: CacheStats { hits: 2, misses: 2 },
            prefetch_covered: 3,
            prefetches_issued: 4,
            cycles: 5,
            instructions: 6,
            stall_dram_centi: 7,
            stall_llc_centi: 8,
            stall_l2_centi: 9,
            stall_inflight_centi: 10,
        };
        a.merge(&a.clone());
        assert_eq!(a.l2.hits, 2);
        assert_eq!(a.llc.misses, 4);
        assert_eq!(a.prefetch_covered, 6);
        assert_eq!(a.prefetches_issued, 8);
        assert_eq!(a.cycles, 10);
        assert_eq!(a.instructions, 12);
        assert_eq!(a.stall_dram_centi, 14);
        assert_eq!(a.stall_llc_centi, 16);
        assert_eq!(a.stall_l2_centi, 18);
        assert_eq!(a.stall_inflight_centi, 20);
    }
}
