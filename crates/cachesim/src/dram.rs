//! DRAM channel model: fixed service latency plus finite bandwidth with
//! backlog-based queuing (leaky bucket) and demand-over-prefetch priority.
//!
//! Each line transfer deposits its occupancy into a backlog that drains in
//! real (virtual) time; a request's queuing delay is the backlog in front
//! of it. When the combined miss traffic of concurrent streams exceeds the
//! channel's bandwidth the backlog grows and throttles requesters — the
//! *memory-bandwidth contention* axis of the paper (dominant in Figure 9c
//! and for the 10⁶-group aggregations), distinct from LLC capacity
//! contention.
//!
//! ## Two service classes
//!
//! Like a real memory controller, the channel serves **demand** misses
//! ahead of **prefetches**: a prefetch waits behind all backlog, while a
//! demand miss waits behind the demand backlog plus only a fraction of the
//! prefetch backlog (transfers in flight cannot be preempted, banks
//! conflict). This is what lets a latency-sensitive aggregation keep
//! making progress while a streaming scan saturates the channel — and why
//! the scan, not the aggregation, absorbs most of the congestion, matching
//! the asymmetry the paper measures in Figure 9.
//!
//! ## Skew tolerance
//!
//! The backlog drains on forward progress of the caller-provided clock
//! (the hierarchy passes the *minimum* stream clock, which is monotone
//! under min-clock scheduling), so inter-stream clock skew from batched
//! interleaving never turns into phantom queuing.

use crate::config::DramConfig;

/// Service class of a DRAM request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramClass {
    /// A demand miss: the core is (partially) stalled on it.
    Demand,
    /// A prefetcher-initiated fill: latency-tolerant, lowest priority.
    Prefetch,
}

/// The shared DRAM channel. All internal quantities are centi-cycles so
/// sub-cycle line-transfer times accumulate without floating point.
#[derive(Debug, Clone)]
pub struct DramChannel {
    cfg: DramConfig,
    /// Latest drain-clock value seen (centi-cycles).
    horizon_centi: u64,
    /// Outstanding demand occupancy backlog (centi-cycles).
    demand_backlog_centi: u64,
    /// Outstanding prefetch occupancy backlog (centi-cycles).
    prefetch_backlog_centi: u64,
    /// Total lines transferred.
    lines: u64,
    /// Total queuing delay observed (cycles), for diagnostics.
    queue_cycles: u64,
}

/// Fraction (as divisor) of the prefetch backlog a demand miss still waits
/// behind: in-flight transfers cannot be preempted and banks conflict, so
/// priority is strong but not absolute.
const DEMAND_SEES_PREFETCH_DIV: u64 = 4;

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> Self {
        DramChannel {
            cfg,
            horizon_centi: 0,
            demand_backlog_centi: 0,
            prefetch_backlog_centi: 0,
            lines: 0,
            queue_cycles: 0,
        }
    }

    /// Requests one 64-byte line transfer at drain-clock time `now`
    /// (cycles). Returns the latency the requester observes: the idle
    /// latency plus the class-dependent queuing delay.
    pub fn request(&mut self, now: u64, class: DramClass) -> u64 {
        let now_centi = now * 100;
        // Drain by elapsed time: demand backlog first (it is served with
        // priority), the remainder drains prefetch backlog.
        if now_centi > self.horizon_centi {
            let mut elapsed = now_centi - self.horizon_centi;
            self.horizon_centi = now_centi;
            let d = elapsed.min(self.demand_backlog_centi);
            self.demand_backlog_centi -= d;
            elapsed -= d;
            self.prefetch_backlog_centi = self.prefetch_backlog_centi.saturating_sub(elapsed);
        }
        let queue_centi = match class {
            DramClass::Demand => {
                self.demand_backlog_centi + self.prefetch_backlog_centi / DEMAND_SEES_PREFETCH_DIV
            }
            DramClass::Prefetch => self.demand_backlog_centi + self.prefetch_backlog_centi,
        };
        match class {
            DramClass::Demand => self.demand_backlog_centi += self.cfg.occupancy_centi_cycles,
            DramClass::Prefetch => self.prefetch_backlog_centi += self.cfg.occupancy_centi_cycles,
        }
        let queue = queue_centi / 100;
        self.lines += 1;
        self.queue_cycles += queue;
        self.cfg.latency_cycles + queue
    }

    /// Total lines transferred so far.
    pub fn lines_transferred(&self) -> u64 {
        self.lines
    }

    /// Total bytes transferred so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.lines * crate::LINE_BYTES
    }

    /// Cumulative queuing delay in cycles (a congestion indicator).
    pub fn total_queue_cycles(&self) -> u64 {
        self.queue_cycles
    }

    /// Achieved bandwidth in bytes per cycle over `elapsed_cycles`, as a
    /// float for reporting only.
    pub fn achieved_bytes_per_cycle(&self, elapsed_cycles: u64) -> f64 {
        if elapsed_cycles == 0 {
            0.0
        } else {
            self.bytes_transferred() as f64 / elapsed_cycles as f64
        }
    }

    /// Resets counters and the backlog, keeping the configuration.
    pub fn reset(&mut self) {
        self.horizon_centi = 0;
        self.demand_backlog_centi = 0;
        self.prefetch_backlog_centi = 0;
        self.lines = 0;
        self.queue_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        // 100-cycle latency, 2 cycles occupancy per line.
        DramConfig {
            latency_cycles: 100,
            occupancy_centi_cycles: 200,
        }
    }

    #[test]
    fn idle_channel_has_pure_latency() {
        let mut d = DramChannel::new(cfg());
        assert_eq!(d.request(0, DramClass::Demand), 100);
        assert_eq!(d.lines_transferred(), 1);
        assert_eq!(d.bytes_transferred(), 64);
    }

    #[test]
    fn back_to_back_demand_requests_build_backlog() {
        let mut d = DramChannel::new(cfg());
        assert_eq!(d.request(0, DramClass::Demand), 100);
        assert_eq!(d.request(0, DramClass::Demand), 102);
        assert_eq!(d.request(0, DramClass::Demand), 104);
        assert_eq!(d.total_queue_cycles(), 6);
    }

    #[test]
    fn spaced_requests_do_not_queue() {
        let mut d = DramChannel::new(cfg());
        assert_eq!(d.request(0, DramClass::Demand), 100);
        // The backlog (2 cycles) fully drains by t=10.
        assert_eq!(d.request(10, DramClass::Demand), 100);
        assert_eq!(d.total_queue_cycles(), 0);
    }

    #[test]
    fn demand_jumps_most_of_the_prefetch_queue() {
        let mut d = DramChannel::new(cfg());
        // 40 prefetches at t=0: 80 cycles of prefetch backlog.
        for _ in 0..40 {
            d.request(0, DramClass::Prefetch);
        }
        // A prefetch waits behind all of it; a demand miss behind a quarter.
        let pf = d.request(0, DramClass::Prefetch);
        assert_eq!(pf, 100 + 80);
        let dm = d.request(0, DramClass::Demand);
        // prefetch backlog is now 82 cycles -> sees 82/4 = 20 (integer).
        assert_eq!(dm, 100 + 20);
    }

    #[test]
    fn drain_serves_demand_backlog_first() {
        let mut d = DramChannel::new(cfg());
        for _ in 0..10 {
            d.request(0, DramClass::Demand); // 20 cy demand backlog
            d.request(0, DramClass::Prefetch); // 20 cy prefetch backlog
        }
        // 20 cycles later the demand backlog is gone, prefetch untouched.
        let dm = d.request(20, DramClass::Demand);
        assert_eq!(dm, 100 + 20 / 4);
        // 25 more cycles drain the remaining prefetch backlog minus the
        // demand line just queued (2) -> fully idle afterwards.
        let pf = d.request(60, DramClass::Prefetch);
        assert_eq!(pf, 100);
    }

    #[test]
    fn sustained_overload_grows_queue_without_bound() {
        let mut d = DramChannel::new(cfg());
        // One demand request per cycle, each occupying 2 cycles: demand is
        // 2x capacity, so the backlog grows ~1 cycle per request.
        let mut last = 0;
        for t in 0..1000u64 {
            last = d.request(t, DramClass::Demand);
        }
        assert!(
            last > 100 + 900,
            "overload must throttle, got latency {last}"
        );
    }

    #[test]
    fn skewed_timestamps_do_not_create_phantom_queue() {
        let mut d = DramChannel::new(cfg());
        // A request far in the future, then one whose clock lags behind:
        // the laggard sees only the genuine backlog (one line, 2 cycles).
        assert_eq!(d.request(1_000_000, DramClass::Demand), 100);
        let lat = d.request(10, DramClass::Demand);
        assert_eq!(lat, 102);
    }

    #[test]
    fn sub_cycle_occupancy_accumulates() {
        let mut d = DramChannel::new(DramConfig {
            latency_cycles: 10,
            occupancy_centi_cycles: 50,
        });
        assert_eq!(d.request(0, DramClass::Demand), 10); // backlog 0
        assert_eq!(d.request(0, DramClass::Demand), 10); // 0.5 truncates
        assert_eq!(d.request(0, DramClass::Demand), 11); // 1.0
        assert_eq!(d.request(0, DramClass::Demand), 11); // 1.5 truncates
    }

    #[test]
    fn reset_clears_state() {
        let mut d = DramChannel::new(cfg());
        d.request(0, DramClass::Demand);
        d.request(0, DramClass::Prefetch);
        d.reset();
        assert_eq!(d.lines_transferred(), 0);
        assert_eq!(d.request(0, DramClass::Demand), 100);
    }

    #[test]
    fn bandwidth_reporting() {
        let mut d = DramChannel::new(cfg());
        for _ in 0..10 {
            d.request(0, DramClass::Demand);
        }
        let bpc = d.achieved_bytes_per_cycle(100);
        assert!((bpc - 6.4).abs() < 1e-9);
    }
}
