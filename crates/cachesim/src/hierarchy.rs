//! The full simulated memory system: private L2s, a shared inclusive LLC
//! with CAT way-masking, a stream prefetcher and a shared DRAM channel.
//!
//! ## Streams
//!
//! A **stream** models one concurrently running query: the paper executes
//! each query across all cores of the socket, so one stream stands for the
//! whole multi-threaded query. Each stream owns a private L2 (the union of
//! the core-private L2s its threads use), an LLC way mask (its CAT class of
//! service), a prefetcher, and a *virtual clock* in centi-cycles.
//!
//! A stream's memory-level parallelism (`parallelism`) divides every latency
//! it observes: a 44-thread scan has dozens of requests in flight, so the
//! per-request latency barely serializes. The DRAM *channel*, however, is
//! shared and serial — bandwidth saturation throttles every stream no
//! matter its parallelism, which is exactly the contention behaviour the
//! paper measures.
//!
//! ## Time
//!
//! Clocks are per-stream and advance only through [`MemoryHierarchy::access`]
//! and [`MemoryHierarchy::advance`]. Concurrency is created by the caller
//! (see `ccp-engine`'s virtual-time scheduler) interleaving accesses of
//! streams with similar clock values.

use crate::cache::{AccessOutcome, SetAssociativeCache};
use crate::config::HierarchyConfig;
use crate::dram::{DramChannel, DramClass};
use crate::mask::WayMask;
use crate::prefetch::StreamPrefetcher;
use crate::stats::StreamStats;
use std::collections::HashMap;

/// Index of a stream within a [`MemoryHierarchy`].
pub type StreamId = usize;

/// Kind of memory access. The cache model is write-allocate, so reads and
/// writes behave identically for hit/miss purposes; the distinction is kept
/// for operator-model readability and byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store (write-allocate).
    Write,
}

/// Per-stream simulator state.
#[derive(Debug, Clone)]
struct Stream {
    llc_mask: WayMask,
    prefetcher: StreamPrefetcher,
    stats: StreamStats,
    /// Virtual clock in centi-cycles.
    clock_centi: u64,
    /// Latency divisor modeling in-flight request overlap.
    parallelism: u32,
}

/// The simulated memory system shared by all streams.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    /// The L2 cache. Shared by all streams: the paper runs every query
    /// across all cores of the socket, so co-running queries' threads share
    /// each core's L2 — a second contention surface besides the LLC.
    l2: SetAssociativeCache,
    l2_mask: WayMask,
    llc: SetAssociativeCache,
    dram: DramChannel,
    streams: Vec<Stream>,
    /// Prefetched lines still "in flight": line -> arrival time
    /// (centi-cycles). A demand access before arrival stalls until it.
    inflight: HashMap<u64, u64>,
    /// CMT-style ownership tracking: which stream filled each LLC line and
    /// whether the line was re-used (hit after fill, prefetch coverage
    /// excluded). Intel's Cache Monitoring Technology exposes the same
    /// per-RMID occupancy on real hardware.
    line_owner: HashMap<u64, (StreamId, bool)>,
    /// Lines currently owned per stream (parallel summary of `line_owner`).
    owned_lines: Vec<u64>,
    /// Of the owned lines, how many were re-used at least once.
    reused_lines: Vec<u64>,
}

impl MemoryHierarchy {
    /// Builds a hierarchy with `n_streams` streams, all starting with a
    /// full-LLC mask (the paper's default class of service).
    ///
    /// # Panics
    /// Panics on invalid geometry (zero sets/ways) — configuration bugs.
    pub fn new(cfg: HierarchyConfig, n_streams: usize) -> Self {
        let full_llc = cfg
            .llc
            .full_mask()
            .expect("LLC way count validated by config");
        let full_l2 = cfg
            .l2
            .full_mask()
            .expect("L2 way count validated by config");
        let streams = (0..n_streams)
            .map(|_| Stream {
                llc_mask: full_llc,
                prefetcher: StreamPrefetcher::new(cfg.prefetch_depth),
                stats: StreamStats::default(),
                clock_centi: 0,
                parallelism: 1,
            })
            .collect();
        MemoryHierarchy {
            l2: SetAssociativeCache::new(cfg.l2.size_bytes, cfg.l2.ways),
            l2_mask: full_l2,
            llc: SetAssociativeCache::with_policy(cfg.llc.size_bytes, cfg.llc.ways, cfg.llc_policy),
            dram: DramChannel::new(cfg.dram),
            cfg,
            streams,
            inflight: HashMap::new(),
            line_owner: HashMap::new(),
            owned_lines: vec![0; n_streams],
            reused_lines: vec![0; n_streams],
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Number of streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Sets stream `s`'s LLC way mask (its CAT class of service).
    ///
    /// # Panics
    /// Panics if the mask does not fit the LLC or `s` is out of range.
    pub fn set_mask(&mut self, s: StreamId, mask: WayMask) {
        mask.check_fits(self.cfg.llc.ways)
            .expect("mask must fit the LLC");
        self.streams[s].llc_mask = mask;
    }

    /// Stream `s`'s current LLC way mask.
    pub fn mask(&self, s: StreamId) -> WayMask {
        self.streams[s].llc_mask
    }

    /// Sets the latency divisor for stream `s` (in-flight request overlap).
    ///
    /// # Panics
    /// Panics when `par` is zero.
    pub fn set_parallelism(&mut self, s: StreamId, par: u32) {
        assert!(par > 0, "parallelism must be at least 1");
        self.streams[s].parallelism = par;
    }

    /// Performs one demand access by stream `s` to byte address `addr`.
    /// Returns the cost charged, in centi-cycles; the stream's clock has
    /// already been advanced by it.
    pub fn access(&mut self, s: StreamId, addr: u64, _kind: AccessKind) -> u64 {
        let line = crate::line_of(addr);
        let cost = self.cost_of_demand(s, line);
        let st = &mut self.streams[s];
        st.clock_centi += cost;
        st.stats.cycles = st.clock_centi / 100;
        // Prefetcher observes every demand access, after the access itself.
        let proposals = st.prefetcher.on_access(line);
        if !proposals.is_empty() {
            self.issue_prefetches(s, proposals);
        }
        cost
    }

    /// Hit/miss walk for a demand access; returns centi-cycle cost.
    fn cost_of_demand(&mut self, s: StreamId, line: u64) -> u64 {
        let par = u64::from(self.streams[s].parallelism);
        let now_centi = self.streams[s].clock_centi;
        let cost = self.cfg.cost;
        let (l2_mask, llc_mask) = (self.l2_mask, self.streams[s].llc_mask);

        // L2 lookup (shared by all streams — see the struct field docs).
        if self.l2.access(line, l2_mask).is_hit() {
            self.streams[s].stats.l2.hits += 1;
            self.mark_reused(line);
            let c = self.finish_inflight(s, line, now_centi, cost.l2_hit_cycles * 100 / par);
            self.streams[s].stats.stall_l2_centi += c;
            return c;
        }
        self.streams[s].stats.l2.misses += 1;

        // LLC lookup (shared, masked allocation).
        match self.llc.access(line, llc_mask) {
            AccessOutcome::Hit => {
                self.streams[s].stats.llc.hits += 1;
                self.mark_reused(line);
                self.fill_l2(s, line);
                let c = self.finish_inflight(s, line, now_centi, cost.llc_hit_cycles * 100 / par);
                self.streams[s].stats.stall_llc_centi += c;
                c
            }
            AccessOutcome::Miss { evicted } => {
                self.streams[s].stats.llc.misses += 1;
                if let Some(old) = evicted {
                    self.back_invalidate(old);
                }
                self.record_fill(s, line);
                let lat = self.dram.request(self.dram_now(), DramClass::Demand);
                self.fill_l2(s, line);
                self.inflight.remove(&line);
                let c = (lat * 100) / par;
                self.streams[s].stats.stall_dram_centi += c;
                c
            }
        }
    }

    /// If `line` was prefetched and has not yet arrived, stall until its
    /// arrival (on top of the hit cost) and count the coverage.
    fn finish_inflight(&mut self, s: StreamId, line: u64, now_centi: u64, hit_cost: u64) -> u64 {
        if let Some(arrival) = self.inflight.remove(&line) {
            self.streams[s].stats.prefetch_covered += 1;
            let par = u64::from(self.streams[s].parallelism);
            // The arrival stall overlaps across the stream's in-flight
            // requests like any other latency; sustained back-pressure
            // still throttles the stream through the DRAM queue, whose
            // delays grow without bound once the channel saturates.
            let stall = arrival.saturating_sub(now_centi) / par;
            let late_cost = self.cfg.cost.prefetched_hit_cycles * 100 / par;
            let c = hit_cost.max(stall + late_cost);
            self.streams[s].stats.stall_inflight_centi += c.saturating_sub(hit_cost);
            return c;
        }
        hit_cost
    }

    /// The DRAM channel's drain clock: the *minimum* stream clock, in whole
    /// cycles. Under min-clock scheduling (the driver always steps the
    /// least-advanced stream) the minimum is monotone, so inter-stream
    /// clock skew from batched interleaving never turns into phantom
    /// queuing delay. The residual artifact — a stream's own within-batch
    /// burst briefly queuing on itself — is bounded by one batch's channel
    /// occupancy (operator batches are deliberately small) and, crucially,
    /// is configuration-independent, so it cancels in the normalized
    /// throughput the experiments report. (The alternative, a max-clock
    /// drain, fails badly: a stream catching up to a co-runner that just
    /// took a long batch sees the drain clock frozen for its whole burst
    /// and throttles on phantom backlog.)
    fn dram_now(&self) -> u64 {
        self.streams
            .iter()
            .map(|st| st.clock_centi)
            .min()
            .unwrap_or(0)
            / 100
    }

    /// Inserts `line` into the shared L2.
    fn fill_l2(&mut self, _s: StreamId, line: u64) {
        // L2 evictions are silent: the LLC is inclusive, so the line is
        // still present there.
        let _ = self.l2.access(line, self.l2_mask);
    }

    /// Inclusive back-invalidation: an LLC eviction removes the line from
    /// the L2 and releases its CMT ownership.
    fn back_invalidate(&mut self, line: u64) {
        self.l2.invalidate(line);
        self.inflight.remove(&line);
        if let Some((owner, reused)) = self.line_owner.remove(&line) {
            self.owned_lines[owner] -= 1;
            if reused {
                self.reused_lines[owner] -= 1;
            }
        }
    }

    /// Records that stream `s` filled `line` into the LLC (CMT accounting).
    fn record_fill(&mut self, s: StreamId, line: u64) {
        if let Some((prev, reused)) = self.line_owner.insert(line, (s, false)) {
            self.owned_lines[prev] -= 1;
            if reused {
                self.reused_lines[prev] -= 1;
            }
        }
        self.owned_lines[s] += 1;
    }

    /// Flags `line` as re-used by its owner — but not when the "hit" is
    /// merely a prefetch arriving (coverage, not re-use).
    fn mark_reused(&mut self, line: u64) {
        if self.inflight.contains_key(&line) {
            return;
        }
        if let Some((owner, reused)) = self.line_owner.get_mut(&line) {
            if !*reused {
                *reused = true;
                self.reused_lines[*owner] += 1;
            }
        }
    }

    /// CMT-style LLC occupancy of stream `s`, in bytes: the lines it filled
    /// that are still resident. This is the number Intel CMT reports per
    /// RMID on real hardware and is handy for verifying that masks confine
    /// polluters.
    pub fn llc_occupancy_bytes(&self, s: StreamId) -> u64 {
        self.owned_lines[s] * crate::LINE_BYTES
    }

    /// Bytes of stream `s`'s resident LLC lines that were re-used at least
    /// once after their fill — an estimate of the operator's *hot*
    /// structure size (streaming residue is excluded because streamed
    /// lines are never touched twice). Used by the online CUID classifier.
    pub fn llc_reused_bytes(&self, s: StreamId) -> u64 {
        self.reused_lines[s] * crate::LINE_BYTES
    }

    /// Issues prefetches for `lines` on behalf of stream `s`: each uncached
    /// line is fetched from DRAM (consuming bandwidth) and installed in the
    /// LLC (under the stream's mask) and the stream's L2, with an arrival
    /// time; a demand access before arrival stalls (see `finish_inflight`).
    fn issue_prefetches(&mut self, s: StreamId, lines: std::ops::Range<u64>) {
        for line in lines {
            if self.l2.probe(line) || self.llc.probe(line) {
                continue;
            }
            let now_centi = self.streams[s].clock_centi;
            let lat = self.dram.request(self.dram_now(), DramClass::Prefetch);
            self.streams[s].stats.prefetches_issued += 1;
            if let AccessOutcome::Miss { evicted: Some(old) } =
                self.llc.access(line, self.streams[s].llc_mask)
            {
                self.back_invalidate(old);
            }
            self.record_fill(s, line);
            self.fill_l2(s, line);
            self.inflight.insert(line, now_centi + lat * 100);
        }
    }

    /// Advances stream `s`'s clock by `centi_cycles` of pure CPU work.
    pub fn advance(&mut self, s: StreamId, centi_cycles: u64) {
        let st = &mut self.streams[s];
        st.clock_centi += centi_cycles;
        st.stats.cycles = st.clock_centi / 100;
    }

    /// Records `n` retired instructions for stream `s` (for the MPI metric).
    pub fn retire(&mut self, s: StreamId, n: u64) {
        self.streams[s].stats.instructions += n;
    }

    /// Stream `s`'s virtual clock in whole cycles.
    pub fn clock(&self, s: StreamId) -> u64 {
        self.streams[s].clock_centi / 100
    }

    /// Stream `s`'s virtual clock in centi-cycles (full precision).
    pub fn clock_centi(&self, s: StreamId) -> u64 {
        self.streams[s].clock_centi
    }

    /// Statistics of stream `s`.
    pub fn stats(&self, s: StreamId) -> &StreamStats {
        &self.streams[s].stats
    }

    /// Workload-wide statistics: all streams merged (the paper's
    /// system-level PCM view).
    pub fn combined_stats(&self) -> StreamStats {
        let mut all = StreamStats::default();
        for st in &self.streams {
            all.merge(&st.stats);
        }
        all
    }

    /// The shared DRAM channel (read-only view).
    pub fn dram(&self) -> &DramChannel {
        &self.dram
    }

    /// Clears counters of every stream without touching cache contents —
    /// used after warm-up so steady-state figures aren't skewed by cold
    /// misses.
    pub fn reset_stats(&mut self) {
        for st in &mut self.streams {
            st.stats = StreamStats::default();
        }
    }

    /// Aligns every stream's clock and the DRAM queue to zero while keeping
    /// cache contents (warm restart between measurement phases).
    pub fn reset_clocks(&mut self) {
        for st in &mut self.streams {
            st.clock_centi = 0;
            st.stats.cycles = 0;
        }
        self.dram.reset();
        self.inflight.clear();
    }

    /// Flushes all caches, clocks and statistics.
    pub fn reset_all(&mut self) {
        for st in &mut self.streams {
            st.prefetcher.reset();
            st.stats = StreamStats::default();
            st.clock_centi = 0;
        }
        self.l2.flush();
        self.llc.flush();
        self.dram.reset();
        self.inflight.clear();
        self.line_owner.clear();
        self.owned_lines.fill(0);
        self.reused_lines.fill(0);
    }

    /// Number of valid lines currently in the LLC (diagnostics).
    pub fn llc_occupancy(&self) -> u64 {
        self.llc.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn tiny(n: usize) -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::tiny_for_tests(), n)
    }

    #[test]
    fn first_access_misses_everywhere_then_hits_l2() {
        let mut m = tiny(1);
        m.access(0, 0x1000, AccessKind::Read);
        assert_eq!(m.stats(0).l2.misses, 1);
        assert_eq!(m.stats(0).llc.misses, 1);
        m.access(0, 0x1000, AccessKind::Read);
        assert_eq!(m.stats(0).l2.hits, 1);
    }

    #[test]
    fn l2_miss_llc_hit_after_l2_eviction() {
        let mut m = tiny(1);
        // Touch enough distinct lines to overflow the 4 KiB L2 (64 lines)
        // but stay inside the 64 KiB LLC (1024 lines).
        for i in 0..512u64 {
            m.access(0, i * 64, AccessKind::Read);
        }
        // Line 0 left L2 but is still in the (inclusive) LLC.
        let before = m.stats(0).llc.hits;
        m.access(0, 0, AccessKind::Read);
        assert_eq!(m.stats(0).llc.hits, before + 1);
    }

    #[test]
    fn clock_advances_with_costs() {
        let mut m = tiny(1);
        assert_eq!(m.clock(0), 0);
        m.access(0, 0, AccessKind::Read);
        let after_miss = m.clock(0);
        assert!(
            after_miss >= 100,
            "a DRAM miss costs at least the DRAM latency"
        );
        m.access(0, 0, AccessKind::Read);
        assert!(m.clock(0) > after_miss);
    }

    #[test]
    fn parallelism_divides_latency() {
        let mut a = tiny(1);
        let mut b = tiny(1);
        b.set_parallelism(0, 10);
        a.access(0, 0, AccessKind::Read);
        b.access(0, 0, AccessKind::Read);
        assert!(b.clock_centi(0) * 5 < a.clock_centi(0));
    }

    #[test]
    fn masked_stream_cannot_pollute_beyond_its_ways() {
        let mut m = tiny(2);
        // Stream 0 establishes a working set of half the LLC (512 of 1024
        // lines): 4 of 8 ways in every set.
        for i in 0..512u64 {
            m.access(0, i * 64, AccessKind::Read);
        }
        // Restrict stream 1 to 1 of 8 ways, then stream a large region.
        m.set_mask(1, WayMask::from_ways(1).unwrap());
        for i in 0..4096u64 {
            m.access(1, 0x100_0000 + i * 64, AccessKind::Read);
        }
        m.reset_stats();
        // Stream 0 re-reads its set: the polluter can have displaced at most
        // one line per set (128 sets), i.e. at most a quarter of the set.
        for i in 0..512u64 {
            m.access(0, i * 64, AccessKind::Read);
        }
        let s = m.stats(0);
        let llc_misses = s.llc.misses;
        assert!(
            llc_misses <= 512 / 4,
            "masked polluter evicted too much: {llc_misses} misses"
        );
    }

    #[test]
    fn unmasked_stream_pollutes_fully() {
        let mut m = tiny(2);
        for i in 0..1024u64 {
            m.access(0, i * 64, AccessKind::Read);
        }
        // Stream 1 with a full mask streams 4x the LLC through it.
        for i in 0..4096u64 {
            m.access(1, 0x100_0000 + i * 64, AccessKind::Read);
        }
        m.reset_stats();
        for i in 0..1024u64 {
            m.access(0, i * 64, AccessKind::Read);
        }
        // Virtually everything of stream 0's set was evicted.
        assert!(m.stats(0).llc.misses > 900);
    }

    #[test]
    fn inclusive_llc_back_invalidates_l2() {
        let mut m = tiny(2);
        // Stream 0 caches line X in its L2.
        m.access(0, 0, AccessKind::Read);
        // Stream 1 (full mask) floods the LLC so line 0 is evicted from it.
        for i in 1..=4096u64 {
            m.access(1, i * 64, AccessKind::Read);
        }
        m.reset_stats();
        // Stream 0's re-access must be an L2 miss: inclusion removed it.
        m.access(0, 0, AccessKind::Read);
        assert_eq!(m.stats(0).l2.misses, 1);
    }

    #[test]
    fn prefetch_covers_sequential_stream() {
        let mut cfg = HierarchyConfig::tiny_for_tests();
        cfg.prefetch_depth = 4;
        let mut m = MemoryHierarchy::new(cfg, 1);
        for i in 0..64u64 {
            m.access(0, i * 64, AccessKind::Read);
        }
        let s = m.stats(0);
        assert!(
            s.prefetches_issued > 0,
            "sequential stream must trigger prefetches"
        );
        assert!(s.prefetch_covered > 0, "later accesses must be covered");
        // With depth-4 prefetch most of the 64 lines never demand-miss the LLC.
        assert!(s.llc.misses < 16, "prefetching should hide most LLC misses");
    }

    #[test]
    fn prefetching_consumes_dram_bandwidth() {
        let mut cfg = HierarchyConfig::tiny_for_tests();
        cfg.prefetch_depth = 4;
        let mut m = MemoryHierarchy::new(cfg, 1);
        for i in 0..64u64 {
            m.access(0, i * 64, AccessKind::Read);
        }
        // Every one of the 64 lines crossed the DRAM channel exactly once,
        // whether by demand or prefetch — plus up to `depth` lines of
        // over-prefetch past the end of the region.
        let lines = m.dram().lines_transferred();
        assert!(
            (64..=68).contains(&lines),
            "unexpected DRAM traffic: {lines}"
        );
    }

    #[test]
    fn reset_stats_keeps_cache_warm() {
        let mut m = tiny(1);
        m.access(0, 0, AccessKind::Read);
        m.reset_stats();
        m.access(0, 0, AccessKind::Read);
        assert_eq!(m.stats(0).l2.hits, 1);
        assert_eq!(m.stats(0).l2.misses, 0);
    }

    #[test]
    fn reset_all_cools_everything() {
        let mut m = tiny(1);
        m.access(0, 0, AccessKind::Read);
        m.reset_all();
        assert_eq!(m.clock(0), 0);
        m.access(0, 0, AccessKind::Read);
        assert_eq!(m.stats(0).l2.misses, 1);
        assert_eq!(m.stats(0).llc.misses, 1);
    }

    #[test]
    fn retire_tracks_instructions_for_mpi() {
        let mut m = tiny(1);
        m.access(0, 0, AccessKind::Read);
        m.retire(0, 100);
        assert!((m.stats(0).llc_mpi() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn combined_stats_merges_streams() {
        let mut m = tiny(2);
        m.access(0, 0, AccessKind::Read);
        m.access(1, 0x10_0000, AccessKind::Read);
        let all = m.combined_stats();
        assert_eq!(all.llc.misses, 2);
    }

    #[test]
    fn cmt_occupancy_tracks_fills_and_evictions() {
        let mut m = tiny(2);
        // Stream 0 fills 100 lines.
        for i in 0..100u64 {
            m.access(0, i * 64, AccessKind::Read);
        }
        assert_eq!(m.llc_occupancy_bytes(0), 100 * 64);
        assert_eq!(m.llc_occupancy_bytes(1), 0);
        // Stream 1 floods the LLC: stream 0's occupancy collapses.
        for i in 0..4096u64 {
            m.access(1, 0x100_0000 + i * 64, AccessKind::Read);
        }
        assert!(m.llc_occupancy_bytes(0) < 100 * 64 / 2);
        assert!(m.llc_occupancy_bytes(1) > 0);
    }

    #[test]
    fn cmt_occupancy_bounded_by_mask_capacity() {
        let mut m = tiny(1);
        // 2 of 8 ways of the 64 KiB LLC = 16 KiB ceiling.
        m.set_mask(0, WayMask::from_ways(2).unwrap());
        for i in 0..4096u64 {
            m.access(0, i * 64, AccessKind::Read);
        }
        assert!(
            m.llc_occupancy_bytes(0) <= 16 * 1024,
            "masked stream exceeded its slice: {} bytes",
            m.llc_occupancy_bytes(0)
        );
    }

    #[test]
    fn cmt_occupancy_clears_on_reset_all() {
        let mut m = tiny(1);
        m.access(0, 0, AccessKind::Read);
        assert_eq!(m.llc_occupancy_bytes(0), 64);
        m.reset_all();
        assert_eq!(m.llc_occupancy_bytes(0), 0);
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_mask_is_rejected() {
        let mut m = tiny(1);
        // Tiny LLC has 8 ways; a 12-way mask must be rejected.
        m.set_mask(0, WayMask::from_ways(12).unwrap());
    }
}
