//! Hardware stream prefetcher model.
//!
//! The paper's column scan is LLC-size-insensitive *because* the hardware
//! prefetcher hides DRAM latency for sequential streams (Section IV-A). We
//! model the L2 stream prefetcher as a small table of detected ascending
//! streams; once a stream is confirmed, every access triggers a prefetch of
//! the next `depth` lines. Prefetches consume DRAM bandwidth (charged by the
//! hierarchy) but remove demand-miss latency from the critical path.

/// One tracked stream: the last line seen and the run length so far.
#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    last_line: u64,
    run: u32,
}

/// Number of streams tracked concurrently, matching the handful of stream
/// detectors real L2 prefetchers dedicate per core.
const TABLE_SIZE: usize = 16;

/// Run length after which a stream is considered confirmed.
const CONFIRM_RUN: u32 = 2;

/// Detects ascending sequential line streams and proposes prefetches.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    depth: u32,
    table: Vec<StreamEntry>,
    /// Round-robin victim pointer for table replacement.
    victim: usize,
}

impl StreamPrefetcher {
    /// Creates a prefetcher that runs `depth` lines ahead. `depth == 0`
    /// disables prefetching entirely.
    pub fn new(depth: u32) -> Self {
        StreamPrefetcher {
            depth,
            table: Vec::with_capacity(TABLE_SIZE),
            victim: 0,
        }
    }

    /// Whether prefetching is enabled.
    pub fn enabled(&self) -> bool {
        self.depth > 0
    }

    /// Observes a demand access to `line`; returns the range of lines to
    /// prefetch (possibly empty).
    ///
    /// A line continuing a tracked stream (`last + 1`) extends it. The
    /// access that *confirms* the stream (the second consecutive line)
    /// proposes
    /// the whole look-ahead window `line+1 ..= line+depth`; every further
    /// access proposes only the new head `line+depth`, keeping the window
    /// full at one request per access.
    pub fn on_access(&mut self, line: u64) -> std::ops::Range<u64> {
        if self.depth == 0 {
            return 0..0;
        }
        let depth = u64::from(self.depth);
        // Continue an existing stream?
        for e in &mut self.table {
            if line == e.last_line + 1 {
                e.last_line = line;
                e.run += 1;
                if e.run == CONFIRM_RUN {
                    return (line + 1)..(line + 1 + depth);
                }
                if e.run > CONFIRM_RUN {
                    return (line + depth)..(line + depth + 1);
                }
                return 0..0;
            }
            if line == e.last_line {
                // Re-access of the same line: no stream progress.
                return 0..0;
            }
        }
        // New stream: allocate or replace round-robin.
        let entry = StreamEntry {
            last_line: line,
            run: 1,
        };
        if self.table.len() < TABLE_SIZE {
            self.table.push(entry);
        } else {
            self.table[self.victim] = entry;
            self.victim = (self.victim + 1) % TABLE_SIZE;
        }
        0..0
    }

    /// Forgets all tracked streams.
    pub fn reset(&mut self) {
        self.table.clear();
        self.victim = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StreamPrefetcher::new(0);
        assert!(!p.enabled());
        for i in 0..10 {
            assert!(p.on_access(i).is_empty());
        }
    }

    #[test]
    fn sequential_stream_confirms_then_prefetches() {
        let mut p = StreamPrefetcher::new(4);
        assert!(p.on_access(100).is_empty()); // new stream, run=1
        assert_eq!(p.on_access(101), 102..106); // run=2 -> confirmed: window
        assert_eq!(p.on_access(102), 106..107); // steady state: head only
    }

    #[test]
    fn random_accesses_never_prefetch() {
        let mut p = StreamPrefetcher::new(4);
        for line in [5u64, 900, 17, 40_000, 3, 77_777, 1_000_000] {
            assert!(
                p.on_access(line).is_empty(),
                "random access must not prefetch"
            );
        }
    }

    #[test]
    fn interleaved_streams_are_tracked_separately() {
        let mut p = StreamPrefetcher::new(2);
        // Two interleaved ascending streams, both confirm independently.
        assert!(p.on_access(10).is_empty());
        assert!(p.on_access(1000).is_empty());
        assert_eq!(p.on_access(11), 12..14);
        assert_eq!(p.on_access(1001), 1002..1004);
    }

    #[test]
    fn repeated_access_does_not_advance_stream() {
        let mut p = StreamPrefetcher::new(2);
        p.on_access(10);
        assert!(p.on_access(10).is_empty());
        assert_eq!(p.on_access(11), 12..14);
    }

    #[test]
    fn table_replacement_keeps_working() {
        let mut p = StreamPrefetcher::new(2);
        // Flood with more streams than table entries.
        for i in 0..100u64 {
            p.on_access(i * 1000);
        }
        // A fresh stream still confirms after replacement.
        p.on_access(500_000);
        assert_eq!(p.on_access(500_001), 500_002..500_004);
    }

    #[test]
    fn reset_clears_streams() {
        let mut p = StreamPrefetcher::new(2);
        p.on_access(10);
        p.reset();
        // After reset the continuation is a brand-new stream (run=1).
        assert!(p.on_access(11).is_empty());
    }
}
