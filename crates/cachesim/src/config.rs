//! Configuration of the simulated memory system.
//!
//! The default preset, [`HierarchyConfig::broadwell_e5_2699_v4`], matches the
//! paper's testbed (Section III-C): an Intel Xeon E5-2699 v4 with a 55 MiB
//! 20-way inclusive LLC, 256 KiB 8-way private L2s, 64 GB/s DRAM read
//! bandwidth and 80 ns DRAM latency at a 2.2 GHz core clock.

use crate::cache::ReplacementPolicy;
use crate::mask::{MaskError, WayMask};
use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways). Must be in `1..=32`.
    pub ways: u32,
}

impl CacheLevelConfig {
    /// Number of sets (`size / (ways * 64 B)`).
    pub fn sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.ways) * crate::LINE_BYTES)
    }

    /// Capacity of a single way in bytes.
    pub fn way_bytes(&self) -> u64 {
        self.size_bytes / u64::from(self.ways)
    }

    /// A full-cache way mask for this level.
    ///
    /// # Errors
    /// Fails when `ways` is out of the supported range.
    pub fn full_mask(&self) -> Result<WayMask, MaskError> {
        WayMask::full(self.ways)
    }
}

/// Timing and bandwidth of the DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Idle (unloaded) access latency in core cycles.
    pub latency_cycles: u64,
    /// Cycles the channel is occupied per 64-byte line transfer. At 2.2 GHz
    /// and 64 GB/s this is `64 B / (64 GB/s) * 2.2 GHz ≈ 2.2` cycles; we use
    /// fixed-point hundredths to stay integer-deterministic.
    pub occupancy_centi_cycles: u64,
}

/// Latency cost model, in core cycles, for the hierarchy.
///
/// The model charges each access the latency of the level it hits in,
/// divided by the requesting stream's memory-level parallelism (a simulated
/// stream stands for a whole multi-threaded query, so tens of accesses are
/// in flight at once — see `ccp-engine`'s operator models).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles for an L2 hit (the model folds L1 into the base op cost).
    pub l2_hit_cycles: u64,
    /// Cycles for an LLC hit.
    pub llc_hit_cycles: u64,
    /// Extra stall cycles charged on a demand miss whose line was covered by
    /// a prefetch in flight (prefetch hides most, not all, of the latency).
    pub prefetched_hit_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Broadwell-class latencies: L2 ~12 cy, LLC ~40-50 cy.
        CostModel {
            l2_hit_cycles: 12,
            llc_hit_cycles: 44,
            prefetched_hit_cycles: 4,
        }
    }
}

/// Full memory-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Private per-stream L2.
    pub l2: CacheLevelConfig,
    /// Shared, inclusive, way-partitionable LLC.
    pub llc: CacheLevelConfig,
    /// DRAM channel behind the LLC.
    pub dram: DramConfig,
    /// Hit/miss latency model.
    pub cost: CostModel,
    /// Lines fetched ahead by the stream prefetcher on a detected
    /// sequential stream. 0 disables prefetching.
    pub prefetch_depth: u32,
    /// Replacement policy of the shared LLC (the private L2 stays LRU).
    pub llc_policy: ReplacementPolicy,
}

impl HierarchyConfig {
    /// The paper's testbed: Intel Xeon E5-2699 v4 ("Broadwell-EP").
    ///
    /// * LLC: 55 MiB, 20 ways, inclusive — one way = 2.75 MiB, so the
    ///   paper's 10 % mask `0x3` grants 5.5 MiB.
    /// * L2: 256 KiB, 8 ways, private per core.
    /// * DRAM: 64 GB/s read bandwidth, 80 ns latency (≈ 176 cycles at
    ///   2.2 GHz), measured by the authors with Intel MLC.
    pub fn broadwell_e5_2699_v4() -> Self {
        HierarchyConfig {
            l2: CacheLevelConfig {
                size_bytes: 256 * 1024,
                ways: 8,
            },
            llc: CacheLevelConfig {
                size_bytes: 55 * 1024 * 1024,
                ways: 20,
            },
            dram: DramConfig {
                latency_cycles: 176,
                occupancy_centi_cycles: 220,
            },
            cost: CostModel::default(),
            prefetch_depth: 64,
            llc_policy: ReplacementPolicy::Lru,
        }
    }

    /// A small hierarchy for fast unit tests: 4 KiB 4-way L2, 64 KiB 8-way
    /// LLC, cheap DRAM. Geometry is valid but tiny so tests can force
    /// evictions with few accesses.
    pub fn tiny_for_tests() -> Self {
        HierarchyConfig {
            l2: CacheLevelConfig {
                size_bytes: 4 * 1024,
                ways: 4,
            },
            llc: CacheLevelConfig {
                size_bytes: 64 * 1024,
                ways: 8,
            },
            dram: DramConfig {
                latency_cycles: 100,
                occupancy_centi_cycles: 200,
            },
            cost: CostModel::default(),
            prefetch_depth: 0,
            llc_policy: ReplacementPolicy::Lru,
        }
    }

    /// Returns a copy with the LLC restricted to `size_bytes` (rounded to a
    /// whole number of ways). Used by the micro-benchmarks that sweep the
    /// LLC size (Figures 4-6): the paper implements the sweep with CAT
    /// masks, we implement it by masking too — this helper only computes
    /// the equivalent mask.
    ///
    /// # Errors
    /// Fails when the rounded way count is zero or exceeds the LLC's ways.
    pub fn llc_mask_for_bytes(&self, size_bytes: u64) -> Result<WayMask, MaskError> {
        let way = self.llc.way_bytes();
        let ways = (size_bytes / way).max(1);
        WayMask::from_ways(ways.min(u64::from(self.llc.ways)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadwell_geometry_matches_paper() {
        let c = HierarchyConfig::broadwell_e5_2699_v4();
        assert_eq!(c.llc.size_bytes, 55 * 1024 * 1024);
        assert_eq!(c.llc.ways, 20);
        // One way is 2.75 MiB (paper section V-A).
        assert_eq!(c.llc.way_bytes(), 2_883_584);
        // 45,056 sets: 55 MiB / (20 ways * 64 B).
        assert_eq!(c.llc.sets(), 45_056);
        assert_eq!(c.l2.sets(), 512);
    }

    #[test]
    fn llc_mask_for_bytes_rounds_to_ways() {
        let c = HierarchyConfig::broadwell_e5_2699_v4();
        // 5.5 MiB -> exactly 2 ways.
        let m = c.llc_mask_for_bytes(c.llc.way_bytes() * 2).unwrap();
        assert_eq!(m.way_count(), 2);
        // Asking for less than a way still grants one way.
        assert_eq!(c.llc_mask_for_bytes(1).unwrap().way_count(), 1);
        // Asking for more than the cache grants everything.
        assert_eq!(c.llc_mask_for_bytes(u64::MAX).unwrap().way_count(), 20);
    }

    #[test]
    fn full_mask_covers_all_ways() {
        let c = HierarchyConfig::broadwell_e5_2699_v4();
        assert_eq!(c.llc.full_mask().unwrap().bits(), 0xfffff);
        assert_eq!(c.l2.full_mask().unwrap().bits(), 0xff);
    }
}
