//! Simulated address space.
//!
//! Simulated operators do not move real bytes; they generate *addresses*.
//! [`AddrSpace`] is a bump allocator handing out non-overlapping,
//! line-aligned [`Region`]s for each modeled data structure (a column, a
//! dictionary, a hash table, a bit vector, ...), so that distinct structures
//! never alias in the cache model.

use crate::LINE_BYTES;
use serde::{Deserialize, Serialize};

/// A contiguous, line-aligned range of simulated memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// First byte address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// Byte address of offset `off` into the region.
    ///
    /// # Panics
    /// Panics in debug builds when `off` is out of bounds — an out-of-range
    /// offset is a bug in an operator model, not a runtime condition.
    #[inline]
    pub fn addr(&self, off: u64) -> u64 {
        debug_assert!(
            off < self.len,
            "offset {off} out of region of {} bytes",
            self.len
        );
        self.base + off
    }

    /// Number of cache lines the region spans.
    pub fn lines(&self) -> u64 {
        self.len.div_ceil(LINE_BYTES)
    }

    /// Iterator over the byte address of the start of each line.
    pub fn line_starts(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.lines()).map(move |i| self.base + i * LINE_BYTES)
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.len
    }
}

/// Bump allocator for simulated regions.
///
/// Regions are padded to whole cache lines plus one guard line, so two
/// structures never share a line (which would create false sharing in the
/// model that the real system avoids by `malloc` alignment).
#[derive(Debug, Clone, Default)]
pub struct AddrSpace {
    next: u64,
}

impl AddrSpace {
    /// A fresh address space starting at address 0.
    pub fn new() -> Self {
        AddrSpace::default()
    }

    /// Allocates `len` bytes, line-aligned, with a guard line after.
    ///
    /// # Panics
    /// Panics when `len` is zero — every modeled structure occupies memory.
    pub fn alloc(&mut self, len: u64) -> Region {
        assert!(len > 0, "cannot allocate an empty region");
        let base = self.next;
        let padded = len.div_ceil(LINE_BYTES) * LINE_BYTES + LINE_BYTES;
        self.next += padded;
        Region { base, len }
    }

    /// Total simulated bytes handed out (including padding).
    pub fn allocated(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut a = AddrSpace::new();
        let r1 = a.alloc(100);
        let r2 = a.alloc(64);
        assert_eq!(r1.base % LINE_BYTES, 0);
        assert_eq!(r2.base % LINE_BYTES, 0);
        // r2 starts beyond r1's padded end (guard line included).
        assert!(r2.base >= r1.base + 128 + LINE_BYTES);
        assert!(!r1.contains(r2.base));
    }

    #[test]
    fn line_count_rounds_up() {
        let mut a = AddrSpace::new();
        assert_eq!(a.alloc(1).lines(), 1);
        assert_eq!(a.alloc(64).lines(), 1);
        assert_eq!(a.alloc(65).lines(), 2);
    }

    #[test]
    fn line_starts_enumerates_lines() {
        let mut a = AddrSpace::new();
        let r = a.alloc(200);
        let starts: Vec<u64> = r.line_starts().collect();
        assert_eq!(starts.len(), 4);
        assert_eq!(starts[0], r.base);
        assert_eq!(starts[3], r.base + 192);
    }

    #[test]
    fn addr_offsets() {
        let mut a = AddrSpace::new();
        let r = a.alloc(128);
        assert_eq!(r.addr(0), r.base);
        assert_eq!(r.addr(127), r.base + 127);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn rejects_empty_alloc() {
        AddrSpace::new().alloc(0);
    }
}
