//! The event lane: a bounded log of control-plane moments.
//!
//! Series tell you *what* the system looked like; events tell you
//! *when it decided something*. The recorder stamps each event with the
//! current recorder tick, so a `/timeline` consumer can line events up
//! against the series points that bracket them (occupancy before/after
//! a repartition is the canonical use). Events are rare — a handful per
//! control interval at worst — so a mutex-guarded ring is plenty; the
//! lock is never taken on the metric sampling path.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// One recorded control-plane moment.
#[derive(Debug, Clone)]
pub struct Event {
    /// Recorder tick current when the event fired (aligns with series
    /// sequence numbers; 0 = before the first tick).
    pub seq: u64,
    /// Milliseconds since the recorder started.
    pub t_ms: u64,
    /// Stable kind tag: `repartition`, `revert`, `hold`, `degraded`,
    /// `restored`, `breaker_trip`, `epoch_bump`, …
    pub kind: &'static str,
    /// Free-form detail (plan summary, failure reason, …).
    pub detail: String,
}

struct Inner {
    events: VecDeque<Event>,
    dropped: u64,
}

/// A bounded event ring; the oldest events fall off when full.
pub struct EventLane {
    cap: usize,
    inner: Mutex<Inner>,
}

impl EventLane {
    /// Creates a lane retaining the latest `cap` events.
    pub fn new(cap: usize) -> EventLane {
        EventLane {
            cap: cap.max(1),
            inner: Mutex::new(Inner {
                events: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn emit(&self, event: Event) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if inner.events.len() >= self.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }

    /// Events with `seq > after`, oldest first.
    pub fn since(&self, after: u64) -> Vec<Event> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner
            .events
            .iter()
            .filter(|e| e.seq > after)
            .cloned()
            .collect()
    }

    /// Events evicted because the lane was full.
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, kind: &'static str) -> Event {
        Event {
            seq,
            t_ms: seq * 100,
            kind,
            detail: String::new(),
        }
    }

    #[test]
    fn events_round_trip_and_filter_by_seq() {
        let lane = EventLane::new(8);
        lane.emit(ev(1, "repartition"));
        lane.emit(ev(3, "revert"));
        let all = lane.since(0);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].kind, "repartition");
        let late = lane.since(1);
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].kind, "revert");
    }

    #[test]
    fn full_lane_evicts_oldest_and_counts_drops() {
        let lane = EventLane::new(2);
        for seq in 1..=4 {
            lane.emit(ev(seq, "hold"));
        }
        let kept: Vec<u64> = lane.since(0).iter().map(|e| e.seq).collect();
        assert_eq!(kept, vec![3, 4]);
        assert_eq!(lane.dropped(), 2);
    }
}
