//! The flight recorder: a fixed-memory ring TSDB over `ccp-obs`.
//!
//! Every `interval` the recorder thread calls
//! [`Registry::sample_all`] and pushes one point per metric into that
//! metric's [`Series`]: counters and gauges become one series each
//! (named `family{labels}`), histograms become windowed `:p50` / `:p95`
//! / `:p99` / `:count` series — the recorder diffs consecutive
//! cumulative snapshots with
//! [`HistogramSnapshot::delta_since`] and takes proper log-linear
//! quantiles on the delta, so a percentile point describes *that
//! interval*, not the whole process history.
//!
//! ## Memory bound
//!
//! Memory is bounded by construction, not by luck: at most
//! `max_series` series are ever materialized (overflow increments a
//! counter and drops the series, never grows the map), and each series
//! owns `raw_window + history_window` slots of two `u64` words, fixed
//! at creation. With the defaults (512 series × (240 + 240) slots ×
//! 16 B) the recorder's point storage tops out at ~3.9 MiB plus series
//! names — independent of uptime. The event lane is a bounded ring of
//! `max_events` entries with the same property.
//!
//! Sampling is lock-*light*, not lock-free: the series map mutex is
//! held only to clone `Arc`s, the per-point writes are the seqlock
//! protocol in [`crate::ring`], and `/timeline` readers never block the
//! writer.

use crate::events::{Event, EventLane};
use crate::ring::{Downsample, Series};
use ccp_obs::{HistogramSnapshot, Labels, MetricSample, Registry};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant, SystemTime};

/// Everything tunable about a [`FlightRecorder`].
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Sampling interval (default 250 ms).
    pub interval: Duration,
    /// Raw points retained per series (default 240 ≈ 60 s at 250 ms).
    pub raw_window: usize,
    /// Downsampled points retained per series (default 240; at the
    /// default `downsample` that is ~8 minutes of history).
    pub history_window: usize,
    /// Raw points per downsampled history point (default 8).
    pub downsample: u64,
    /// Hard cap on distinct series; beyond it new series are dropped
    /// and counted (default 512).
    pub max_series: usize,
    /// Event-lane capacity (default 1024).
    pub max_events: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            interval: Duration::from_millis(250),
            raw_window: 240,
            history_window: 240,
            downsample: 8,
            max_series: 512,
            max_events: 1024,
        }
    }
}

/// State shared between the recorder thread, event emitters and
/// `/timeline` readers.
struct SharedState {
    cfg: RecorderConfig,
    series: Mutex<BTreeMap<String, Arc<Series>>>,
    events: EventLane,
    /// Last completed recorder tick (series sequence numbers).
    tick: AtomicU64,
    dropped_series: AtomicU64,
    started: Instant,
    started_unix_ms: u64,
    stop: AtomicBool,
}

/// A cloneable handle for emitting events and reading timelines.
#[derive(Clone)]
pub struct FlightHandle {
    shared: Arc<SharedState>,
}

/// One series' points, plus the merged events, as returned by
/// [`FlightHandle::timeline`].
pub struct Timeline {
    /// Last completed recorder tick.
    pub tick: u64,
    /// Sampling interval in milliseconds (maps seq deltas to time).
    pub interval_ms: u64,
    /// Milliseconds since the recorder started.
    pub now_ms: u64,
    /// Recorder start as unix epoch milliseconds.
    pub started_unix_ms: u64,
    /// Series dropped at the `max_series` cap.
    pub dropped_series: u64,
    /// Events evicted from the full lane.
    pub dropped_events: u64,
    /// `(name, points)` pairs, name-sorted; each point is `(seq, value)`.
    pub series: Vec<(String, Vec<(u64, f64)>)>,
    /// Events with `seq > since`, oldest first.
    pub events: Vec<Event>,
}

impl FlightHandle {
    /// Last completed recorder tick.
    pub fn tick(&self) -> u64 {
        // ORDERING: Acquire pairs with the sampler's Release tick store,
        // so a reader at tick t also sees every point pushed for t.
        self.shared.tick.load(Ordering::Acquire)
    }

    /// Milliseconds since the recorder started.
    pub fn now_ms(&self) -> u64 {
        self.shared.started.elapsed().as_millis() as u64
    }

    /// Records a control-plane event at the current tick.
    pub fn emit(&self, kind: &'static str, detail: impl Into<String>) {
        self.shared.events.emit(Event {
            seq: self.tick(),
            t_ms: self.now_ms(),
            kind,
            detail: detail.into(),
        });
    }

    /// Snapshot of every series and event newer than `since`
    /// (`since = 0` for everything retained), optionally filtered to
    /// series whose name starts with `prefix`.
    pub fn timeline(&self, since: u64, prefix: Option<&str>) -> Timeline {
        let rings: Vec<(String, Arc<Series>)> = {
            let map = self
                .shared
                .series
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            map.iter()
                .filter(|(name, _)| prefix.is_none_or(|p| name.starts_with(p)))
                .map(|(name, s)| (name.clone(), Arc::clone(s)))
                .collect()
        };
        let series: Vec<(String, Vec<(u64, f64)>)> = rings
            .into_iter()
            .map(|(name, ring)| (name, ring.points_since(since)))
            .filter(|(_, pts)| !pts.is_empty())
            .collect();
        Timeline {
            tick: self.tick(),
            interval_ms: self.shared.cfg.interval.as_millis() as u64,
            now_ms: self.now_ms(),
            started_unix_ms: self.shared.started_unix_ms,
            // ORDERING: monotone statistics counter; an off-by-one-tick
            // read only staled the number, it gates nothing.
            dropped_series: self.shared.dropped_series.load(Ordering::Relaxed),
            dropped_events: self.shared.events.dropped(),
            series,
            events: self.shared.events.since(since),
        }
    }
}

/// The sampling half: owns the per-series writer state (downsample
/// accumulators, previous histogram snapshots). Exactly one sampler
/// exists per recorder — either driven by the background thread or
/// manually from tests via [`Sampler::tick`].
pub struct Sampler {
    shared: Arc<SharedState>,
    registry: Registry,
    acc: BTreeMap<String, Downsample>,
    prev_hist: BTreeMap<String, HistogramSnapshot>,
}

impl Sampler {
    /// Takes one snapshot of the registry and publishes it as tick
    /// `tick() + 1`.
    pub fn tick(&mut self) {
        // ORDERING: the sampler is the only writer of `tick` (single
        // sampler per recorder), so its own Relaxed read is exact; the
        // Release store at the end of this method is what readers pair
        // their Acquire with.
        let seq = self.shared.tick.load(Ordering::Relaxed) + 1;
        for family in self.registry.sample_all() {
            for (labels, sample) in family.samples {
                let base = series_name(&family.name, &labels);
                match sample {
                    MetricSample::Counter(v) => self.push(&base, seq, v as f64),
                    MetricSample::Gauge(v) => self.push(&base, seq, v),
                    MetricSample::Histogram(snap) => {
                        let delta = match self.prev_hist.get(&base) {
                            Some(prev) => snap.delta_since(prev),
                            None => snap.clone(),
                        };
                        self.prev_hist.insert(base.clone(), snap);
                        let n = delta.count();
                        self.push(&format!("{base}:count"), seq, n as f64);
                        if n > 0 {
                            for (tag, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                                self.push(&format!("{base}:{tag}"), seq, delta.quantile(q));
                            }
                        }
                    }
                }
            }
        }
        // ORDERING: Release publishes every point of this tick before
        // the tick counter readers Acquire.
        self.shared.tick.store(seq, Ordering::Release);
    }

    fn push(&mut self, name: &str, seq: u64, value: f64) {
        let Some(series) = self.series_for(name) else {
            return;
        };
        series.raw().push(seq, value);
        self.acc
            .entry(name.to_string())
            .or_default()
            .record(&series, seq, value);
    }

    fn series_for(&self, name: &str) -> Option<Arc<Series>> {
        let mut map = self
            .shared
            .series
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = map.get(name) {
            return Some(Arc::clone(s));
        }
        if map.len() >= self.shared.cfg.max_series {
            // ORDERING: monotone overflow counter for reporting only.
            self.shared.dropped_series.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let s = Arc::new(Series::new(
            self.shared.cfg.raw_window,
            self.shared.cfg.history_window,
            self.shared.cfg.downsample,
        ));
        map.insert(name.to_string(), Arc::clone(&s));
        Some(s)
    }
}

/// Formats `family{labels}` exactly like the Prometheus exposition
/// (labels come pre-sorted from the registry), so series names match
/// what `/metrics` shows.
fn series_name(family: &str, labels: &Labels) -> String {
    if labels.is_empty() {
        return family.to_string();
    }
    let mut out = String::with_capacity(family.len() + 16);
    out.push_str(family);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// A running flight recorder; [`stop`](FlightRecorder::stop) (or drop)
/// joins the sampling thread.
pub struct FlightRecorder {
    handle: FlightHandle,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl FlightRecorder {
    fn shared(cfg: RecorderConfig) -> Arc<SharedState> {
        let started_unix_ms = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        Arc::new(SharedState {
            events: EventLane::new(cfg.max_events),
            cfg,
            series: Mutex::new(BTreeMap::new()),
            tick: AtomicU64::new(0),
            dropped_series: AtomicU64::new(0),
            started: Instant::now(),
            started_unix_ms,
            stop: AtomicBool::new(false),
        })
    }

    /// Starts the background sampling thread over `registry`.
    pub fn spawn(registry: &Registry, cfg: RecorderConfig) -> std::io::Result<FlightRecorder> {
        let interval = cfg.interval;
        let shared = Self::shared(cfg);
        let mut sampler = Sampler {
            shared: Arc::clone(&shared),
            registry: registry.clone(),
            acc: BTreeMap::new(),
            prev_hist: BTreeMap::new(),
        };
        let thread_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("ccp-flight".to_string())
            .spawn(move || {
                // ORDERING: the stop flag is a plain shutdown latch.
                while !thread_shared.stop.load(Ordering::Relaxed) {
                    sampler.tick();
                    std::thread::park_timeout(interval);
                }
            })?;
        Ok(FlightRecorder {
            handle: FlightHandle { shared },
            worker: Some(worker),
        })
    }

    /// A recorder without a thread, for deterministic tests: drive
    /// ticks yourself through the returned [`Sampler`].
    pub fn manual(registry: &Registry, cfg: RecorderConfig) -> (FlightHandle, Sampler) {
        let shared = Self::shared(cfg);
        (
            FlightHandle {
                shared: Arc::clone(&shared),
            },
            Sampler {
                shared,
                registry: registry.clone(),
                acc: BTreeMap::new(),
                prev_hist: BTreeMap::new(),
            },
        )
    }

    /// The emit/read handle (cloneable).
    pub fn handle(&self) -> FlightHandle {
        self.handle.clone()
    }

    /// Stops and joins the sampling thread. Idempotent.
    pub fn stop(&mut self) {
        // ORDERING: shutdown latch; the join below synchronizes.
        self.handle.shared.stop.store(true, Ordering::Relaxed);
        if let Some(worker) = self.worker.take() {
            worker.thread().unpark();
            let _ = worker.join();
        }
    }
}

impl Drop for FlightRecorder {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg() -> RecorderConfig {
        RecorderConfig {
            interval: Duration::from_millis(5),
            raw_window: 8,
            history_window: 8,
            downsample: 2,
            max_series: 16,
            max_events: 8,
        }
    }

    #[test]
    fn manual_ticks_record_counters_and_gauges() {
        let registry = Registry::new();
        let jobs = registry.counter_family("jobs_total", "J");
        let depth = registry.gauge_family("depth", "D");
        let (handle, mut sampler) = FlightRecorder::manual(&registry, test_cfg());
        jobs.get_or_create(&[("class", "polluting")]).add(3);
        depth.get_or_create(&[]).set(2.0);
        sampler.tick();
        jobs.get_or_create(&[("class", "polluting")]).add(2);
        depth.get_or_create(&[]).set(5.0);
        sampler.tick();
        assert_eq!(handle.tick(), 2);
        let tl = handle.timeline(0, None);
        let series: BTreeMap<&str, &Vec<(u64, f64)>> =
            tl.series.iter().map(|(n, p)| (n.as_str(), p)).collect();
        assert_eq!(
            series["jobs_total{class=\"polluting\"}"],
            &vec![(1, 3.0), (2, 5.0)]
        );
        assert_eq!(series["depth"], &vec![(1, 2.0), (2, 5.0)]);
        // Incremental read: only the new tick.
        let tl2 = handle.timeline(1, None);
        assert!(tl2.series.iter().all(|(_, p)| p == &vec![(2, 5.0)]));
    }

    #[test]
    fn histogram_series_are_windowed_quantiles() {
        let registry = Registry::new();
        let lat = registry
            .histogram_family("lat_seconds", "L")
            .get_or_create(&[]);
        let (handle, mut sampler) = FlightRecorder::manual(&registry, test_cfg());
        for _ in 0..100 {
            lat.observe(4.0);
        }
        sampler.tick();
        for _ in 0..100 {
            lat.observe(0.25);
        }
        sampler.tick();
        let tl = handle.timeline(0, None);
        let p95: &Vec<(u64, f64)> = &tl
            .series
            .iter()
            .find(|(n, _)| n == "lat_seconds:p95")
            .expect("p95 series exists")
            .1;
        // Tick 1 saw the slow window, tick 2 only the fast one.
        assert!(p95[0].1 > 3.0, "tick 1 p95 = {}", p95[0].1);
        assert!(p95[1].1 < 0.5, "tick 2 p95 = {}", p95[1].1);
        let count: &Vec<(u64, f64)> = &tl
            .series
            .iter()
            .find(|(n, _)| n == "lat_seconds:count")
            .expect("count series exists")
            .1;
        assert_eq!(count, &vec![(1, 100.0), (2, 100.0)]);
    }

    #[test]
    fn series_cap_drops_and_counts() {
        let registry = Registry::new();
        let fam = registry.gauge_family("g", "G");
        let cfg = RecorderConfig {
            max_series: 2,
            ..test_cfg()
        };
        let (handle, mut sampler) = FlightRecorder::manual(&registry, cfg);
        for i in 0..5 {
            fam.get_or_create(&[("i", &i.to_string())]).set(1.0);
        }
        sampler.tick();
        let tl = handle.timeline(0, None);
        assert_eq!(tl.series.len(), 2);
        assert_eq!(tl.dropped_series, 3);
    }

    #[test]
    fn events_carry_the_current_tick() {
        let registry = Registry::new();
        registry.gauge_family("g", "G").get_or_create(&[]).set(0.0);
        let (handle, mut sampler) = FlightRecorder::manual(&registry, test_cfg());
        sampler.tick();
        handle.emit("repartition", "plan 4/4/8");
        sampler.tick();
        handle.emit("revert", "apply failed");
        let tl = handle.timeline(0, None);
        assert_eq!(tl.events.len(), 2);
        assert_eq!(tl.events[0].seq, 1);
        assert_eq!(tl.events[0].kind, "repartition");
        assert_eq!(tl.events[1].seq, 2);
        // `since` filters events too.
        assert_eq!(handle.timeline(1, None).events.len(), 1);
    }

    #[test]
    fn prefix_filter_narrows_series() {
        let registry = Registry::new();
        registry
            .gauge_family("aa_x", "A")
            .get_or_create(&[])
            .set(1.0);
        registry
            .gauge_family("bb_y", "B")
            .get_or_create(&[])
            .set(2.0);
        let (handle, mut sampler) = FlightRecorder::manual(&registry, test_cfg());
        sampler.tick();
        let tl = handle.timeline(0, Some("aa_"));
        assert_eq!(tl.series.len(), 1);
        assert_eq!(tl.series[0].0, "aa_x");
    }

    #[test]
    fn spawned_recorder_ticks_and_stops() {
        let registry = Registry::new();
        registry
            .counter_family("c_total", "C")
            .get_or_create(&[])
            .add(1);
        let mut rec = FlightRecorder::spawn(&registry, test_cfg()).expect("spawn");
        let handle = rec.handle();
        let deadline = Instant::now() + Duration::from_secs(5);
        while handle.tick() < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(handle.tick() >= 2, "recorder never ticked");
        rec.stop();
        let t = handle.tick();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(handle.tick(), t, "ticks continued after stop");
    }
}
