//! Fixed-capacity, single-writer/many-reader series rings.
//!
//! One [`SeriesRing`] holds the most recent `cap` points of one time
//! series as `(seq, f64)` pairs. The writer (the recorder thread)
//! overwrites the oldest slot in place; readers (`/timeline` handlers)
//! scan the slots lock-free and detect torn rows with a per-slot
//! seqlock: the slot's sequence word is zeroed before the value is
//! replaced and republished after, so a reader that observes different
//! sequence numbers around its value load discards the row instead of
//! pairing a stale sequence with a fresh value.
//!
//! A [`Series`] stacks two rings into the recorder's two-tier
//! retention: a **raw** ring of every recorded point (the recent
//! window) and a **history** ring of means over `every` consecutive raw
//! points (the downsampled past). Both are fixed-size at construction —
//! the whole structure never allocates after `new`, which is what
//! bounds the recorder's memory.
//!
//! The writer protocol is deliberately decomposed into tiny published
//! steps (`slot_invalidate` / `slot_store_value` / `slot_publish` /
//! `publish_head`) so the `ccp-verify` interleaving explorer can drive
//! a writer and readers through every schedule of those steps and check
//! that no torn row is ever returned (see
//! `crates/verify/tests/flight_ring.rs`).

use std::sync::atomic::{AtomicU64, Ordering};

/// One published point: a sequence word (0 = empty or mid-write) and
/// the value's bit pattern.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    bits: AtomicU64,
}

/// A fixed-capacity ring of `(seq, value)` points. Sequence numbers are
/// assigned by the single writer, must be nonzero and strictly
/// increasing; readers scan slots and sort by sequence.
#[derive(Debug)]
pub struct SeriesRing {
    slots: Box<[Slot]>,
    /// Completed pushes; only the writer advances it (slot rotation).
    pushes: AtomicU64,
    /// Highest published sequence number (0 while empty).
    head: AtomicU64,
}

impl SeriesRing {
    /// Creates a ring retaining the latest `cap` points (`cap >= 1`).
    pub fn new(cap: usize) -> SeriesRing {
        let cap = cap.max(1);
        SeriesRing {
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    bits: AtomicU64::new(0),
                })
                .collect(),
            pushes: AtomicU64::new(0),
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn cap(&self) -> usize {
        self.slots.len()
    }

    /// Highest published sequence number (0 while empty).
    pub fn head(&self) -> u64 {
        // ORDERING: Acquire pairs with `publish_head`'s Release so a
        // reader that sees head = s also sees slot s published.
        self.head.load(Ordering::Acquire)
    }

    /// The slot index the next push will overwrite.
    #[doc(hidden)]
    pub fn writer_pos(&self) -> usize {
        // ORDERING: writer-only counter (single-writer contract); the
        // load only feeds the writer's own slot rotation.
        (self.pushes.load(Ordering::Relaxed) % self.slots.len() as u64) as usize
    }

    /// Writer step 1: mark the slot mid-write so readers reject it.
    #[doc(hidden)]
    pub fn slot_invalidate(&self, pos: usize) {
        // ORDERING: Relaxed suffices — the value store below is Release,
        // which orders this zeroing before the new bits for any reader
        // that observes them.
        self.slots[pos].seq.store(0, Ordering::Relaxed);
    }

    /// Writer step 2: store the new value's bits.
    #[doc(hidden)]
    pub fn slot_store_value(&self, pos: usize, value: f64) {
        // ORDERING: Release orders the preceding `slot_invalidate` before
        // these bits; a reader whose Acquire bits-load observes them is
        // therefore guaranteed to see seq = 0 (or newer) on its re-check
        // and discards the torn row.
        self.slots[pos]
            .bits
            .store(value.to_bits(), Ordering::Release);
    }

    /// Writer step 3: publish the slot under its sequence number.
    #[doc(hidden)]
    pub fn slot_publish(&self, pos: usize, seq: u64) {
        // ORDERING: Release pairs with the reader's Acquire seq-load; a
        // reader that observes this sequence also observes the bits
        // stored in step 2.
        self.slots[pos].seq.store(seq, Ordering::Release);
        // ORDERING: writer-only rotation counter; published to nobody.
        self.pushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Writer step 4: advance the ring head.
    #[doc(hidden)]
    pub fn publish_head(&self, seq: u64) {
        // ORDERING: Release pairs with `head`'s Acquire load.
        self.head.store(seq, Ordering::Release);
    }

    /// Pushes one point. Single-writer contract: only one thread may
    /// push into a given ring; `seq` must be nonzero and greater than
    /// every previously pushed sequence.
    pub fn push(&self, seq: u64, value: f64) {
        let pos = self.writer_pos();
        self.slot_invalidate(pos);
        self.slot_store_value(pos, value);
        self.slot_publish(pos, seq);
        self.publish_head(seq);
    }

    /// Torn-row-checked read of one slot; `None` when the slot is
    /// empty, mid-write, or was overwritten during the read.
    pub fn read_slot(&self, pos: usize) -> Option<(u64, f64)> {
        let slot = &self.slots[pos];
        // ORDERING: Acquire pairs with `slot_publish`'s Release: seeing
        // sequence s implies the bits for s are visible below.
        let s1 = slot.seq.load(Ordering::Acquire);
        if s1 == 0 {
            return None;
        }
        // ORDERING: Acquire pairs with `slot_store_value`'s Release: if
        // these bits belong to a *newer* write, that write's preceding
        // `slot_invalidate` (seq = 0) is visible to the re-check below,
        // which then fails the s1 == s2 test.
        let bits = slot.bits.load(Ordering::Acquire);
        // ORDERING: Relaxed re-check is ordered after the Acquire load
        // above; any overwrite observed through the bits forces a
        // mismatch here.
        let s2 = slot.seq.load(Ordering::Relaxed);
        if s1 != s2 {
            return None;
        }
        Some((s1, f64::from_bits(bits)))
    }

    /// Every readable point with sequence greater than `after`,
    /// ascending by sequence. Rows torn by a concurrent overwrite are
    /// skipped (their replacements show up on the next call).
    pub fn since(&self, after: u64) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = (0..self.slots.len())
            .filter_map(|pos| self.read_slot(pos))
            .filter(|&(seq, _)| seq > after)
            .collect();
        out.sort_unstable_by_key(|&(seq, _)| seq);
        out
    }
}

/// Two-tier retention for one series: a raw recent window plus a
/// downsampled history of window means.
#[derive(Debug)]
pub struct Series {
    raw: SeriesRing,
    history: SeriesRing,
    every: u64,
}

impl Series {
    /// Creates a series retaining `raw_cap` raw points and
    /// `history_cap` downsampled points of `every` raw points each.
    pub fn new(raw_cap: usize, history_cap: usize, every: u64) -> Series {
        Series {
            raw: SeriesRing::new(raw_cap),
            history: SeriesRing::new(history_cap),
            every: every.max(1),
        }
    }

    /// The raw (recent-window) ring.
    pub fn raw(&self) -> &SeriesRing {
        &self.raw
    }

    /// The downsampled history ring.
    pub fn history(&self) -> &SeriesRing {
        &self.history
    }

    /// Raw points per history point.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Fixed upper bound on this series' point storage, in bytes (two
    /// `u64` words per slot across both tiers).
    pub fn bytes(&self) -> usize {
        (self.raw.cap() + self.history.cap()) * 2 * std::mem::size_of::<u64>()
    }

    /// Merged view since `after`: history points older than the oldest
    /// returned raw point, then the raw window, ascending by sequence.
    /// A history point carries the sequence of its last constituent raw
    /// point, so the cutoff dedups the overlap between the tiers.
    pub fn points_since(&self, after: u64) -> Vec<(u64, f64)> {
        let raw = self.raw.since(after);
        let cutoff = raw.first().map_or(u64::MAX, |&(seq, _)| seq);
        let mut out = self.history.since(after);
        out.retain(|&(seq, _)| seq < cutoff);
        out.extend(raw);
        out
    }
}

/// Writer-side accumulator for one series' downsampling: owned by the
/// recorder thread, never shared.
#[derive(Debug, Default)]
pub struct Downsample {
    sum: f64,
    n: u64,
}

impl Downsample {
    /// Records one raw point; when `series.every()` points have
    /// accumulated, pushes their mean into the history tier under the
    /// latest sequence and resets.
    pub fn record(&mut self, series: &Series, seq: u64, value: f64) {
        self.sum += value;
        self.n += 1;
        if self.n >= series.every() {
            series.history.push(seq, self.sum / self.n as f64);
            self.sum = 0.0;
            self.n = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushes_and_reads_back_in_order() {
        let r = SeriesRing::new(4);
        for seq in 1..=3u64 {
            r.push(seq, seq as f64 * 10.0);
        }
        assert_eq!(r.head(), 3);
        assert_eq!(r.since(0), vec![(1, 10.0), (2, 20.0), (3, 30.0)],);
        assert_eq!(r.since(2), vec![(3, 30.0)]);
        assert!(r.since(3).is_empty());
    }

    #[test]
    fn overwrites_evict_the_oldest() {
        let r = SeriesRing::new(3);
        for seq in 1..=5u64 {
            r.push(seq, seq as f64);
        }
        assert_eq!(r.since(0), vec![(3, 3.0), (4, 4.0), (5, 5.0)]);
    }

    #[test]
    fn mid_write_slot_is_invisible() {
        let r = SeriesRing::new(2);
        r.push(1, 1.0);
        let pos = r.writer_pos();
        r.slot_invalidate(pos);
        r.slot_store_value(pos, 99.0);
        // Not yet published: the ring only shows the completed point.
        assert_eq!(r.since(0), vec![(1, 1.0)]);
        r.slot_publish(pos, 2);
        r.publish_head(2);
        assert_eq!(r.since(0), vec![(1, 1.0), (2, 99.0)]);
    }

    #[test]
    fn series_two_tier_merge_has_no_gaps_or_overlap() {
        // Raw keeps 4 points, history keeps means of every 2.
        let s = Series::new(4, 8, 2);
        let mut ds = Downsample::default();
        for seq in 1..=10u64 {
            s.raw().push(seq, seq as f64);
            ds.record(&s, seq, seq as f64);
        }
        let pts = s.points_since(0);
        // Raw window holds seqs 7..=10; history means at 2,4,6 predate it
        // (the 8 and 10 means are cut off by the raw overlap).
        let seqs: Vec<u64> = pts.iter().map(|&(q, _)| q).collect();
        assert_eq!(seqs, vec![2, 4, 6, 7, 8, 9, 10]);
        // History points are window means.
        assert_eq!(pts[0], (2, 1.5));
        assert_eq!(pts[1], (4, 3.5));
        assert_eq!(pts[2], (6, 5.5));
        // Ascending and unique.
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn memory_bound_is_fixed() {
        let s = Series::new(240, 240, 8);
        assert_eq!(s.bytes(), 240 * 2 * 2 * 8);
    }
}
