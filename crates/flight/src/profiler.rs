//! Continuous profiler: SIGPROF stack sampling with per-thread rings.
//!
//! ## How a sample happens
//!
//! A profiling session arms `ITIMER_PROF`, so the kernel delivers
//! `SIGPROF` to whichever thread is burning CPU, roughly `SAMPLE_HZ`
//! times per second of process CPU time. The handler reads the
//! interrupted context's RIP/RBP out of the `ucontext`, walks frame
//! pointers within the thread's stack bounds (captured at registration
//! via `pthread_getattr_np`), and appends the program counters to the
//! thread's preallocated sample ring. Everything the handler touches is
//! async-signal-safe: atomics, raw pointer reads guarded by the stack
//! bounds, and a `const`-initialized TLS cell — no allocation, no
//! formatting, no locks (the `signal-safe` xtask lint enforces this
//! region mechanically).
//!
//! ## How a sample becomes a flamegraph line
//!
//! Frame-pointer walking requires the binary to keep frame pointers;
//! build with `RUSTFLAGS=-Cforce-frame-pointers=yes` (the `flight-smoke`
//! CI job does) or stacks degrade to leaf-only. After the sampling
//! window, [`profile`] drains every ring, symbolizes program counters
//! lazily against `/proc/self/exe`'s ELF symbol table (see
//! `symbolize.rs`), and folds identical stacks into
//! `flamegraph.pl`-compatible collapsed lines:
//! `thread;root;…;leaf count`.
//!
//! Threads opt in with [`register_current_thread`]; the executor pools
//! register every worker, so collapsed stacks are keyed by pool
//! (`olap-worker-3;…`). Unregistered threads are sampled as dropped
//! counts, never followed.

use crate::symbolize::SymbolTable;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Deepest stack recorded per sample.
const MAX_FRAMES: usize = 64;
/// Per-thread ring capacity in `u64` words (~400 deep samples).
const RING_WORDS: usize = 8192;
/// Sampling rate in samples per second of process CPU time.
const SAMPLE_HZ: u64 = 100;

/// One thread's sample storage plus the stack bounds its handler walks.
struct ThreadRing {
    name: String,
    /// Lowest / highest valid stack address; (0, 0) = unknown, walk
    /// stays leaf-only.
    stack_lo: usize,
    stack_hi: usize,
    buf: Box<[AtomicU64]>,
    /// Words published by the signal handler (monotone).
    head: AtomicU64,
    /// Words consumed by the drain side (monotone).
    drained: AtomicU64,
    /// Samples skipped because the ring was full.
    dropped: AtomicU64,
}

fn rings() -> &'static Mutex<Vec<Arc<ThreadRing>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<ThreadRing>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Gate the handler checks before touching anything.
static ACTIVE: AtomicBool = AtomicBool::new(false);
/// Samples observed on threads that never registered.
static UNREGISTERED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The current thread's ring, if registered. `const`-initialized so
    /// the handler's read is a plain TLS load, not a lazy init.
    static CURRENT: Cell<*const ThreadRing> = const { Cell::new(std::ptr::null()) };
}

mod ffi {
    //! Minimal hand-rolled glibc x86_64 bindings (no libc crate in the
    //! workspace); layouts match `sysdeps/unix/sysv/linux` ABI.

    pub const SIGPROF: i32 = 27;
    pub const ITIMER_PROF: i32 = 2;
    pub const SA_SIGINFO: i32 = 4;
    #[allow(overflowing_literals)]
    pub const SA_RESTART: i32 = 0x1000_0000;
    /// Byte offset of `uc_mcontext.gregs` inside `ucontext_t`.
    pub const UCONTEXT_GREGS_OFFSET: usize = 40;
    pub const REG_RBP: usize = 10;
    pub const REG_RIP: usize = 16;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct Timeval {
        pub tv_sec: i64,
        pub tv_usec: i64,
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct Itimerval {
        pub it_interval: Timeval,
        pub it_value: Timeval,
    }

    /// glibc's `struct sigaction`: handler, 1024-bit mask, flags,
    /// restorer — 152 bytes on x86_64.
    #[repr(C)]
    pub struct Sigaction {
        pub handler: usize,
        pub mask: [u64; 16],
        pub flags: i32,
        pub restorer: usize,
    }

    /// `pthread_attr_t` is 56 opaque bytes on x86_64 glibc.
    #[repr(C)]
    pub struct PthreadAttr(pub [u64; 7]);

    extern "C" {
        pub fn sigaction(signum: i32, act: *const Sigaction, old: *mut Sigaction) -> i32;
        pub fn setitimer(which: i32, new: *const Itimerval, old: *mut Itimerval) -> i32;
        pub fn pthread_self() -> usize;
        pub fn pthread_getattr_np(thread: usize, attr: *mut PthreadAttr) -> i32;
        pub fn pthread_attr_getstack(
            attr: *const PthreadAttr,
            stackaddr: *mut *mut u8,
            stacksize: *mut usize,
        ) -> i32;
        pub fn pthread_attr_destroy(attr: *mut PthreadAttr) -> i32;
    }
}

/// The current thread's stack bounds, or (0, 0) when glibc won't say.
fn stack_bounds() -> (usize, usize) {
    let mut attr = ffi::PthreadAttr([0; 7]);
    // SAFETY: attr is a properly sized/aligned pthread_attr_t buffer;
    // pthread_getattr_np initializes it on success and we destroy it on
    // every path that initialized it.
    unsafe {
        if ffi::pthread_getattr_np(ffi::pthread_self(), &mut attr) != 0 {
            return (0, 0);
        }
        let mut addr: *mut u8 = std::ptr::null_mut();
        let mut size: usize = 0;
        let rc = ffi::pthread_attr_getstack(&attr, &mut addr, &mut size);
        ffi::pthread_attr_destroy(&mut attr);
        if rc != 0 || addr.is_null() || size == 0 {
            return (0, 0);
        }
        (addr as usize, addr as usize + size)
    }
}

// ASYNC-SIGNAL-SAFE: this handler runs inside signal delivery. It only
// reads the interrupted context, walks stack memory guarded by the
// registered bounds, and publishes words into preallocated atomics —
// no allocation, no formatting, no locking, no syscalls.
extern "C" fn on_sigprof(_sig: i32, _info: *mut u8, ctx: *mut u8) {
    // ORDERING: Acquire pairs with the session's Release arm, so an
    // active handler also sees the rings reset for this session.
    if !ACTIVE.load(Ordering::Acquire) {
        return;
    }
    let ring_ptr = match CURRENT.try_with(Cell::get) {
        Ok(p) => p,
        Err(_) => std::ptr::null(),
    };
    if ring_ptr.is_null() {
        // ORDERING: diagnostic counter, nothing depends on it.
        UNREGISTERED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // SAFETY: the pointer was set by this thread from an Arc that the
    // global ring registry keeps alive for the process lifetime, so it
    // is valid here even mid-signal.
    let ring = unsafe { &*ring_ptr };
    if ctx.is_null() {
        return;
    }
    // SAFETY: the kernel hands SA_SIGINFO handlers a ucontext_t; on
    // x86_64 glibc its gregs array sits at UCONTEXT_GREGS_OFFSET and
    // REG_RIP / REG_RBP index into it.
    let (rip, rbp) = unsafe {
        let gregs = ctx.add(ffi::UCONTEXT_GREGS_OFFSET) as *const i64;
        (
            *gregs.add(ffi::REG_RIP) as usize,
            *gregs.add(ffi::REG_RBP) as usize,
        )
    };
    let mut pcs = [0usize; MAX_FRAMES];
    pcs[0] = rip;
    let mut n = 1usize;
    let (lo, hi) = (ring.stack_lo, ring.stack_hi);
    let mut fp = rbp;
    while n < MAX_FRAMES {
        // Bail on anything not 8-aligned inside (lo, hi-16]: with
        // -Cforce-frame-pointers every frame's RBP stays in that range,
        // and foreign values fail the test instead of faulting.
        if fp < lo || fp.checked_add(16).is_none_or(|end| end > hi) || fp & 7 != 0 {
            break;
        }
        // SAFETY: fp and fp+8 are 8-aligned and inside this thread's
        // stack mapping (checked above), so both reads are of mapped,
        // readable memory.
        let (next, ret) = unsafe { (*(fp as *const usize), *((fp + 8) as *const usize)) };
        if ret == 0 {
            break;
        }
        pcs[n] = ret;
        n += 1;
        if next <= fp {
            break;
        }
        fp = next;
    }
    let cap = ring.buf.len() as u64;
    // ORDERING: head is only ever written by this handler on this
    // thread; Relaxed read-back of our own writes.
    let head = ring.head.load(Ordering::Relaxed);
    // ORDERING: a stale drained value only makes the fullness check
    // conservative (we drop a sample we could have kept).
    let drained = ring.drained.load(Ordering::Relaxed);
    let need = n as u64 + 1;
    if head - drained + need > cap {
        // ORDERING: diagnostic counter.
        ring.dropped.fetch_add(1, Ordering::Relaxed);
        return;
    }
    // ORDERING: slot stores are Relaxed; the Release store of head
    // below publishes them to the draining thread.
    ring.buf[(head % cap) as usize].store(n as u64, Ordering::Relaxed);
    for (i, pc) in pcs.iter().take(n).enumerate() {
        // ORDERING: published by the head store below.
        ring.buf[((head + 1 + i as u64) % cap) as usize].store(*pc as u64, Ordering::Relaxed);
    }
    // ORDERING: Release pairs with the drain side's Acquire head load,
    // making every word of this record visible before its length is.
    ring.head.store(head + need, Ordering::Release);
}

/// Registers the calling thread for stack sampling. Idempotent per
/// thread; the ring (≈64 KiB) lives for the process lifetime.
pub fn register_current_thread() {
    let already = CURRENT.with(|c| !c.get().is_null());
    if already {
        return;
    }
    let name = std::thread::current()
        .name()
        .unwrap_or("unnamed")
        .to_string();
    let (stack_lo, stack_hi) = stack_bounds();
    let ring = Arc::new(ThreadRing {
        name,
        stack_lo,
        stack_hi,
        buf: (0..RING_WORDS).map(|_| AtomicU64::new(0)).collect(),
        head: AtomicU64::new(0),
        drained: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    });
    CURRENT.with(|c| c.set(Arc::as_ptr(&ring)));
    rings()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(ring);
}

/// Why a profile request was refused.
#[derive(Debug)]
pub enum ProfileError {
    /// Another profiling session is in flight.
    Busy,
    /// Installing the handler or arming the timer failed.
    Os(io::Error),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::Busy => write!(f, "a profiling session is already running"),
            ProfileError::Os(e) => write!(f, "profiler setup failed: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// What a sampling window produced.
pub struct ProfileReport {
    /// Collapsed stacks, one `thread;frame;…;leaf count` line each,
    /// ready for `flamegraph.pl`.
    pub collapsed: String,
    /// Samples captured across all registered threads.
    pub samples: u64,
    /// Samples dropped (full rings + unregistered threads).
    pub dropped: u64,
    /// Registered threads that produced at least one sample.
    pub threads: usize,
}

fn install_handler() -> io::Result<()> {
    static INSTALLED: OnceLock<Result<(), i32>> = OnceLock::new();
    let res = INSTALLED.get_or_init(|| {
        let act = ffi::Sigaction {
            handler: on_sigprof as *const () as usize,
            mask: [0; 16],
            flags: ffi::SA_SIGINFO | ffi::SA_RESTART,
            restorer: 0,
        };
        // SAFETY: act is fully initialized; on_sigprof is an extern "C"
        // fn with the SA_SIGINFO signature and is async-signal-safe.
        let rc = unsafe { ffi::sigaction(ffi::SIGPROF, &act, std::ptr::null_mut()) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error().raw_os_error().unwrap_or(-1))
        }
    });
    match res {
        Ok(()) => Ok(()),
        Err(code) => Err(io::Error::from_raw_os_error(*code)),
    }
}

fn set_prof_timer(interval_us: i64) -> io::Result<()> {
    let tv = ffi::Timeval {
        tv_sec: interval_us / 1_000_000,
        tv_usec: interval_us % 1_000_000,
    };
    let timer = ffi::Itimerval {
        it_interval: tv,
        it_value: tv,
    };
    // SAFETY: timer is a fully initialized Itimerval and ITIMER_PROF is
    // a valid which-timer constant.
    let rc = unsafe { ffi::setitimer(ffi::ITIMER_PROF, &timer, std::ptr::null_mut()) };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Samples every registered thread for `duration` (wall time; SIGPROF
/// fires per CPU-second, so idle processes yield few samples) and
/// returns collapsed stacks. One session at a time — concurrent calls
/// get [`ProfileError::Busy`].
pub fn profile(duration: Duration) -> Result<ProfileReport, ProfileError> {
    static SESSION: Mutex<()> = Mutex::new(());
    let Ok(_session) = SESSION.try_lock() else {
        return Err(ProfileError::Busy);
    };
    install_handler().map_err(ProfileError::Os)?;
    let snapshot: Vec<Arc<ThreadRing>> = rings()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    let mut dropped_before = 0u64;
    for ring in &snapshot {
        // ORDERING: no session is active; these resets publish via the
        // ACTIVE Release below.
        ring.drained
            .store(ring.head.load(Ordering::Relaxed), Ordering::Relaxed);
        dropped_before += ring.dropped.load(Ordering::Relaxed);
    }
    // ORDERING: diagnostic counter read.
    let unregistered_before = UNREGISTERED.load(Ordering::Relaxed);
    // ORDERING: Release publishes the ring resets above to handlers
    // whose Acquire load observes the session as active.
    ACTIVE.store(true, Ordering::Release);
    let armed = set_prof_timer(1_000_000 / SAMPLE_HZ as i64);
    if let Err(e) = armed {
        // ORDERING: tear down the gate before reporting failure.
        ACTIVE.store(false, Ordering::Release);
        return Err(ProfileError::Os(e));
    }
    std::thread::sleep(duration);
    let _ = set_prof_timer(0);
    // ORDERING: Release orders the disarm before handlers re-check.
    ACTIVE.store(false, Ordering::Release);
    // Grace period: a handler that passed the gate just before the
    // disarm finishes within microseconds; 20ms is overkill on purpose.
    std::thread::sleep(Duration::from_millis(20));

    let symbols = SymbolTable::load();
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut samples = 0u64;
    let mut dropped_after = 0u64;
    let mut threads = 0usize;
    for ring in &snapshot {
        let got = drain_ring(ring, &symbols, &mut folded);
        samples += got;
        threads += usize::from(got > 0);
        // ORDERING: monotone statistics counter; the session is already
        // quiescent (timer disarmed, ACTIVE false, grace elapsed).
        dropped_after += ring.dropped.load(Ordering::Relaxed);
    }
    let mut collapsed = String::new();
    for (stack, count) in &folded {
        collapsed.push_str(stack);
        collapsed.push(' ');
        collapsed.push_str(&count.to_string());
        collapsed.push('\n');
    }
    Ok(ProfileReport {
        collapsed,
        samples,
        // ORDERING: monotone statistics counter read after the session
        // quiesced; no other state hangs off it.
        dropped: (dropped_after - dropped_before)
            + (UNREGISTERED.load(Ordering::Relaxed) - unregistered_before),
        threads,
    })
}

/// Drains one ring's records into the folded map; returns the sample
/// count. Runs only after the session deactivated, so the ring is
/// quiescent.
fn drain_ring(ring: &ThreadRing, symbols: &SymbolTable, folded: &mut BTreeMap<String, u64>) -> u64 {
    // ORDERING: Acquire pairs with the handler's Release head store so
    // every published word below head is visible.
    let head = ring.head.load(Ordering::Acquire);
    // ORDERING: drain-side cursor, only this (single-session) reader
    // advances it.
    let mut pos = ring.drained.load(Ordering::Relaxed);
    let cap = ring.buf.len() as u64;
    let mut samples = 0u64;
    while pos < head {
        // ORDERING: record words were published by the Acquire above.
        let len = ring.buf[(pos % cap) as usize].load(Ordering::Relaxed);
        pos += 1;
        if len == 0 || len > MAX_FRAMES as u64 || pos + len > head {
            break; // corrupt record; abandon the rest of the ring
        }
        let mut stack = String::with_capacity(len as usize * 24);
        stack.push_str(&ring.name);
        // Stored leaf-first; collapsed format wants root-first. Return
        // addresses (all but the leaf) point one past their call, so
        // resolve them at pc - 1.
        for i in (0..len).rev() {
            // ORDERING: published by the Acquire above.
            let pc = ring.buf[((pos + i) % cap) as usize].load(Ordering::Relaxed) as usize;
            let resolved = symbols.resolve(if i == 0 { pc } else { pc.saturating_sub(1) });
            stack.push(';');
            match resolved {
                Some(name) => stack.push_str(name),
                None => {
                    stack.push_str("0x");
                    stack.push_str(&format!("{pc:x}"));
                }
            }
        }
        pos += len;
        samples += 1;
        *folded.entry(stack).or_insert(0) += 1;
    }
    // ORDERING: single-reader cursor update.
    ring.drained.store(pos, Ordering::Relaxed);
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spin on the CPU so ITIMER_PROF actually fires.
    fn burn(ms: u64) -> u64 {
        let start = std::time::Instant::now();
        let mut acc = 0u64;
        while start.elapsed() < Duration::from_millis(ms) {
            for i in 0..10_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
        }
        acc
    }

    #[test]
    fn profile_captures_stacks_from_registered_threads() {
        let worker = std::thread::Builder::new()
            .name("flight-test-worker".to_string())
            .spawn(|| {
                register_current_thread();
                burn(1200)
            })
            .expect("spawn worker");
        std::thread::sleep(Duration::from_millis(50));
        let report = profile(Duration::from_millis(600)).expect("profile runs");
        let _ = worker.join();
        assert!(report.samples > 0, "no samples captured");
        assert!(
            report.collapsed.contains("flight-test-worker;"),
            "collapsed output missing the worker thread:\n{}",
            report.collapsed
        );
        for line in report.collapsed.lines() {
            let (_, count) = line.rsplit_once(' ').expect("line has a count");
            count.parse::<u64>().expect("count is numeric");
        }
    }

    #[test]
    fn concurrent_sessions_are_refused() {
        register_current_thread();
        let bg = std::thread::spawn(|| profile(Duration::from_millis(700)));
        std::thread::sleep(Duration::from_millis(150));
        let second = profile(Duration::from_millis(10));
        assert!(
            matches!(second, Err(ProfileError::Busy)),
            "overlapping session was not refused"
        );
        let first = bg.join().expect("bg join");
        assert!(first.is_ok(), "first session failed: {:?}", first.err());
    }

    #[test]
    fn register_is_idempotent() {
        let before = rings().lock().unwrap_or_else(PoisonError::into_inner).len();
        register_current_thread();
        register_current_thread();
        let after = rings().lock().unwrap_or_else(PoisonError::into_inner).len();
        assert!(after <= before + 1, "double registration grew the list");
    }
}
