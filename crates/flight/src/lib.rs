//! `ccp-flight`: flight recorder and continuous profiler.
//!
//! Post-hoc observability for the cache-partitioning server. A
//! partitioning decision that hurt tail latency is only debuggable if
//! the metrics *around* the decision survive it, so this crate keeps a
//! fixed-memory on-board record of everything `ccp-obs` knows:
//!
//! * [`ring`] — seqlock series rings with two-tier retention (raw
//!   window + downsampled history); single writer, torn-row-safe
//!   lock-free readers, memory fixed at construction.
//! * [`events`] — a bounded lane of control-plane moments
//!   (repartition / revert / degraded / breaker trip / epoch bump),
//!   stamped with recorder ticks so they align with series points.
//! * [`recorder`] — the sampling loop tying both to a
//!   [`ccp_obs::Registry`]: counters and gauges verbatim, histograms as
//!   *windowed* `:p50`/`:p95`/`:p99` quantile series via
//!   [`ccp_obs::HistogramSnapshot::delta_since`]. Served by the server
//!   as `GET /timeline` and rendered as the self-contained
//!   `GET /dashboard`.
//! * [`profiler`] + [`symbolize`] — SIGPROF stack sampling into
//!   preallocated per-thread rings (async-signal-safe handler,
//!   frame-pointer walk) with lazy ELF symbolization, collapsed into
//!   `flamegraph.pl` lines for `GET /profile?seconds=N`.

pub mod events;
pub mod profiler;
pub mod recorder;
pub mod ring;
pub mod symbolize;

pub use events::{Event, EventLane};
pub use profiler::{profile, register_current_thread, ProfileError, ProfileReport};
pub use recorder::{FlightHandle, FlightRecorder, RecorderConfig, Sampler, Timeline};
pub use ring::{Downsample, Series, SeriesRing};
pub use symbolize::SymbolTable;
