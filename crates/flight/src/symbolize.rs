//! Lazy in-process symbolization against `/proc/self/exe`.
//!
//! The profiler's signal handler records raw program counters; nothing
//! is resolved until a `/profile` response is being built. This module
//! then parses the running binary's ELF64 symbol table (`.symtab`,
//! falling back to `.dynsym` for stripped-but-dynamic builds), computes
//! the PIE load bias from `/proc/self/maps`, and demangles legacy Rust
//! symbol names. Everything is plain safe file parsing — no `unsafe`,
//! no external crates — because it runs on the request path, not in the
//! handler.

use std::fs;

/// One function symbol: `[addr, addr + size)` in link-time addresses.
struct Sym {
    addr: u64,
    size: u64,
    name: String,
}

/// A sorted function-symbol table plus the load bias that maps runtime
/// program counters back to link-time addresses.
pub struct SymbolTable {
    /// Sorted by `addr`; names are already demangled.
    syms: Vec<Sym>,
    /// `runtime_address - link_address` for the executable mapping.
    bias: u64,
}

impl SymbolTable {
    /// Parses the running executable. Failures (stripped binary,
    /// unreadable maps) degrade to an empty table — callers then render
    /// raw addresses, never errors.
    pub fn load() -> SymbolTable {
        let empty = SymbolTable {
            syms: Vec::new(),
            bias: 0,
        };
        let Ok(elf) = fs::read("/proc/self/exe") else {
            return empty;
        };
        let Some(mut syms) = parse_function_symbols(&elf) else {
            return empty;
        };
        syms.sort_by_key(|s| s.addr);
        let bias = load_bias(&elf).unwrap_or(0);
        SymbolTable { syms, bias }
    }

    /// Number of function symbols loaded.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// True when no symbols could be loaded.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Resolves a runtime program counter to a demangled function name.
    pub fn resolve(&self, pc: usize) -> Option<&str> {
        let addr = (pc as u64).checked_sub(self.bias)?;
        let idx = self.syms.partition_point(|s| s.addr <= addr);
        let sym = self.syms[..idx].last()?;
        // Zero-sized symbols (assembly stubs) match anything up to the
        // next symbol, which `partition_point` already guarantees.
        if sym.size > 0 && addr >= sym.addr + sym.size {
            return None;
        }
        Some(&sym.name)
    }
}

/// Little-endian field readers with bounds checking (a short read means
/// a malformed ELF and aborts the parse via `None`).
fn u16_at(b: &[u8], off: usize) -> Option<u64> {
    Some(u16::from_le_bytes(b.get(off..off + 2)?.try_into().ok()?) as u64)
}

fn u32_at(b: &[u8], off: usize) -> Option<u64> {
    Some(u32::from_le_bytes(b.get(off..off + 4)?.try_into().ok()?) as u64)
}

fn u64_at(b: &[u8], off: usize) -> Option<u64> {
    Some(u64::from_le_bytes(b.get(off..off + 8)?.try_into().ok()?))
}

/// Extracts `STT_FUNC` symbols from `.symtab` (type 2) or, failing
/// that, `.dynsym` (type 11).
fn parse_function_symbols(elf: &[u8]) -> Option<Vec<Sym>> {
    if elf.get(..4)? != b"\x7fELF" || *elf.get(4)? != 2 {
        return None; // not ELF64
    }
    let shoff = u64_at(elf, 0x28)? as usize;
    let shentsize = u16_at(elf, 0x3a)? as usize;
    let shnum = u16_at(elf, 0x3c)? as usize;
    let section = |i: usize| -> Option<&[u8]> {
        let off = shoff + i * shentsize;
        elf.get(off..off + shentsize)
    };
    // Prefer .symtab (2): it has local symbols; .dynsym (11) only has
    // exported ones but beats nothing.
    let mut chosen: Option<usize> = None;
    for want in [2u64, 11] {
        for i in 0..shnum {
            if u32_at(section(i)?, 0x04) == Some(want) {
                chosen = Some(i);
                break;
            }
        }
        if chosen.is_some() {
            break;
        }
    }
    let symtab_hdr = section(chosen?)?;
    let sym_off = u64_at(symtab_hdr, 0x18)? as usize;
    let sym_size = u64_at(symtab_hdr, 0x20)? as usize;
    let strtab_idx = u32_at(symtab_hdr, 0x28)? as usize;
    let strtab_hdr = section(strtab_idx)?;
    let str_off = u64_at(strtab_hdr, 0x18)? as usize;
    let str_size = u64_at(strtab_hdr, 0x20)? as usize;
    let strtab = elf.get(str_off..str_off + str_size)?;

    const SYM_ENTSIZE: usize = 24;
    let mut out = Vec::new();
    let table = elf.get(sym_off..sym_off + sym_size)?;
    for entry in table.chunks_exact(SYM_ENTSIZE) {
        let info = *entry.get(4)?;
        if info & 0xf != 2 {
            continue; // not STT_FUNC
        }
        let addr = u64_at(entry, 8)?;
        if addr == 0 {
            continue;
        }
        let name_off = u32_at(entry, 0)? as usize;
        let raw = strtab
            .get(name_off..)
            .and_then(|s| s.split(|&b| b == 0).next())
            .and_then(|s| std::str::from_utf8(s).ok())
            .unwrap_or("");
        if raw.is_empty() {
            continue;
        }
        out.push(Sym {
            addr,
            size: u64_at(entry, 16)?,
            name: demangle(raw),
        });
    }
    Some(out)
}

/// Minimum `PT_LOAD` virtual address — what the runtime base address
/// corresponds to for a PIE.
fn min_load_vaddr(elf: &[u8]) -> Option<u64> {
    let phoff = u64_at(elf, 0x20)? as usize;
    let phentsize = u16_at(elf, 0x36)? as usize;
    let phnum = u16_at(elf, 0x38)? as usize;
    let mut min: Option<u64> = None;
    for i in 0..phnum {
        let off = phoff + i * phentsize;
        let hdr = elf.get(off..off + phentsize)?;
        if u32_at(hdr, 0)? == 1 {
            let vaddr = u64_at(hdr, 0x10)?;
            min = Some(min.map_or(vaddr, |m| m.min(vaddr)));
        }
    }
    min
}

/// `runtime base − link-time base` from `/proc/self/maps`: the mapping
/// of our own executable at file offset 0 gives the runtime base.
fn load_bias(elf: &[u8]) -> Option<u64> {
    let link_base = min_load_vaddr(elf)?;
    let exe = fs::read_link("/proc/self/exe").ok()?;
    let exe = exe.to_str()?;
    let maps = fs::read_to_string("/proc/self/maps").ok()?;
    for line in maps.lines() {
        // `start-end perms offset dev inode   path`
        let mut fields = line.split_whitespace();
        let range = fields.next()?;
        let _perms = fields.next()?;
        let offset = fields.next()?;
        let _dev = fields.next();
        let _inode = fields.next();
        let path = fields.next().unwrap_or("");
        if path == exe && offset == "00000000" {
            let start = u64::from_str_radix(range.split('-').next()?, 16).ok()?;
            return start.checked_sub(link_base);
        }
    }
    None
}

/// Demangles a legacy Rust (`_ZN…E`) symbol; anything else passes
/// through unchanged. The trailing `17h<16 hex>` hash segment is
/// dropped, `$…$` escapes and `..` are rewritten, and path separators
/// become `::`.
pub fn demangle(raw: &str) -> String {
    let Some(rest) = raw.strip_prefix("_ZN") else {
        return raw.to_string();
    };
    let mut segments: Vec<String> = Vec::new();
    let mut s = rest;
    loop {
        if let Some(tail) = s.strip_prefix('E') {
            // `.llvm.123…` style suffixes after the terminator are fine;
            // anything else means this was not a legacy mangling.
            if !tail.is_empty() && !tail.starts_with('.') {
                return raw.to_string();
            }
            break;
        }
        let digits: String = s.chars().take_while(|c| c.is_ascii_digit()).collect();
        let Ok(len) = digits.parse::<usize>() else {
            return raw.to_string();
        };
        let after = &s[digits.len()..];
        if digits.is_empty() || after.len() < len {
            return raw.to_string();
        }
        segments.push(unescape(&after[..len]));
        s = &after[len..];
    }
    // Drop the trailing `h<16 hex>` disambiguator segment.
    if let Some(last) = segments.last() {
        let hex = last.strip_prefix('h').unwrap_or("");
        if hex.len() == 16 && hex.chars().all(|c| c.is_ascii_hexdigit()) {
            segments.pop();
        }
    }
    segments.join("::")
}

/// Rewrites legacy-mangling escapes inside one path segment.
fn unescape(seg: &str) -> String {
    let mut out = String::with_capacity(seg.len());
    // Segments that start with a special character carry a leading `_`
    // (e.g. `_$LT$…`); it is not part of the name.
    let mut rest = seg.strip_prefix("_$").map_or(seg, |_| &seg[1..]);
    while !rest.is_empty() {
        if let Some(tail) = rest.strip_prefix("..") {
            out.push_str("::");
            rest = tail;
            continue;
        }
        if rest.starts_with('$') {
            let table = [
                ("$LT$", "<"),
                ("$GT$", ">"),
                ("$LP$", "("),
                ("$RP$", ")"),
                ("$C$", ","),
                ("$BP$", "*"),
                ("$RF$", "&"),
                ("$u20$", " "),
                ("$u27$", "'"),
                ("$u5b$", "["),
                ("$u5d$", "]"),
                ("$u7b$", "{"),
                ("$u7d$", "}"),
            ];
            if let Some((esc, repl)) = table.iter().find(|(esc, _)| rest.starts_with(esc)) {
                out.push_str(repl);
                rest = &rest[esc.len()..];
                continue;
            }
        }
        let mut chars = rest.chars();
        if let Some(c) = chars.next() {
            out.push(c);
        }
        rest = chars.as_str();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demangles_legacy_rust_symbols() {
        assert_eq!(
            demangle("_ZN10ccp_engine8executor11JobExecutor3run17h0123456789abcdefE"),
            "ccp_engine::executor::JobExecutor::run"
        );
        assert_eq!(
            demangle("_ZN4core3ops8function6FnOnce9call_once17hdeadbeefdeadbeefE"),
            "core::ops::function::FnOnce::call_once"
        );
    }

    #[test]
    fn demangles_escape_sequences() {
        assert_eq!(
            demangle("_ZN67_$LT$ccp_engine..ops..Scan$u20$as$u20$ccp_engine..ops..Operator$GT$4next17haaaaaaaaaaaaaaaaE"),
            "<ccp_engine::ops::Scan as ccp_engine::ops::Operator>::next"
        );
    }

    #[test]
    fn non_rust_symbols_pass_through() {
        assert_eq!(demangle("memcpy"), "memcpy");
        assert_eq!(demangle("_Z3fooi"), "_Z3fooi");
        assert_eq!(demangle("_ZNnonsense"), "_ZNnonsense");
    }

    #[test]
    fn own_binary_resolves_a_known_function() {
        let table = SymbolTable::load();
        // The test binary carries a .symtab with this very function.
        assert!(!table.is_empty(), "no symbols loaded from /proc/self/exe");
        let pc = own_binary_resolves_a_known_function as fn() as *const () as usize;
        let name = table.resolve(pc).unwrap_or("");
        assert!(
            name.contains("own_binary_resolves_a_known_function"),
            "resolved {pc:#x} to {name:?}"
        );
    }

    #[test]
    fn out_of_range_pcs_resolve_to_none() {
        let table = SymbolTable::load();
        assert_eq!(table.resolve(0x10), None);
    }
}
