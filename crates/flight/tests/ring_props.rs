//! Property tests for the flight recorder's retention rings.
//!
//! The invariants here are the recorder's promises to `/timeline`
//! consumers: sequences come back strictly increasing with no gaps
//! inside the raw window, the two-tier merge never duplicates a
//! sequence, downsampled points are exact window means, incremental
//! `since` cursors lose nothing, and memory stays fixed no matter how
//! many points flow through.

use ccp_flight::{Downsample, Series, SeriesRing};
use proptest::prelude::*;

proptest! {
    /// Everything still in the window reads back strictly increasing
    /// and gap-free: exactly the last `min(n, cap)` sequences.
    #[test]
    fn raw_window_is_gap_free(cap in 1usize..40, n in 0u64..200) {
        let r = SeriesRing::new(cap);
        for seq in 1..=n {
            r.push(seq, seq as f64 * 0.5);
        }
        let pts = r.since(0);
        let expect_first = n.saturating_sub(cap as u64) + 1;
        let seqs: Vec<u64> = pts.iter().map(|&(s, _)| s).collect();
        let want: Vec<u64> = (expect_first..=n).collect();
        prop_assert_eq!(seqs, want);
        for (seq, v) in pts {
            prop_assert_eq!(v, seq as f64 * 0.5);
        }
    }

    /// An incremental reader that always passes its last seen sequence
    /// misses nothing the window still holds, and never sees a
    /// sequence twice.
    #[test]
    fn since_cursor_never_duplicates(cap in 2usize..20, batches in proptest::collection::vec(1u64..8, 1..20)) {
        let r = SeriesRing::new(cap);
        let mut cursor = 0u64;
        let mut seq = 0u64;
        let mut seen: Vec<u64> = Vec::new();
        for batch in batches {
            for _ in 0..batch {
                seq += 1;
                r.push(seq, seq as f64);
            }
            let pts = r.since(cursor);
            for &(s, _) in &pts {
                prop_assert!(s > cursor, "resurfaced sequence {}", s);
                seen.push(s);
            }
            if let Some(&(last, _)) = pts.last() {
                cursor = last;
            }
            // The reader keeping up within one window never misses: the
            // batch was at most `cap`, so its tail is still resident.
            prop_assert_eq!(cursor, seq);
        }
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), seen.len(), "duplicate sequences surfaced");
    }

    /// Two-tier merge: strictly increasing, no sequence appears in both
    /// tiers, raw values exact, history points are exact window means.
    #[test]
    fn two_tier_merge_is_consistent(
        raw_cap in 1usize..16,
        hist_cap in 1usize..16,
        every in 1u64..6,
        n in 0u64..120,
    ) {
        let s = Series::new(raw_cap, hist_cap, every);
        let mut ds = Downsample::default();
        let value = |seq: u64| (seq % 7) as f64 + 0.25;
        for seq in 1..=n {
            s.raw().push(seq, value(seq));
            ds.record(&s, seq, value(seq));
        }
        let pts = s.points_since(0);
        let seqs: Vec<u64> = pts.iter().map(|&(q, _)| q).collect();
        prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]), "not strictly increasing: {:?}", seqs);
        let raw_first = n.saturating_sub(raw_cap as u64) + 1;
        for (seq, v) in pts {
            if seq >= raw_first && n > 0 {
                // Raw tier: exact value.
                prop_assert_eq!(v, value(seq));
            } else {
                // History tier: mean of its `every`-point window, which
                // ends at `seq` by construction.
                prop_assert_eq!(seq % every, 0);
                let window: f64 = (seq - every + 1..=seq).map(value).sum();
                prop_assert!((v - window / every as f64).abs() < 1e-9);
            }
        }
    }

    /// Point storage never grows past the construction-time bound, no
    /// matter how many points flow through.
    #[test]
    fn memory_is_bounded_by_construction(raw_cap in 1usize..64, hist_cap in 1usize..64, n in 0u64..500) {
        let s = Series::new(raw_cap, hist_cap, 4);
        let bound = s.bytes();
        let mut ds = Downsample::default();
        for seq in 1..=n {
            s.raw().push(seq, 1.0);
            ds.record(&s, seq, 1.0);
        }
        prop_assert_eq!(s.bytes(), bound);
        prop_assert!(s.points_since(0).len() <= raw_cap + hist_cap);
        prop_assert_eq!(bound, (raw_cap + hist_cap) * 16);
    }
}
