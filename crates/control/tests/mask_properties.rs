//! Property tests for mask derivation: whatever targets the classifier
//! produces, the derived plan must be legal CAT state.

use ccp_control::{derive_masks, ClassId, ClassTargets};
use proptest::prelude::*;

proptest! {
    /// Every derived mask is non-empty, contiguous (guaranteed by the
    /// WayMask type — spot-checked anyway) and within the cache's
    /// capacity, for any targets whatsoever.
    #[test]
    fn derived_masks_are_always_legal(
        ways in 2u32..=32,
        min_ways in 1u32..=3,
        polluting in 0u32..=40,
        mixed in 0u32..=40,
        sensitive in 0u32..=40,
    ) {
        let t = ClassTargets { polluting, mixed, sensitive };
        let plan = derive_masks(&t, ways, min_ways);
        for class in ClassId::ALL {
            let m = plan.get(class);
            prop_assert!(m.way_count() >= 1, "{class:?} mask empty");
            prop_assert!(m.check_fits(ways).is_ok(),
                "{class:?} mask {m} exceeds {ways} ways");
            let bits = m.bits();
            let shifted = bits >> bits.trailing_zeros();
            prop_assert_eq!(shifted & shifted.wrapping_add(1), 0);
        }
    }

    /// Whenever the cache is big enough to split, each class gets at
    /// least `min_ways` and the polluter is isolated from both
    /// protected classes.
    #[test]
    fn splittable_caches_confine_the_polluter(
        ways in 4u32..=32,
        min_ways in 1u32..=2,
        polluting in 0u32..=40,
        mixed in 0u32..=40,
        sensitive in 0u32..=40,
    ) {
        let t = ClassTargets { polluting, mixed, sensitive };
        let plan = derive_masks(&t, ways, min_ways);
        for class in ClassId::ALL {
            prop_assert!(plan.get(class).way_count() >= min_ways);
        }
        prop_assert!(plan.polluter_isolated(),
            "polluter overlaps a protected class: {plan:?}");
    }

    /// Derivation is stable under permuted class order: building the
    /// same targets from pairs in any order yields the identical plan.
    #[test]
    fn derivation_is_stable_under_permuted_class_order(
        perm in 0usize..6,
        polluting in 0u32..=40,
        mixed in 0u32..=40,
        sensitive in 0u32..=40,
    ) {
        let pairs = [
            (ClassId::Polluting, polluting),
            (ClassId::Mixed, mixed),
            (ClassId::Sensitive, sensitive),
        ];
        // One of the 3! orderings, picked by `perm`.
        let orders = [
            [0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ];
        let permuted: Vec<(ClassId, u32)> =
            orders[perm].iter().map(|&i| pairs[i]).collect();
        let canonical = ClassTargets::from_pairs(&pairs, 2);
        let shuffled = ClassTargets::from_pairs(&permuted, 2);
        prop_assert_eq!(canonical, shuffled);
        prop_assert_eq!(
            derive_masks(&canonical, 20, 2),
            derive_masks(&shuffled, 20, 2)
        );
    }

    /// Derivation is idempotent: feeding a plan's own way counts back
    /// in reproduces the plan exactly (no drift from clamping).
    #[test]
    fn derivation_is_idempotent(
        ways in 4u32..=32,
        polluting in 0u32..=40,
        mixed in 0u32..=40,
        sensitive in 0u32..=40,
    ) {
        let first = derive_masks(
            &ClassTargets { polluting, mixed, sensitive }, ways, 2);
        let counts = first.way_counts();
        let again = derive_masks(
            &ClassTargets {
                polluting: counts[0].1,
                mixed: counts[1].1,
                sensitive: counts[2].1,
            },
            ways,
            2,
        );
        prop_assert_eq!(first, again);
    }
}
