//! Hysteresis unit suite: dwell windows, the change-magnitude
//! threshold, and the stale-reading/degraded clamps.

use ccp_cachesim::WayMask;
use ccp_control::{
    ClassId, ClassReading, ControlConfig, Controller, Decision, HoldReason, MaskPlan, RevertReason,
    TickInput,
};

const LLC: u64 = 55 * 1024 * 1024;
const WAYS: u32 = 20;

fn paper_static_plan() -> MaskPlan {
    MaskPlan::new(
        WayMask::new(0x3).unwrap(),
        WayMask::new(0xfff).unwrap(),
        WayMask::new(0xfffff).unwrap(),
    )
}

fn controller() -> Controller {
    Controller::new(ControlConfig::paper_default(WAYS, LLC), paper_static_plan())
}

/// Readings where the sensitive working set has shrunk to ~12 % of the
/// LLC — the canonical "repartition downward" signal.
fn shrink_readings(tick: u64) -> Vec<ClassReading> {
    let frac = |f: f64| (f * LLC as f64) as u64;
    vec![
        ClassReading {
            class: ClassId::Polluting,
            occupancy_bytes: frac(0.08),
            mbm_total_bytes: frac(0.08) * tick,
        },
        ClassReading {
            class: ClassId::Mixed,
            occupancy_bytes: 0,
            mbm_total_bytes: 0,
        },
        ClassReading {
            class: ClassId::Sensitive,
            occupancy_bytes: frac(0.12),
            mbm_total_bytes: frac(0.12) * tick,
        },
    ]
}

fn tick(c: &mut Controller, seq: u64, readings: &[ClassReading], degraded: bool) -> Decision {
    c.tick(&TickInput {
        seq,
        readings,
        degraded,
    })
}

#[test]
fn warmup_dwell_holds_before_the_first_decision() {
    let mut c = controller();
    for t in 1..=3 {
        let r = shrink_readings(t);
        assert_eq!(
            tick(&mut c, t, &r, false),
            Decision::Hold(HoldReason::Dwell),
            "tick {t} should still be in warm-up dwell"
        );
    }
    let r = shrink_readings(4);
    let d = tick(&mut c, 4, &r, false);
    let Decision::Repartition(plan) = d else {
        panic!("expected a repartition after warm-up, got {d:?}");
    };
    assert!(plan.sensitive.way_count() < 20, "sensitive should shrink");
    assert!(plan.polluter_isolated());
    assert_eq!(c.counters().repartitions, 1);
    assert_eq!(c.counters().holds, 3);
}

#[test]
fn post_repartition_dwell_holds_even_under_big_signal_changes() {
    let mut c = controller();
    for t in 1..=4 {
        let r = shrink_readings(t);
        tick(&mut c, t, &r, false);
    }
    assert_eq!(c.counters().repartitions, 1);
    // A violent signal swing right after the repartition: starve the
    // sensitive class completely. The dwell window must hold it.
    let starved: Vec<ClassReading> = shrink_readings(5)
        .into_iter()
        .map(|mut r| {
            if r.class == ClassId::Sensitive {
                r.occupancy_bytes = LLC;
            }
            r
        })
        .collect();
    for t in 5..=7 {
        assert_eq!(
            tick(&mut c, t, &starved, false),
            Decision::Hold(HoldReason::Dwell),
            "tick {t} inside the post-repartition dwell window"
        );
    }
    // Once the window expires the starved signal goes through.
    assert!(matches!(
        tick(&mut c, 8, &starved, false),
        Decision::Repartition(_)
    ));
}

#[test]
fn sub_threshold_deltas_are_held() {
    let mut c = controller();
    let mut t = 1;
    // Drive to a steady adaptive plan.
    loop {
        let r = shrink_readings(t);
        if matches!(tick(&mut c, t, &r, false), Decision::Repartition(_)) {
            break;
        }
        t += 1;
        assert!(t < 20, "never repartitioned");
    }
    let plan = *c.current_plan();
    // Burn the dwell window, then keep feeding the same signal: the
    // re-derived plan equals the current one (delta 0 < threshold 2).
    for _ in 0..10 {
        t += 1;
        let r = shrink_readings(t);
        let d = tick(&mut c, t, &r, false);
        assert!(
            matches!(
                d,
                Decision::Hold(HoldReason::Dwell) | Decision::Hold(HoldReason::BelowThreshold)
            ),
            "steady signal must not move the plan, got {d:?}"
        );
    }
    assert_eq!(*c.current_plan(), plan);
    assert_eq!(c.counters().repartitions, 1, "no thrashing");
}

#[test]
fn stale_readings_clamp_to_the_static_plan() {
    let mut c = controller();
    let mut t = 1;
    loop {
        let r = shrink_readings(t);
        if matches!(tick(&mut c, t, &r, false), Decision::Repartition(_)) {
            break;
        }
        t += 1;
        assert!(t < 20);
    }
    assert_ne!(*c.current_plan(), paper_static_plan());
    // The sequence stops advancing: after stale_after_ticks the
    // controller must revert to static and report itself clamped.
    let frozen = shrink_readings(t);
    let mut reverted = false;
    for _ in 0..ControlConfig::paper_default(WAYS, LLC).stale_after_ticks + 1 {
        match tick(&mut c, t, &frozen, false) {
            Decision::Revert {
                reason: RevertReason::StaleReadings,
                plan,
            } => {
                assert_eq!(plan, paper_static_plan());
                reverted = true;
                break;
            }
            Decision::Hold(_) => {}
            d => panic!("unexpected decision while going stale: {d:?}"),
        }
    }
    assert!(reverted, "controller never clamped on stale readings");
    assert!(c.is_clamped());
    assert_eq!(*c.current_plan(), paper_static_plan());
    // Still stale: holds in place, no repeated reverts.
    assert_eq!(
        tick(&mut c, t, &frozen, false),
        Decision::Hold(HoldReason::Clamped)
    );
    assert_eq!(c.counters().reverts, 1);
}

#[test]
fn degraded_health_clamps_immediately_and_recovers() {
    let mut c = controller();
    let mut t = 1;
    loop {
        let r = shrink_readings(t);
        if matches!(tick(&mut c, t, &r, false), Decision::Repartition(_)) {
            break;
        }
        t += 1;
        assert!(t < 20);
    }
    t += 1;
    let r = shrink_readings(t);
    assert!(matches!(
        tick(&mut c, t, &r, true),
        Decision::Revert {
            reason: RevertReason::Degraded,
            ..
        }
    ));
    assert!(c.is_clamped());
    // Health restored: after the revert's dwell window the controller
    // re-derives the adaptive plan.
    let mut repartitioned = false;
    for _ in 0..10 {
        t += 1;
        let r = shrink_readings(t);
        if matches!(tick(&mut c, t, &r, false), Decision::Repartition(_)) {
            repartitioned = true;
            break;
        }
    }
    assert!(repartitioned, "controller never resumed after recovery");
    assert!(!c.is_clamped());
    assert_eq!(c.counters().reverts, 1);
    assert_eq!(c.counters().repartitions, 2);
}

#[test]
fn no_data_holds_without_reverting() {
    let mut c = controller();
    for _ in 0..5 {
        assert_eq!(
            tick(&mut c, 0, &[], false),
            Decision::Hold(HoldReason::NoData)
        );
    }
    assert_eq!(c.counters().reverts, 0);
    assert_eq!(*c.current_plan(), paper_static_plan());
}

#[test]
fn apply_failure_reverts_and_redwells() {
    let mut c = controller();
    let mut t = 1;
    loop {
        let r = shrink_readings(t);
        if matches!(tick(&mut c, t, &r, false), Decision::Repartition(_)) {
            break;
        }
        t += 1;
        assert!(t < 20);
    }
    // The server failed to write the new schemata mid-repartition.
    let fallback = c.note_apply_failed();
    assert_eq!(fallback, paper_static_plan());
    assert_eq!(*c.current_plan(), paper_static_plan());
    assert_eq!(c.counters().reverts, 1);
    // Dwell restarts: the immediate next ticks hold.
    t += 1;
    let r = shrink_readings(t);
    assert_eq!(
        tick(&mut c, t, &r, false),
        Decision::Hold(HoldReason::Dwell)
    );
}
