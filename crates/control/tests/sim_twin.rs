//! The controller's deterministic simulated twin: the exact loop the
//! server runs, driven by scripted/simulated probes, with an injectable
//! mask applier so the mid-repartition failure path runs in CI too.

use ccp_cachesim::WayMask;
use ccp_control::{
    ClassId, ClassReading, ControlConfig, Controller, Decision, MaskPlan, RevertReason,
    ScriptedTrace, TickInput,
};
use ccp_resctrl::{OccupancyProbe, SimClass, SimulatedMonitor};
use std::sync::{Arc, Mutex};

const LLC: u64 = 55 * 1024 * 1024;
const WAYS: u32 = 20;

fn paper_static_plan() -> MaskPlan {
    MaskPlan::new(
        WayMask::new(0x3).unwrap(),
        WayMask::new(0xfff).unwrap(),
        WayMask::new(0xfffff).unwrap(),
    )
}

/// What the server's control thread does each tick, with the effects
/// replaced by an injectable applier: probe → convert → tick → apply.
/// Returns the label of each tick's decision.
fn drive(
    controller: &mut Controller,
    probe: &mut dyn OccupancyProbe,
    seq0: u64,
    ticks: u64,
    mut apply: impl FnMut(&MaskPlan) -> Result<(), ()>,
) -> Vec<&'static str> {
    let mut log = Vec::new();
    for seq in seq0..seq0 + ticks {
        let readings: Vec<ClassReading> = probe
            .sample()
            .into_iter()
            .filter_map(|s| {
                ClassId::from_label(&s.class).map(|class| ClassReading {
                    class,
                    occupancy_bytes: s.llc_occupancy_bytes,
                    mbm_total_bytes: s.mbm_total_bytes,
                })
            })
            .collect();
        let decision = controller.tick(&TickInput {
            seq,
            readings: &readings,
            degraded: false,
        });
        if let Decision::Repartition(plan) = decision {
            if apply(&plan).is_err() {
                let fallback = controller.note_apply_failed();
                assert_eq!(fallback, *controller.static_plan());
            }
        }
        log.push(controller.last_decision());
    }
    log
}

#[test]
fn scripted_shrink_trace_repartitions_downward() {
    // The adaptive-smoke scenario: sensitive fills 95 % of the LLC for
    // 6 ticks, then its working set collapses to 12 %.
    let mut probe =
        ScriptedTrace::parse("sensitive:0.95x6,0.12;polluting:0.08;mixed:0.02", LLC).unwrap();
    let mut c = Controller::new(ControlConfig::paper_default(WAYS, LLC), paper_static_plan());
    let applied = Arc::new(Mutex::new(Vec::new()));
    let applied2 = Arc::clone(&applied);
    let log = drive(&mut c, &mut probe, 1, 20, move |plan| {
        applied2.lock().unwrap().push(*plan);
        Ok(())
    });
    let counters = c.counters();
    assert!(counters.repartitions >= 1, "never repartitioned: {log:?}");
    assert!(
        counters.repartitions <= 4,
        "thrashing ({} repartitions): {log:?}",
        counters.repartitions
    );
    assert_eq!(counters.reverts, 0);
    assert_eq!(counters.decisions, 20);
    // The final plan reflects the shrunken working set: the sensitive
    // class holds far fewer than its static 20 ways, and confinement
    // is structural.
    let last = *applied.lock().unwrap().last().unwrap();
    assert!(
        last.sensitive.way_count() <= 6,
        "sensitive still holds {} ways",
        last.sensitive.way_count()
    );
    assert!(last.polluter_isolated());
    assert_eq!(last, *c.current_plan());
}

#[test]
fn apply_failure_mid_repartition_reverts_then_recovers() {
    let mut probe = ScriptedTrace::parse("sensitive:0.12;polluting:0.08;mixed:0.02", LLC).unwrap();
    let mut c = Controller::new(ControlConfig::paper_default(WAYS, LLC), paper_static_plan());
    // First repartition attempt fails (an injected schemata error);
    // later attempts succeed.
    let mut attempts = 0;
    let log = drive(&mut c, &mut probe, 1, 20, |_| {
        attempts += 1;
        if attempts == 1 {
            Err(())
        } else {
            Ok(())
        }
    });
    let counters = c.counters();
    assert_eq!(counters.reverts, 1, "log: {log:?}");
    assert!(
        counters.repartitions >= 2,
        "controller never retried after the failed apply: {log:?}"
    );
    assert!(log.contains(&"revert-apply"));
    // It ends on the adaptive plan, not stuck on static.
    assert_ne!(*c.current_plan(), paper_static_plan());
    assert!(c.current_plan().polluter_isolated());
}

#[test]
fn simulated_monitor_drives_growth_when_load_arrives() {
    // SimulatedMonitor under live "pressure": sensitive idle at first,
    // then fully loaded — occupancy converges up and the controller,
    // which had shrunk the idle class, grows it back.
    let load = Arc::new(Mutex::new(vec![]));
    let load2 = Arc::clone(&load);
    let mut probe = SimulatedMonitor::new(
        LLC,
        vec![
            SimClass {
                label: "polluting".into(),
                llc_share: 0.1,
            },
            SimClass {
                label: "mixed".into(),
                llc_share: 0.6,
            },
            SimClass {
                label: "sensitive".into(),
                llc_share: 1.0,
            },
        ],
        Box::new(move || load2.lock().unwrap().clone()),
    );
    let mut c = Controller::new(ControlConfig::paper_default(WAYS, LLC), paper_static_plan());
    let log1 = drive(&mut c, &mut probe, 1, 15, |_| Ok(()));
    let shrunk = c.current_plan().sensitive.way_count();
    assert!(
        shrunk <= 4,
        "idle sensitive class not shrunk (has {shrunk} ways): {log1:?}"
    );
    // Load arrives: occupancy fills the (small) allocation, the class
    // reads as starved, and the controller grows it step by step.
    *load.lock().unwrap() = vec![("sensitive".to_string(), 1.0)];
    let log2 = drive(&mut c, &mut probe, 16, 40, |_| Ok(()));
    let grown = c.current_plan().sensitive.way_count();
    assert!(
        grown > shrunk,
        "sensitive never grew under load ({shrunk} -> {grown}): {log2:?}"
    );
    assert!(c.current_plan().polluter_isolated());
}

#[test]
fn degraded_mid_run_reverts_and_resumes_after_recovery() {
    let mut probe = ScriptedTrace::parse("sensitive:0.12;polluting:0.08;mixed:0.02", LLC).unwrap();
    let mut c = Controller::new(ControlConfig::paper_default(WAYS, LLC), paper_static_plan());
    // Reach the adaptive plan.
    drive(&mut c, &mut probe, 1, 10, |_| Ok(()));
    assert_ne!(*c.current_plan(), paper_static_plan());
    // Health trips mid-run (the supervisor's breaker): one degraded
    // tick must be enough to land back on static.
    let readings: Vec<ClassReading> = probe
        .sample()
        .into_iter()
        .filter_map(|s| {
            ClassId::from_label(&s.class).map(|class| ClassReading {
                class,
                occupancy_bytes: s.llc_occupancy_bytes,
                mbm_total_bytes: s.mbm_total_bytes,
            })
        })
        .collect();
    let d = c.tick(&TickInput {
        seq: 11,
        readings: &readings,
        degraded: true,
    });
    assert!(matches!(
        d,
        Decision::Revert {
            reason: RevertReason::Degraded,
            ..
        }
    ));
    assert_eq!(*c.current_plan(), paper_static_plan());
    assert!(c.is_clamped());
    // Recovery: the loop re-derives the adaptive plan.
    let log = drive(&mut c, &mut probe, 12, 10, |_| Ok(()));
    assert!(
        log.contains(&"repartition"),
        "no repartition after recovery: {log:?}"
    );
    assert!(!c.is_clamped());
}
