//! Scripted occupancy traces: a deterministic [`OccupancyProbe`] for CI.
//!
//! Where [`ccp_resctrl::SimulatedMonitor`] reacts to live admission
//! pressure, a [`ScriptedTrace`] replays an exact per-class occupancy
//! schedule, tick by tick — the tool for driving the controller through
//! a *chosen* scenario ("the sensitive working set shrinks at tick 6")
//! and asserting the exact decisions it makes.
//!
//! ## Grammar
//!
//! ```text
//! spec     := class-spec (';' class-spec)*
//! class    := 'polluting' | 'mixed' | 'sensitive'
//! class-spec := class ':' segment (',' segment)*
//! segment  := FRAC ['/' BWFRAC] ['x' TICKS]
//! ```
//!
//! `FRAC` is the class's LLC occupancy as a fraction of the whole cache
//! (0.0–1.0); `BWFRAC` (default: `FRAC`) is the fraction of the LLC the
//! class streams *per tick*, accumulated into the cumulative MBM
//! counter; `TICKS` (default: forever) is the segment length. The last
//! segment holds forever.
//!
//! Example — the adaptive-smoke scenario: a sensitive class that fills
//! 95 % of the LLC for 6 ticks, then shrinks to 12 %:
//!
//! ```text
//! sensitive:0.95x6,0.12;polluting:0.08;mixed:0.02
//! ```

use ccp_resctrl::{ClassSample, OccupancyProbe};

#[derive(Debug, Clone, Copy)]
struct Segment {
    frac: f64,
    bw_frac: f64,
    ticks: Option<u32>,
}

#[derive(Debug, Clone)]
struct ClassTrack {
    label: String,
    segments: Vec<Segment>,
    /// Index of the active segment and ticks already spent in it.
    cursor: (usize, u32),
    traffic: f64,
}

/// A deterministic occupancy probe replaying a scripted trace. See the
/// module docs for the grammar.
#[derive(Debug, Clone)]
pub struct ScriptedTrace {
    llc_bytes: u64,
    classes: Vec<ClassTrack>,
}

impl ScriptedTrace {
    /// Parses `spec` for an `llc_bytes`-sized cache.
    ///
    /// # Errors
    /// Returns a human-readable message on malformed specs, unknown
    /// class labels, or out-of-range fractions.
    pub fn parse(spec: &str, llc_bytes: u64) -> Result<Self, String> {
        let mut classes = Vec::new();
        for class_spec in spec.split(';').filter(|s| !s.trim().is_empty()) {
            let (label, rest) = class_spec
                .split_once(':')
                .ok_or_else(|| format!("class spec {class_spec:?} is missing ':'"))?;
            let label = label.trim();
            if !matches!(label, "polluting" | "mixed" | "sensitive") {
                return Err(format!(
                    "unknown class {label:?} (expected polluting|mixed|sensitive)"
                ));
            }
            if classes.iter().any(|c: &ClassTrack| c.label == label) {
                return Err(format!("class {label:?} appears twice"));
            }
            let mut segments = Vec::new();
            for seg in rest.split(',') {
                segments.push(Self::parse_segment(seg.trim())?);
            }
            if segments.is_empty() {
                return Err(format!("class {label:?} has no segments"));
            }
            classes.push(ClassTrack {
                label: label.to_string(),
                segments,
                cursor: (0, 0),
                traffic: 0.0,
            });
        }
        if classes.is_empty() {
            return Err("empty occupancy script".to_string());
        }
        Ok(ScriptedTrace { llc_bytes, classes })
    }

    fn parse_segment(seg: &str) -> Result<Segment, String> {
        let (body, ticks) = match seg.split_once('x') {
            Some((b, t)) => {
                let n: u32 = t
                    .parse()
                    .map_err(|_| format!("bad tick count in segment {seg:?}"))?;
                (b, Some(n.max(1)))
            }
            None => (seg, None),
        };
        let (frac_s, bw_s) = match body.split_once('/') {
            Some((f, b)) => (f, Some(b)),
            None => (body, None),
        };
        let frac: f64 = frac_s
            .parse()
            .map_err(|_| format!("bad occupancy fraction in segment {seg:?}"))?;
        let bw_frac: f64 = match bw_s {
            Some(b) => b
                .parse()
                .map_err(|_| format!("bad bandwidth fraction in segment {seg:?}"))?,
            None => frac,
        };
        if !(0.0..=1.0).contains(&frac) {
            return Err(format!("occupancy fraction {frac} out of [0, 1]"));
        }
        if !(0.0..=16.0).contains(&bw_frac) {
            return Err(format!("bandwidth fraction {bw_frac} out of [0, 16]"));
        }
        Ok(Segment {
            frac,
            bw_frac,
            ticks,
        })
    }
}

impl OccupancyProbe for ScriptedTrace {
    fn sample(&mut self) -> Vec<ClassSample> {
        let mut out = Vec::with_capacity(self.classes.len());
        for track in &mut self.classes {
            let (ref mut idx, ref mut spent) = track.cursor;
            let seg = track.segments[*idx];
            track.traffic += seg.bw_frac * self.llc_bytes as f64;
            out.push(ClassSample {
                class: track.label.clone(),
                llc_occupancy_bytes: (seg.frac * self.llc_bytes as f64) as u64,
                mbm_total_bytes: track.traffic as u64,
            });
            *spent += 1;
            if let Some(len) = seg.ticks {
                if *spent >= len && *idx + 1 < track.segments.len() {
                    *idx += 1;
                    *spent = 0;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LLC: u64 = 1000;

    #[test]
    fn replays_segments_in_order() {
        let mut t = ScriptedTrace::parse("sensitive:0.95x2,0.12;polluting:0.08", LLC).unwrap();
        let s1 = t.sample();
        assert_eq!(s1[0].class, "sensitive");
        assert_eq!(s1[0].llc_occupancy_bytes, 950);
        assert_eq!(s1[1].llc_occupancy_bytes, 80);
        t.sample(); // second tick of the first segment
        let s3 = t.sample();
        assert_eq!(s3[0].llc_occupancy_bytes, 120);
        // The last segment holds forever.
        for _ in 0..10 {
            assert_eq!(t.sample()[0].llc_occupancy_bytes, 120);
        }
    }

    #[test]
    fn traffic_accumulates_with_explicit_bandwidth() {
        let mut t = ScriptedTrace::parse("polluting:0.1/2.0x1", LLC).unwrap();
        assert_eq!(t.sample()[0].mbm_total_bytes, 2000);
        assert_eq!(t.sample()[0].mbm_total_bytes, 4000);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "sensitive",
            "martian:0.5",
            "sensitive:1.5",
            "sensitive:0.5xq",
            "sensitive:0.5;sensitive:0.2",
        ] {
            assert!(ScriptedTrace::parse(bad, LLC).is_err(), "accepted {bad:?}");
        }
    }
}
