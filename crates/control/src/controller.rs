//! The feedback controller: hysteresis, clamping, and decision making.
//!
//! [`Controller::tick`] is a pure state transition — readings in,
//! [`Decision`] out — so every path (including the failure ones) is
//! exercisable from deterministic tests. The caller owns the effects:
//! on `Repartition` it prepares the new masks through the supervised
//! resctrl path and publishes them to the engine's live table; if that
//! application fails it calls [`Controller::note_apply_failed`] and
//! publishes the static plan instead.

use crate::classify::{classify, Behavior, Thresholds};
use crate::plan::{derive_masks, ClassId, ClassTargets, MaskPlan};

/// Controller tuning. [`ControlConfig::paper_default`] matches the
/// values documented in DESIGN.md §10.
#[derive(Debug, Clone, Copy)]
pub struct ControlConfig {
    /// LLC way count (20 on the paper's Broadwell).
    pub ways: u32,
    /// LLC size in bytes.
    pub llc_bytes: u64,
    /// Smallest allocation any class may shrink to (2: the paper never
    /// grants a single way).
    pub min_ways: u32,
    /// Classification thresholds.
    pub thresholds: Thresholds,
    /// Ways added per tick to a starved class.
    pub grow_step: u32,
    /// Ticks the controller must hold after any repartition or revert
    /// (also the warm-up period before the first decision).
    pub min_dwell_ticks: u32,
    /// Minimum total way movement for a new plan to be worth applying;
    /// smaller deltas are held.
    pub min_delta_ways: u32,
    /// Consecutive ticks without a fresh reading after which the
    /// controller clamps to the static plan.
    pub stale_after_ticks: u32,
}

impl ControlConfig {
    /// Defaults for a `ways`-way, `llc_bytes` LLC: min 2 ways, grow by
    /// 2, dwell 3 ticks, 2-way change threshold, stale after 8 ticks.
    pub fn paper_default(ways: u32, llc_bytes: u64) -> Self {
        ControlConfig {
            ways,
            llc_bytes,
            min_ways: 2,
            thresholds: Thresholds::default(),
            grow_step: 2,
            min_dwell_ticks: 3,
            min_delta_ways: 2,
            stale_after_ticks: 8,
        }
    }

    /// Scales the staleness horizon to the monitor/control interval
    /// ratio: readings are expected every `monitor_ms`, the controller
    /// ticks every `control_ms`, and three missed monitor periods (but
    /// never fewer than 4 ticks) mean the pipeline is stuck.
    pub fn with_intervals(mut self, control_ms: u64, monitor_ms: u64) -> Self {
        let control_ms = control_ms.max(1);
        let ticks_per_reading = monitor_ms.div_ceil(control_ms).max(1);
        self.stale_after_ticks = (ticks_per_reading * 3).max(4).min(u64::from(u32::MAX)) as u32;
        self
    }
}

/// One class's reading for a control tick (a typed
/// `ccp_resctrl::ClassSample`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassReading {
    /// Which class the reading describes.
    pub class: ClassId,
    /// Bytes of LLC the class currently occupies.
    pub occupancy_bytes: u64,
    /// Cumulative MBM byte counter (the controller differentiates it).
    pub mbm_total_bytes: u64,
}

/// Everything a control tick consumes.
#[derive(Debug, Clone, Copy)]
pub struct TickInput<'a> {
    /// The readings hub's sequence number; a non-advancing sequence is
    /// the staleness signal.
    pub seq: u64,
    /// Latest per-class readings (possibly empty before the sampler's
    /// first publish).
    pub readings: &'a [ClassReading],
    /// Whether resctrl health is currently tripped.
    pub degraded: bool,
}

/// Why the controller held the current plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldReason {
    /// No readings have ever been published.
    NoData,
    /// Inside the post-repartition dwell window.
    Dwell,
    /// The re-derived plan moved fewer than `min_delta_ways` ways.
    BelowThreshold,
    /// Clamped (degraded or stale) and already on the static plan.
    Clamped,
}

/// Why the controller abandoned the adaptive plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevertReason {
    /// Resctrl health tripped; the supervisor owns the hardware now.
    Degraded,
    /// Readings stopped arriving; flying blind is not allowed.
    StaleReadings,
    /// Applying a repartition failed mid-way (schemata write error).
    ApplyFailed,
}

/// The outcome of one control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Keep the current plan.
    Hold(HoldReason),
    /// Apply this new plan (prepare masks, then publish).
    Repartition(MaskPlan),
    /// Abandon the adaptive plan; publish `plan` (the static mapping).
    Revert {
        /// What forced the revert.
        reason: RevertReason,
        /// The plan to fall back to.
        plan: MaskPlan,
    },
}

/// Monotonic decision counters, mirrored into
/// `ccp_control_*_total` metrics by the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlCounters {
    /// Total ticks evaluated.
    pub decisions: u64,
    /// Plans applied.
    pub repartitions: u64,
    /// Ticks that held the current plan.
    pub holds: u64,
    /// Falls back to the static plan (clamp or apply failure).
    pub reverts: u64,
}

/// The adaptive partitioning state machine. See the module docs for the
/// caller contract.
#[derive(Debug)]
pub struct Controller {
    cfg: ControlConfig,
    static_plan: MaskPlan,
    current: MaskPlan,
    last_seq: u64,
    seen_data: bool,
    stale_ticks: u32,
    dwell_remaining: u32,
    last_mbm: [Option<u64>; 3],
    clamped: bool,
    counters: ControlCounters,
    last_decision: &'static str,
}

impl Controller {
    /// Builds a controller that starts on (and reverts to)
    /// `static_plan`. The first `min_dwell_ticks` ticks hold
    /// unconditionally — a warm-up that also guarantees an MBM slope
    /// exists before the first real decision.
    pub fn new(cfg: ControlConfig, static_plan: MaskPlan) -> Self {
        Controller {
            cfg,
            static_plan,
            current: static_plan,
            last_seq: 0,
            seen_data: false,
            stale_ticks: 0,
            dwell_remaining: cfg.min_dwell_ticks,
            last_mbm: [None; 3],
            clamped: false,
            counters: ControlCounters::default(),
            last_decision: "none",
        }
    }

    /// The plan currently in force.
    pub fn current_plan(&self) -> &MaskPlan {
        &self.current
    }

    /// The static fallback plan.
    pub fn static_plan(&self) -> &MaskPlan {
        &self.static_plan
    }

    /// Decision counters so far.
    pub fn counters(&self) -> ControlCounters {
        self.counters
    }

    /// Short label of the last decision (for `/stats`).
    pub fn last_decision(&self) -> &'static str {
        self.last_decision
    }

    /// Whether the last tick was clamped to the static plan (degraded
    /// health or stale readings).
    pub fn is_clamped(&self) -> bool {
        self.clamped
    }

    /// Evaluates one control tick.
    pub fn tick(&mut self, input: &TickInput<'_>) -> Decision {
        self.counters.decisions += 1;

        if input.seq > self.last_seq {
            self.last_seq = input.seq;
            self.stale_ticks = 0;
            self.seen_data = true;
        } else if self.seen_data {
            self.stale_ticks = self.stale_ticks.saturating_add(1);
        }
        let stale = self.seen_data && self.stale_ticks >= self.cfg.stale_after_ticks;

        if input.degraded || stale {
            self.clamped = true;
            // Cumulative MBM history is useless after a gap; restart
            // slope tracking when readings come back.
            self.last_mbm = [None; 3];
            let reason = if input.degraded {
                RevertReason::Degraded
            } else {
                RevertReason::StaleReadings
            };
            if self.current != self.static_plan {
                return self.revert(reason, "revert-clamped");
            }
            self.counters.holds += 1;
            self.last_decision = "hold-clamped";
            return Decision::Hold(HoldReason::Clamped);
        }
        self.clamped = false;

        if !self.seen_data || input.readings.is_empty() {
            self.counters.holds += 1;
            self.last_decision = "hold-no-data";
            return Decision::Hold(HoldReason::NoData);
        }

        // Differentiate the cumulative MBM counters every tick — even
        // held ones — so the slope window stays one tick wide.
        let mut slopes: [Option<u64>; 3] = [None; 3];
        for r in input.readings {
            let idx = r.class as usize;
            slopes[idx] = self.last_mbm[idx].map(|prev| r.mbm_total_bytes.saturating_sub(prev));
            self.last_mbm[idx] = Some(r.mbm_total_bytes);
        }

        if self.dwell_remaining > 0 {
            self.dwell_remaining -= 1;
            self.counters.holds += 1;
            self.last_decision = "hold-dwell";
            return Decision::Hold(HoldReason::Dwell);
        }

        let way_bytes = (self.cfg.llc_bytes / u64::from(self.cfg.ways.max(1))).max(1);
        let mut targets = ClassTargets {
            polluting: self.current.polluting.way_count(),
            mixed: self.current.mixed.way_count(),
            sensitive: self.current.sensitive.way_count(),
        };
        for r in input.readings {
            let cur = self.current.get(r.class).way_count();
            let alloc = u64::from(cur) * way_bytes;
            let behavior = classify(
                r.occupancy_bytes,
                slopes[r.class as usize],
                alloc,
                &self.cfg.thresholds,
            );
            let target = match behavior {
                Behavior::Idle => self.cfg.min_ways,
                Behavior::Fits => {
                    // Shrink to the measured working set plus one way of
                    // headroom; Fits never grows an allocation.
                    let need = r.occupancy_bytes.div_ceil(way_bytes) as u32 + 1;
                    need.clamp(self.cfg.min_ways, cur)
                }
                Behavior::Steady => cur,
                Behavior::Starved => cur.saturating_add(self.cfg.grow_step),
                // A streaming class is confined to (at most) the static
                // polluter share; growth cannot buy it reuse.
                Behavior::Polluting => cur.min(self.static_plan.polluting.way_count()),
            };
            targets.set(r.class, target);
        }

        let plan = derive_masks(&targets, self.cfg.ways, self.cfg.min_ways);
        if plan.delta_ways(&self.current) < self.cfg.min_delta_ways {
            self.counters.holds += 1;
            self.last_decision = "hold-threshold";
            return Decision::Hold(HoldReason::BelowThreshold);
        }

        self.current = plan;
        self.dwell_remaining = self.cfg.min_dwell_ticks;
        self.counters.repartitions += 1;
        self.last_decision = "repartition";
        Decision::Repartition(plan)
    }

    /// Records that applying the last `Repartition` failed mid-way and
    /// returns the static plan the caller must publish instead. Counts
    /// as a revert and restarts the dwell window.
    pub fn note_apply_failed(&mut self) -> MaskPlan {
        let Decision::Revert { plan, .. } = self.revert(RevertReason::ApplyFailed, "revert-apply")
        else {
            unreachable!("revert() always returns Decision::Revert");
        };
        plan
    }

    fn revert(&mut self, reason: RevertReason, label: &'static str) -> Decision {
        self.current = self.static_plan;
        self.dwell_remaining = self.cfg.min_dwell_ticks;
        self.counters.reverts += 1;
        self.last_decision = label;
        Decision::Revert {
            reason,
            plan: self.static_plan,
        }
    }
}
