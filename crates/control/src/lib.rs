//! # ccp-control
//!
//! Closed-loop, occupancy-driven LLC repartitioning — the adaptive layer
//! on top of the paper's static CUID→mask mapping.
//!
//! The paper fixes each class's allocation at classification time; LFOC
//! (and Com-CAS) showed that lightweight online monitoring is enough to
//! *re*-derive partitions periodically. This crate implements that loop
//! as a pure, deterministic state machine so every decision path runs in
//! CI without hardware:
//!
//! 1. **Signals** — per-class `llc_occupancy` and cumulative `mbm_total`
//!    readings (from `ccp-resctrl`'s `OccupancySampler`, real or
//!    simulated), delivered with a sequence number so staleness is
//!    observable.
//! 2. **Classification** ([`classify`]) — each class's current behavior
//!    (fits / steady / starved / polluting / idle) from its
//!    occupancy-vs-allocation ratio and MBM slope.
//! 3. **Derivation** ([`plan`]) — behaviors become per-class way
//!    targets, targets become *contiguous, non-overlapping* masks:
//!    polluting classes anchored at way 0, sensitive/mixed at the top.
//! 4. **Hysteresis & clamping** ([`controller`]) — minimum dwell ticks
//!    after any repartition, a change-magnitude threshold below which
//!    plans are held, and an unconditional revert to the static paper
//!    mapping whenever resctrl health is degraded or readings go stale.
//!
//! The crate is std-only and side-effect free: it decides, the caller
//! (the server's control thread) applies — writing schemata through the
//! supervised resctrl path and publishing the plan to the engine's
//! `LiveMasks` table, which workers consult on their next bind.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod classify;
pub mod controller;
pub mod plan;
pub mod script;

pub use classify::{classify, Behavior, Thresholds};
pub use controller::{
    ClassReading, ControlConfig, ControlCounters, Controller, Decision, HoldReason, RevertReason,
    TickInput,
};
pub use plan::{derive_masks, ClassId, ClassTargets, MaskPlan};
pub use script::ScriptedTrace;
