//! Way-target → mask-plan derivation.
//!
//! A [`MaskPlan`] is one complete CUID→mask mapping: three contiguous
//! [`WayMask`]s, one per class. [`derive_masks`] turns per-class way
//! *targets* into a plan with a fixed geometry that makes exclusivity
//! structural rather than checked:
//!
//! * **polluting** — anchored at way 0, like the paper's `0x3`;
//! * **sensitive** — anchored at the *top* of the cache;
//! * **mixed** — also top-anchored (it shares ways with sensitive, as in
//!   the paper's nested `0xfff` ⊂ `0xfffff`, but never with polluting).
//!
//! Clamping guarantees polluting and the top-anchored classes never
//! overlap: pollution confinement — the paper's core mechanism — is
//! preserved under every input.

use ccp_cachesim::WayMask;

/// The three CUID classes the controller partitions between. Labels
/// match the sampler's class labels (`polluting` / `mixed` /
/// `sensitive`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassId {
    /// Class *i*: scan-like operators that stream without reuse.
    Polluting,
    /// Class *iii*: operators whose behavior depends on working-set size.
    Mixed,
    /// Class *ii*: reuse-heavy operators (the protected class).
    Sensitive,
}

impl ClassId {
    /// All classes, in mask-layout order (bottom of the cache first).
    pub const ALL: [ClassId; 3] = [ClassId::Polluting, ClassId::Mixed, ClassId::Sensitive];

    /// The sampler/metrics label for this class.
    pub fn label(self) -> &'static str {
        match self {
            ClassId::Polluting => "polluting",
            ClassId::Mixed => "mixed",
            ClassId::Sensitive => "sensitive",
        }
    }

    /// Parses a sampler label back into a class; `None` for labels the
    /// controller does not partition (future classes are ignored, not
    /// errors).
    pub fn from_label(label: &str) -> Option<Self> {
        match label {
            "polluting" => Some(ClassId::Polluting),
            "mixed" => Some(ClassId::Mixed),
            "sensitive" => Some(ClassId::Sensitive),
            _ => None,
        }
    }
}

/// Per-class way-count targets, the input to [`derive_masks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassTargets {
    /// Target ways for the polluting class.
    pub polluting: u32,
    /// Target ways for the mixed class.
    pub mixed: u32,
    /// Target ways for the sensitive class.
    pub sensitive: u32,
}

impl ClassTargets {
    /// The target for `class`.
    pub fn get(&self, class: ClassId) -> u32 {
        match class {
            ClassId::Polluting => self.polluting,
            ClassId::Mixed => self.mixed,
            ClassId::Sensitive => self.sensitive,
        }
    }

    /// Sets the target for `class`.
    pub fn set(&mut self, class: ClassId, ways: u32) {
        match class {
            ClassId::Polluting => self.polluting = ways,
            ClassId::Mixed => self.mixed = ways,
            ClassId::Sensitive => self.sensitive = ways,
        }
    }

    /// Builds targets from `(class, ways)` pairs in any order; classes
    /// mentioned more than once take their maximum (a commutative
    /// reduction, so the result is independent of pair order) and
    /// unmentioned classes default to `default_ways`.
    pub fn from_pairs(pairs: &[(ClassId, u32)], default_ways: u32) -> Self {
        let mut t = ClassTargets {
            polluting: 0,
            mixed: 0,
            sensitive: 0,
        };
        let mut seen = [false; 3];
        for &(class, ways) in pairs {
            let idx = class as usize;
            t.set(
                class,
                if seen[idx] {
                    t.get(class).max(ways)
                } else {
                    ways
                },
            );
            seen[idx] = true;
        }
        for (idx, class) in ClassId::ALL.iter().enumerate() {
            if !seen[idx] {
                t.set(*class, default_ways);
            }
        }
        t
    }
}

/// One complete CUID→mask mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskPlan {
    /// Mask for the polluting class.
    pub polluting: WayMask,
    /// Mask for the mixed class (when in its sensitive regime).
    pub mixed: WayMask,
    /// Mask for the sensitive class.
    pub sensitive: WayMask,
}

impl MaskPlan {
    /// Bundles three masks into a plan.
    pub fn new(polluting: WayMask, mixed: WayMask, sensitive: WayMask) -> Self {
        MaskPlan {
            polluting,
            mixed,
            sensitive,
        }
    }

    /// The mask for `class`.
    pub fn get(&self, class: ClassId) -> WayMask {
        match class {
            ClassId::Polluting => self.polluting,
            ClassId::Mixed => self.mixed,
            ClassId::Sensitive => self.sensitive,
        }
    }

    /// `(class, way count)` for every class, in layout order.
    pub fn way_counts(&self) -> [(ClassId, u32); 3] {
        [
            (ClassId::Polluting, self.polluting.way_count()),
            (ClassId::Mixed, self.mixed.way_count()),
            (ClassId::Sensitive, self.sensitive.way_count()),
        ]
    }

    /// Total way-count movement between two plans — the change magnitude
    /// the hysteresis threshold compares against.
    pub fn delta_ways(&self, other: &MaskPlan) -> u32 {
        ClassId::ALL
            .iter()
            .map(|&c| self.get(c).way_count().abs_diff(other.get(c).way_count()))
            .sum()
    }

    /// Whether the polluting class is isolated from both top-anchored
    /// classes — the confinement property adaptive plans guarantee.
    /// (The paper's *static* plan intentionally violates this: its
    /// nested masks give sensitive operators the polluter's ways too.)
    pub fn polluter_isolated(&self) -> bool {
        self.polluting.bits() & self.sensitive.bits() == 0
            && self.polluting.bits() & self.mixed.bits() == 0
    }
}

/// Derives a [`MaskPlan`] from per-class way targets on a `ways`-way
/// cache, guaranteeing every mask is non-empty, contiguous, within
/// capacity, at least `min_ways` wide, and — whenever the cache is big
/// enough to split (`ways >= 2 * min_ways`) — that the polluting mask
/// never overlaps the sensitive or mixed masks.
///
/// Degenerate caches (`ways < 2 * min_ways`) cannot host a disjoint
/// pair, so every class shares the full cache — partitioning there is a
/// no-op, exactly like the static policy on a tiny LLC.
pub fn derive_masks(targets: &ClassTargets, ways: u32, min_ways: u32) -> MaskPlan {
    let ways = ways.clamp(1, ccp_cachesim::MAX_WAYS);
    let min_ways = min_ways.clamp(1, ways);
    let full = WayMask::full(ways).expect("ways validated in range");
    if ways < min_ways * 2 {
        return MaskPlan::new(full, full, full);
    }
    // Bottom-anchored polluting region, clamped so at least `min_ways`
    // remain above it for the protected classes.
    let p = targets.polluting.clamp(min_ways, ways - min_ways);
    // Top-anchored protected regions, clamped to the space above the
    // polluting region — structural exclusivity.
    let s = targets.sensitive.clamp(min_ways, ways - p);
    let m = targets.mixed.clamp(min_ways, ways - p);
    MaskPlan::new(
        WayMask::from_ways(p).expect("p in [1, ways]"),
        WayMask::range(ways - m, m).expect("m in [1, ways - p]"),
        WayMask::range(ways - s, s).expect("s in [1, ways - p]"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for c in ClassId::ALL {
            assert_eq!(ClassId::from_label(c.label()), Some(c));
        }
        assert_eq!(ClassId::from_label("oltp"), None);
    }

    #[test]
    fn derive_anchors_polluter_low_and_sensitive_high() {
        let plan = derive_masks(
            &ClassTargets {
                polluting: 2,
                mixed: 4,
                sensitive: 6,
            },
            20,
            2,
        );
        assert_eq!(plan.polluting.bits(), 0x3);
        assert_eq!(plan.sensitive.bits(), 0xfc000); // top 6 ways
        assert_eq!(plan.mixed.bits(), 0xf0000); // top 4 ways
        assert!(plan.polluter_isolated());
    }

    #[test]
    fn oversized_targets_are_clamped_to_capacity() {
        let plan = derive_masks(
            &ClassTargets {
                polluting: 50,
                mixed: 50,
                sensitive: 50,
            },
            20,
            2,
        );
        // Polluter capped so the protected classes keep min_ways...
        assert_eq!(plan.polluting.way_count(), 18);
        // ...and the protected classes fill whatever remains above it.
        assert_eq!(plan.sensitive.way_count(), 2);
        assert!(plan.polluter_isolated());
    }

    #[test]
    fn degenerate_cache_shares_everything() {
        let plan = derive_masks(
            &ClassTargets {
                polluting: 1,
                mixed: 1,
                sensitive: 1,
            },
            3,
            2,
        );
        assert_eq!(plan.polluting.bits(), 0x7);
        assert_eq!(plan.sensitive.bits(), 0x7);
        assert!(!plan.polluter_isolated());
    }

    #[test]
    fn delta_ways_sums_per_class_movement() {
        let a = derive_masks(
            &ClassTargets {
                polluting: 2,
                mixed: 12,
                sensitive: 18,
            },
            20,
            2,
        );
        let b = derive_masks(
            &ClassTargets {
                polluting: 2,
                mixed: 12,
                sensitive: 4,
            },
            20,
            2,
        );
        assert_eq!(a.delta_ways(&b), 14);
        assert_eq!(a.delta_ways(&a), 0);
    }

    #[test]
    fn from_pairs_is_order_independent() {
        let fwd = ClassTargets::from_pairs(&[(ClassId::Sensitive, 6), (ClassId::Polluting, 2)], 3);
        let rev = ClassTargets::from_pairs(&[(ClassId::Polluting, 2), (ClassId::Sensitive, 6)], 3);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.mixed, 3); // unmentioned -> default
                                  // Duplicates reduce via max, which commutes.
        let dup = ClassTargets::from_pairs(&[(ClassId::Mixed, 4), (ClassId::Mixed, 9)], 1);
        assert_eq!(dup.mixed, 9);
    }
}
