//! LFOC-style per-class behavior classification.
//!
//! Two signals per class, both cheap ratios against the class's current
//! *allocation* (its way share of the LLC in bytes):
//!
//! * **occupancy ratio** — `llc_occupancy / allocation`. Near 1.0 the
//!   class fills everything it was given (it wants more); well below
//!   1.0 its working set already fits in less.
//! * **traffic ratio** — the MBM slope (bytes moved since the previous
//!   reading) over the allocation. A class streaming multiples of its
//!   allocation per tick gets no reuse out of more cache — giving it
//!   more ways only lets it pollute faster.
//!
//! The decision table (thresholds from [`Thresholds`]):
//!
//! | behavior   | condition                                  | target ways      |
//! |------------|--------------------------------------------|------------------|
//! | Idle       | occ ratio and traffic ratio both ≈ 0       | shrink to min    |
//! | Polluting  | traffic ratio > `pollute_traffic`          | hold / confine   |
//! | Starved    | occ ratio ≥ `starve`                       | grow             |
//! | Fits       | occ ratio ≤ `fit`                          | shrink to fit    |
//! | Steady     | otherwise                                  | hold             |
//!
//! Polluting is checked before Starved on purpose: a streaming class
//! also fills its allocation, and growth is exactly the wrong response.

/// Classification thresholds. Defaults follow LFOC's spirit: generous
/// hysteresis band between "fits" and "starved" so borderline classes
/// read as Steady and never oscillate.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Occupancy ratio at or below which a class "fits" in less cache.
    pub fit: f64,
    /// Occupancy ratio at or above which a class is starved.
    pub starve: f64,
    /// Occupancy ratio below which (with no traffic) a class is idle.
    pub idle: f64,
    /// Traffic ratio (bytes/tick over allocation) above which a class
    /// behaves as a polluter regardless of occupancy.
    pub pollute_traffic: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            fit: 0.5,
            starve: 0.85,
            idle: 0.02,
            pollute_traffic: 2.0,
        }
    }
}

/// A class's observed behavior over the last control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Behavior {
    /// No occupancy, no traffic: nothing running in this class.
    Idle,
    /// Working set already fits well inside the allocation.
    Fits,
    /// Neither clearly fitting nor starved — leave it alone.
    Steady,
    /// Allocation is full; the class would use more cache.
    Starved,
    /// Streaming traffic without reuse; more cache cannot help.
    Polluting,
}

/// Classifies one class from its occupancy, MBM slope (bytes moved this
/// tick; `None` when no previous reading exists) and current allocation
/// in bytes. A zero allocation is degenerate and reads as Steady.
pub fn classify(
    occupancy_bytes: u64,
    traffic_bytes_per_tick: Option<u64>,
    allocation_bytes: u64,
    th: &Thresholds,
) -> Behavior {
    if allocation_bytes == 0 {
        return Behavior::Steady;
    }
    let occ_ratio = occupancy_bytes as f64 / allocation_bytes as f64;
    let traffic_ratio = traffic_bytes_per_tick.map(|t| t as f64 / allocation_bytes as f64);
    if occ_ratio < th.idle && traffic_ratio.is_some_and(|t| t < th.idle) {
        return Behavior::Idle;
    }
    if traffic_ratio.is_some_and(|t| t > th.pollute_traffic) {
        return Behavior::Polluting;
    }
    if occ_ratio >= th.starve {
        return Behavior::Starved;
    }
    // Without a slope yet (first reading) we only shrink on clear
    // evidence; a class can still be declared Starved above because
    // occupancy alone proves that.
    if occ_ratio <= th.fit && traffic_ratio.is_some() {
        return Behavior::Fits;
    }
    Behavior::Steady
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn follows_the_decision_table() {
        let th = Thresholds::default();
        let alloc = 10 * MB;
        assert_eq!(classify(0, Some(0), alloc, &th), Behavior::Idle);
        assert_eq!(classify(2 * MB, Some(2 * MB), alloc, &th), Behavior::Fits);
        assert_eq!(classify(7 * MB, Some(2 * MB), alloc, &th), Behavior::Steady);
        assert_eq!(
            classify(9 * MB, Some(2 * MB), alloc, &th),
            Behavior::Starved
        );
        // Streaming 3x the allocation per tick: polluter, even though the
        // allocation is also full.
        assert_eq!(
            classify(10 * MB, Some(30 * MB), alloc, &th),
            Behavior::Polluting
        );
    }

    #[test]
    fn first_reading_never_shrinks_but_can_grow() {
        let th = Thresholds::default();
        let alloc = 10 * MB;
        // Small occupancy, no slope yet: hold, don't shrink.
        assert_eq!(classify(MB, None, alloc, &th), Behavior::Steady);
        // Full occupancy proves starvation without a slope.
        assert_eq!(classify(10 * MB, None, alloc, &th), Behavior::Starved);
    }

    #[test]
    fn zero_allocation_is_steady() {
        assert_eq!(
            classify(MB, Some(MB), 0, &Thresholds::default()),
            Behavior::Steady
        );
    }
}
