//! Model checks for the flight recorder's per-slot seqlock series ring
//! ([`ccp_flight::SeriesRing`]): the decomposed writer protocol
//! (`slot_invalidate` → `slot_store_value` → `slot_publish` →
//! `publish_head`) is driven through every interleaving against a
//! scanning reader, and no schedule may ever surface a **torn row** — a
//! sequence number paired with another write's value bits.
//!
//! The harness also proves it has teeth: a writer that skips the
//! invalidation step (publishing fresh bits under the stale sequence)
//! is caught by the exhaustive exploration, and the witness schedule
//! replays deterministically — then passes against the real protocol.

use ccp_flight::SeriesRing;
use ccp_verify::{explore, replay, Actor, Mode, Violation};

/// The value convention: point `seq` always carries `seq * 10.0`, so a
/// reader can detect a torn row from the pair alone.
fn value_for(seq: u64) -> f64 {
    seq as f64 * 10.0
}

/// Which writer protocol the model drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterMode {
    /// The shipped four-step seqlock protocol.
    Seqlock,
    /// The bug shape: overwrite the bits without zeroing the sequence
    /// first, so a concurrent reader pairs stale seq with fresh value.
    NoInvalidate,
}

struct RingModel {
    ring: SeriesRing,
    /// Pushes started so far; push `i` carries sequence `i` (1-based).
    started: u64,
    /// Slot the in-flight push writes to, handed between writer steps.
    pos: usize,
    /// First torn row any scan observed.
    torn: Option<String>,
    /// Head observed by the previous scan — must never regress.
    last_head: u64,
    head_regressed: bool,
}

/// One writer doing `pushes` decomposed pushes into a 2-slot ring, one
/// reader doing `scans` full-ring scans, each scan a single step the
/// explorer can land between any two writer steps.
fn torn_row_build(
    mode: WriterMode,
    pushes: u64,
    scans: usize,
) -> impl Fn() -> (RingModel, Vec<Actor<RingModel>>) {
    move || {
        let state = RingModel {
            ring: SeriesRing::new(2),
            started: 0,
            pos: 0,
            torn: None,
            last_head: 0,
            head_regressed: false,
        };
        let mut writer = Actor::new("writer");
        for _ in 0..pushes {
            writer = writer
                .then(move |s: &mut RingModel| {
                    s.started += 1;
                    s.pos = s.ring.writer_pos();
                    if mode == WriterMode::Seqlock {
                        s.ring.slot_invalidate(s.pos);
                    }
                })
                .then(|s: &mut RingModel| s.ring.slot_store_value(s.pos, value_for(s.started)))
                .then(|s: &mut RingModel| s.ring.slot_publish(s.pos, s.started))
                .then(|s: &mut RingModel| s.ring.publish_head(s.started));
        }
        let mut reader = Actor::new("reader");
        for _ in 0..scans {
            reader = reader.then(|s: &mut RingModel| {
                let head = s.ring.head();
                if head < s.last_head {
                    s.head_regressed = true;
                }
                s.last_head = head;
                for pos in 0..s.ring.cap() {
                    let Some((seq, v)) = s.ring.read_slot(pos) else {
                        continue;
                    };
                    if v != value_for(seq) {
                        s.torn = Some(format!(
                            "slot {pos}: seq {seq} paired with value {v} (torn row)"
                        ));
                    } else if seq == 0 || seq > s.started {
                        s.torn = Some(format!("slot {pos}: impossible seq {seq}"));
                    }
                }
            });
        }
        (state, vec![writer, reader])
    }
}

fn no_torn_rows(s: &RingModel) -> Result<(), String> {
    if s.head_regressed {
        return Err("ring head ran backwards".into());
    }
    match &s.torn {
        Some(t) => Err(t.clone()),
        None => Ok(()),
    }
}

/// Once the writer has finished, the ring must hold exactly the last
/// `cap` points — correct sequences, correct values, head caught up.
fn final_window_is_exact(s: &mut RingModel) -> Result<(), String> {
    if s.ring.head() != s.started {
        return Err(format!(
            "head {} after {} completed pushes",
            s.ring.head(),
            s.started
        ));
    }
    let lo = (s.started.saturating_sub(s.ring.cap() as u64)) + 1;
    let want: Vec<(u64, f64)> = (lo..=s.started).map(|q| (q, value_for(q))).collect();
    let got = s.ring.since(0);
    if got == want {
        Ok(())
    } else {
        Err(format!("final window {got:?}, expected {want:?}"))
    }
}

const MODE: Mode = Mode::Exhaustive {
    max_schedules: 200_000,
};

fn find_torn_row(mode: WriterMode) -> Result<ccp_verify::Report, Violation> {
    explore(
        MODE,
        torn_row_build(mode, 3, 2),
        no_torn_rows,
        final_window_is_exact,
    )
}

#[test]
fn seqlock_protocol_survives_exhaustive_exploration() {
    let report = find_torn_row(WriterMode::Seqlock)
        .expect("the four-step seqlock protocol must never surface a torn row");
    assert!(report.exhausted, "state space must be fully covered");
    // 3 pushes × 4 writer steps interleaved with 2 scans: C(14, 2) = 91.
    assert_eq!(report.schedules, 91);
}

#[test]
fn skipping_invalidation_surfaces_a_torn_row() {
    let violation = find_torn_row(WriterMode::NoInvalidate)
        .expect_err("a scan between bits-store and seq-publish must see stale seq + fresh bits");
    assert!(
        violation.message.contains("torn row"),
        "unexpected failure shape: {violation}"
    );
}

#[test]
fn torn_row_witness_replays_and_the_protocol_kills_it() {
    let violation = find_torn_row(WriterMode::NoInvalidate).expect_err("bug must be found");
    // Deterministic witness: replaying the schedule reproduces the
    // exact torn row…
    let replayed = replay(
        &violation.schedule,
        torn_row_build(WriterMode::NoInvalidate, 3, 2),
        no_torn_rows,
        final_window_is_exact,
    )
    .expect_err("witness schedule must reproduce the torn row");
    assert_eq!(replayed.message, violation.message);
    // …and the same schedule against the real protocol passes: the
    // invalidation step is what closes exactly this window.
    replay(
        &violation.schedule,
        torn_row_build(WriterMode::Seqlock, 3, 2),
        no_torn_rows,
        final_window_is_exact,
    )
    .expect("slot_invalidate neutralizes the witness schedule");
}
