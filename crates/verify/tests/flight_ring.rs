//! Model checks for the flight recorder's per-slot seqlock series ring
//! ([`ccp_flight::SeriesRing`]): the decomposed writer protocol
//! (`slot_invalidate` → `slot_store_value` → `slot_publish` →
//! `publish_head`) is driven through every interleaving against a
//! scanning reader, and no schedule may ever surface a **torn row** — a
//! sequence number paired with another write's value bits.
//!
//! The harness also proves it has teeth: a writer that skips the
//! invalidation step (publishing fresh bits under the stale sequence)
//! is caught by the exhaustive exploration, and the witness schedule
//! replays deterministically — then passes against the real protocol.
//!
//! The DPOR harness models the recorder's real shape — one
//! [`SeriesRing`] *per series*, written independently — with a second
//! reader on the first ring: scans of different readers commute
//! (read/read), rings commute with each other, and only writer-vs-scan
//! orderings on the same ring are explored.

use ccp_flight::SeriesRing;
use ccp_verify::{explore, replay, Access, Actor, Mode, Violation};
use std::time::Instant;

/// The value convention: point `seq` always carries `seq * 10.0`, so a
/// reader can detect a torn row from the pair alone.
fn value_for(seq: u64) -> f64 {
    seq as f64 * 10.0
}

/// Which writer protocol the model drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WriterMode {
    /// The shipped four-step seqlock protocol.
    Seqlock,
    /// The bug shape: overwrite the bits without zeroing the sequence
    /// first, so a concurrent reader pairs stale seq with fresh value.
    NoInvalidate,
}

struct RingModel {
    ring: SeriesRing,
    /// Pushes started so far; push `i` carries sequence `i` (1-based).
    started: u64,
    /// Slot the in-flight push writes to, handed between writer steps.
    pos: usize,
    /// First torn row any scan observed.
    torn: Option<String>,
    /// Head observed by the previous scan — must never regress.
    last_head: u64,
    head_regressed: bool,
}

/// One writer doing `pushes` decomposed pushes into a 2-slot ring, one
/// reader doing `scans` full-ring scans, each scan a single step the
/// explorer can land between any two writer steps.
fn torn_row_build(
    mode: WriterMode,
    pushes: u64,
    scans: usize,
) -> impl Fn() -> (RingModel, Vec<Actor<RingModel>>) {
    move || {
        let state = RingModel {
            ring: SeriesRing::new(2),
            started: 0,
            pos: 0,
            torn: None,
            last_head: 0,
            head_regressed: false,
        };
        let mut writer = Actor::new("writer");
        for _ in 0..pushes {
            writer = writer
                .then_accessing(
                    move |s: &mut RingModel| {
                        s.started += 1;
                        s.pos = s.ring.writer_pos();
                        if mode == WriterMode::Seqlock {
                            s.ring.slot_invalidate(s.pos);
                        }
                    },
                    &[Access::Write("ring")],
                )
                .then_accessing(
                    |s: &mut RingModel| s.ring.slot_store_value(s.pos, value_for(s.started)),
                    &[Access::Write("ring")],
                )
                .then_accessing(
                    |s: &mut RingModel| s.ring.slot_publish(s.pos, s.started),
                    &[Access::Write("ring")],
                )
                .then_accessing(
                    |s: &mut RingModel| s.ring.publish_head(s.started),
                    &[Access::Write("ring")],
                );
        }
        let mut reader = Actor::new("reader");
        for _ in 0..scans {
            reader = reader.then_accessing(|s: &mut RingModel| scan(s), &[Access::Read("ring")]);
        }
        (state, vec![writer, reader])
    }
}

/// One full-ring scan: records head regressions and torn rows into the
/// model (detection lives *inside* the step, so DPOR's observer
/// discipline holds — what a scan sees depends only on the same-ring
/// writer steps ordered before it).
fn scan(s: &mut RingModel) {
    let head = s.ring.head();
    if head < s.last_head {
        s.head_regressed = true;
    }
    s.last_head = head;
    for pos in 0..s.ring.cap() {
        let Some((seq, v)) = s.ring.read_slot(pos) else {
            continue;
        };
        if v != value_for(seq) {
            s.torn = Some(format!(
                "slot {pos}: seq {seq} paired with value {v} (torn row)"
            ));
        } else if seq == 0 || seq > s.started {
            s.torn = Some(format!("slot {pos}: impossible seq {seq}"));
        }
    }
}

fn no_torn_rows(s: &RingModel) -> Result<(), String> {
    if s.head_regressed {
        return Err("ring head ran backwards".into());
    }
    match &s.torn {
        Some(t) => Err(t.clone()),
        None => Ok(()),
    }
}

/// Once the writer has finished, the ring must hold exactly the last
/// `cap` points — correct sequences, correct values, head caught up.
fn final_window_is_exact(s: &mut RingModel) -> Result<(), String> {
    if s.ring.head() != s.started {
        return Err(format!(
            "head {} after {} completed pushes",
            s.ring.head(),
            s.started
        ));
    }
    let lo = (s.started.saturating_sub(s.ring.cap() as u64)) + 1;
    let want: Vec<(u64, f64)> = (lo..=s.started).map(|q| (q, value_for(q))).collect();
    let got = s.ring.since(0);
    if got == want {
        Ok(())
    } else {
        Err(format!("final window {got:?}, expected {want:?}"))
    }
}

const MODE: Mode = Mode::Exhaustive {
    max_schedules: 200_000,
};

fn find_torn_row(mode: WriterMode) -> Result<ccp_verify::Report, Violation> {
    explore(
        MODE,
        torn_row_build(mode, 3, 2),
        no_torn_rows,
        final_window_is_exact,
    )
}

#[test]
fn seqlock_protocol_survives_exhaustive_exploration() {
    let start = Instant::now();
    let report = find_torn_row(WriterMode::Seqlock)
        .expect("the four-step seqlock protocol must never surface a torn row");
    ccp_verify::emit_stats(
        "flight_ring/seqlock",
        "exhaustive",
        &report,
        start.elapsed(),
    );
    assert!(report.exhausted, "state space must be fully covered");
    // 3 pushes × 4 writer steps interleaved with 2 scans: C(14, 2) = 91.
    assert_eq!(report.schedules, 91);
}

#[test]
fn skipping_invalidation_surfaces_a_torn_row() {
    let violation = find_torn_row(WriterMode::NoInvalidate)
        .expect_err("a scan between bits-store and seq-publish must see stale seq + fresh bits");
    assert!(
        violation.message.contains("torn row"),
        "unexpected failure shape: {violation}"
    );
}

#[test]
fn torn_row_witness_replays_and_the_protocol_kills_it() {
    let violation = find_torn_row(WriterMode::NoInvalidate).expect_err("bug must be found");
    // Deterministic witness: replaying the schedule reproduces the
    // exact torn row…
    let replayed = replay(
        &violation.schedule,
        torn_row_build(WriterMode::NoInvalidate, 3, 2),
        no_torn_rows,
        final_window_is_exact,
    )
    .expect_err("witness schedule must reproduce the torn row");
    assert_eq!(replayed.message, violation.message);
    // …and the same schedule against the real protocol passes: the
    // invalidation step is what closes exactly this window.
    replay(
        &violation.schedule,
        torn_row_build(WriterMode::Seqlock, 3, 2),
        no_torn_rows,
        final_window_is_exact,
    )
    .expect("slot_invalidate neutralizes the witness schedule");
}

// ---------------------------------------------------------------------
// DPOR harness: per-series rings + a second reader on the first ring.
// ---------------------------------------------------------------------

/// Two independent series rings; ring 0 gets a second scanning reader.
/// Reader-private cursors (`last_head`) live per reader so the shared
/// `torn` flag is the only cross-reader write — and "some scan saw a
/// tear" is order-invariant within a trace, because each scan's
/// observation depends only on the writer steps sequenced before it.
struct TwoSeries {
    rings: [RingModel; 2],
    /// Second reader's private head cursor (ring 0).
    last_head_b: u64,
    head_regressed_b: bool,
}

fn scan_second_reader(s: &mut TwoSeries) {
    let m = &mut s.rings[0];
    let head = m.ring.head();
    if head < s.last_head_b {
        s.head_regressed_b = true;
    }
    s.last_head_b = head;
    for pos in 0..m.ring.cap() {
        let Some((seq, v)) = m.ring.read_slot(pos) else {
            continue;
        };
        if v != value_for(seq) || seq == 0 || seq > m.started {
            m.torn = Some(format!("slot {pos}: seq {seq} / value {v} (reader-b)"));
        }
    }
}

fn two_series_build(
    mode: WriterMode,
    pushes: u64,
    scans: usize,
) -> impl Fn() -> (TwoSeries, Vec<Actor<TwoSeries>>) {
    move || {
        let fresh = || RingModel {
            ring: SeriesRing::new(2),
            started: 0,
            pos: 0,
            torn: None,
            last_head: 0,
            head_regressed: false,
        };
        let state = TwoSeries {
            rings: [fresh(), fresh()],
            last_head_b: 0,
            head_regressed_b: false,
        };
        let objects: [&'static str; 2] = ["series-0", "series-1"];
        let mut actors = Vec::new();
        for (r, obj) in objects.into_iter().enumerate() {
            // The seeded bug, when present, lives on ring 1 only.
            let ring_mode = if r == 1 { mode } else { WriterMode::Seqlock };
            let mut writer = Actor::new(format!("writer-{r}"));
            for _ in 0..pushes {
                writer = writer
                    .then_accessing(
                        move |s: &mut TwoSeries| {
                            let m = &mut s.rings[r];
                            m.started += 1;
                            m.pos = m.ring.writer_pos();
                            if ring_mode == WriterMode::Seqlock {
                                m.ring.slot_invalidate(m.pos);
                            }
                        },
                        &[Access::Write(obj)],
                    )
                    .then_accessing(
                        move |s: &mut TwoSeries| {
                            let m = &mut s.rings[r];
                            m.ring.slot_store_value(m.pos, value_for(m.started));
                        },
                        &[Access::Write(obj)],
                    )
                    .then_accessing(
                        move |s: &mut TwoSeries| {
                            let m = &mut s.rings[r];
                            m.ring.slot_publish(m.pos, m.started);
                        },
                        &[Access::Write(obj)],
                    )
                    .then_accessing(
                        move |s: &mut TwoSeries| {
                            let m = &mut s.rings[r];
                            m.ring.publish_head(m.started);
                        },
                        &[Access::Write(obj)],
                    );
            }
            actors.push(writer);
            let mut reader = Actor::new(format!("reader-{r}"));
            for _ in 0..scans {
                reader = reader.then_accessing(
                    move |s: &mut TwoSeries| scan(&mut s.rings[r]),
                    &[Access::Read(obj)],
                );
            }
            actors.push(reader);
        }
        // The second reader on ring 0: one scan, independent of reader-0's
        // scans (read/read) and of everything on ring 1.
        actors.push(
            Actor::new("reader-0b").then_accessing(scan_second_reader, &[Access::Read("series-0")]),
        );
        (state, actors)
    }
}

fn two_series_final(s: &mut TwoSeries) -> Result<(), String> {
    if s.head_regressed_b {
        return Err("ring 0: second reader saw the head run backwards".into());
    }
    for (r, m) in s.rings.iter_mut().enumerate() {
        if m.head_regressed {
            return Err(format!("ring {r}: head ran backwards"));
        }
        if let Some(t) = &m.torn {
            return Err(format!("ring {r}: {t}"));
        }
        final_window_is_exact(m).map_err(|e| format!("ring {r}: {e}"))?;
    }
    Ok(())
}

/// Per-series rings under DPOR: a 7.86-billion-interleaving space (two
/// writers × 8 steps, two readers × 2 scans, one extra scan) closes in
/// tens of thousands of representative runs — a space eight orders of
/// magnitude beyond the 91 schedules the exhaustive harness explores,
/// with the reduction ratio asserted real.
#[test]
fn per_series_rings_with_second_reader_verify_under_dpor() {
    let pushes = if ccp_verify::deep() { 3 } else { 2 };
    let build = two_series_build(WriterMode::Seqlock, pushes, 2);
    let start = Instant::now();
    let report = explore(
        Mode::Dpor {
            max_schedules: ccp_verify::budget(400_000),
        },
        &build,
        |_| Ok(()),
        two_series_final,
    )
    .expect("per-series seqlock rings must never tear");
    ccp_verify::emit_stats("flight_ring/two_series", "dpor", &report, start.elapsed());
    assert!(report.exhausted, "DPOR must close the space: {report:?}");
    if !ccp_verify::deep() {
        // Steps: 8 + 2 + 8 + 2 + 1 = 21 → 21!/(8!2!8!2!1!).
        assert_eq!(report.interleavings, 7_856_748_900);
    }
    assert!(
        report.reduction_ratio() >= 2.0,
        "the reduction must be real: ratio {} on {report:?}",
        report.reduction_ratio()
    );
}

/// Seeded torn-row bug on ring 1: the reduced exploration must still
/// catch it, and the witness must replay identically.
#[test]
fn per_series_rings_dpor_still_finds_a_seeded_torn_row() {
    // 3 pushes so the third wraps onto slot 0's published seq — the
    // stale-seq/fresh-bits window only exists once the ring wraps.
    let build = two_series_build(WriterMode::NoInvalidate, 3, 1);
    let violation = explore(
        Mode::Dpor {
            max_schedules: 400_000,
        },
        &build,
        |_| Ok(()),
        two_series_final,
    )
    .expect_err("ring 1's missing invalidation must surface a torn row");
    assert!(violation.message.contains("ring 1"), "{violation}");
    let replayed = replay(&violation.schedule, &build, |_| Ok(()), two_series_final)
        .expect_err("witness must reproduce");
    assert_eq!(replayed.message, violation.message);
}
