//! Model checks for the server's scheduler-gated admission queue
//! ([`ccp_server::AdmissionQueue`]): ticket conservation, co-run
//! exclusivity, queue-full accounting and drain-to-empty, under every
//! interleaving of acquire and release operations.
//!
//! The harness stays single-threaded by using
//! `acquire_with_deadline(cuid, Some(Duration::ZERO))`: admissibility is
//! checked before the deadline, so a zero deadline is a non-blocking
//! try-acquire — admitted immediately or `TimedOut` with the waiter
//! dequeued, never parked.

use ccp_engine::{CacheAwareScheduler, CacheUsageClass, PartitionPolicy, SchedulerMetrics};
use ccp_obs::Registry;
use ccp_server::{AdmissionError, AdmissionQueue, RunPermit, ServerMetrics};
use ccp_verify::{explore, Access, Actor, Mode};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MODE: Mode = Mode::Exhaustive {
    max_schedules: 200_000,
};

fn queue(slots: usize, capacity: usize) -> Arc<AdmissionQueue> {
    let cfg = ccp_cachesim::HierarchyConfig::broadwell_e5_2699_v4();
    let policy = PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes);
    let registry = Registry::new();
    Arc::new(AdmissionQueue::new(
        CacheAwareScheduler::new(policy, slots),
        capacity,
        SchedulerMetrics::new(),
        ServerMetrics::new(&registry),
    ))
}

struct QueueModel {
    queue: Arc<AdmissionQueue>,
    held: Vec<RunPermit>,
    granted_tickets: Vec<u64>,
    attempts: u64,
    timed_out: u64,
    queue_full: u64,
}

impl QueueModel {
    fn try_acquire(&mut self, cuid: CacheUsageClass) {
        self.attempts += 1;
        match self.queue.acquire_with_deadline(cuid, Some(Duration::ZERO)) {
            Ok(permit) => {
                self.granted_tickets.push(permit.ticket());
                self.held.push(permit);
            }
            Err(AdmissionError::TimedOut) => self.timed_out += 1,
            Err(AdmissionError::QueueFull) => self.queue_full += 1,
            Err(AdmissionError::ShuttingDown | AdmissionError::QuotaExceeded) => {
                unreachable!("queue is never shut down or quota'd in this harness")
            }
        }
    }

    fn sensitive_running(&self) -> usize {
        self.held
            .iter()
            .filter(|p| p.cuid() == CacheUsageClass::Sensitive)
            .count()
    }
}

fn step_invariants(slots: usize) -> impl Fn(&QueueModel) -> Result<(), String> {
    move |s: &QueueModel| {
        let (waiting, running) = s.queue.occupancy();
        if running != s.held.len() {
            return Err(format!(
                "queue reports {running} running but the harness holds {} permits",
                s.held.len()
            ));
        }
        if waiting != 0 {
            return Err(format!(
                "zero-deadline acquires must never leave waiters behind, found {waiting}"
            ));
        }
        if running > slots {
            return Err(format!("{running} running exceeds {slots} slots"));
        }
        if s.sensitive_running() > 1 {
            return Err(format!(
                "{} cache-sensitive queries co-running — the scheduler must never allow two",
                s.sensitive_running()
            ));
        }
        Ok(())
    }
}

fn final_invariants(s: &mut QueueModel) -> Result<(), String> {
    // Ticket conservation: every attempt that enqueued (everything but
    // QueueFull) consumed exactly one ticket; with immediate grants the
    // granted tickets must be unique and strictly increasing.
    let enqueued = s.attempts - s.queue_full;
    if s.granted_tickets.len() as u64 + s.timed_out != enqueued {
        return Err(format!(
            "{} grants + {} timeouts != {enqueued} enqueued attempts",
            s.granted_tickets.len(),
            s.timed_out
        ));
    }
    if s.granted_tickets.windows(2).any(|w| w[1] <= w[0]) {
        return Err(format!(
            "granted tickets not strictly increasing: {:?}",
            s.granted_tickets
        ));
    }
    // Dropping every permit must leave the queue empty and drainable.
    s.held.clear();
    if s.queue.occupancy() != (0, 0) {
        return Err(format!(
            "queue not empty after all permits dropped: {:?}",
            s.queue.occupancy()
        ));
    }
    if !s.queue.drain(Duration::from_secs(1)) {
        return Err("drain timed out on an empty queue".into());
    }
    Ok(())
}

/// Two sensitive queries, one polluter, one mixed-class FK join, two
/// releases — every order (360 interleavings). The scheduler must
/// serialize the sensitive pair, the polluter and the mixed query may
/// co-run with either, and ticket/occupancy accounting must balance.
///
/// Every step is an RMW on the one shared queue (annotated as such):
/// there is no independence to reduce, and the per-step checks read the
/// queue's global occupancy — the omniscient-observer shape that needs
/// [`Mode::Exhaustive`], per DESIGN.md §8.
#[test]
fn tickets_conserved_and_sensitives_serialized_under_all_interleavings() {
    const SLOTS: usize = 2;
    let build = || {
        let state = QueueModel {
            queue: queue(SLOTS, 8),
            held: Vec::new(),
            granted_tickets: Vec::new(),
            attempts: 0,
            timed_out: 0,
            queue_full: 0,
        };
        let classes = [
            CacheUsageClass::Sensitive,
            CacheUsageClass::Sensitive,
            CacheUsageClass::Polluting,
            // The paper's third class: an FK join whose bit vector is
            // big enough to matter but not to classify as sensitive.
            CacheUsageClass::Mixed { hot_bytes: 1 << 20 },
        ];
        let mut actors: Vec<Actor<QueueModel>> = classes
            .iter()
            .enumerate()
            .map(|(i, &cuid)| {
                Actor::new(format!("query-{i}")).then_accessing(
                    move |s: &mut QueueModel| {
                        s.try_acquire(cuid);
                    },
                    &[Access::AcqRel("queue")],
                )
            })
            .collect();
        // Two releases of the oldest held permit, schedulable anywhere —
        // including before anything was granted (then they no-op).
        let mut releaser = Actor::new("releaser");
        for _ in 0..2 {
            releaser = releaser.then_accessing(
                |s: &mut QueueModel| {
                    if !s.held.is_empty() {
                        s.held.remove(0);
                    }
                },
                &[Access::Write("queue")],
            );
        }
        actors.push(releaser);
        (state, actors)
    };
    let start = Instant::now();
    let report = explore(MODE, build, step_invariants(SLOTS), final_invariants)
        .expect("admission invariants must hold on every schedule");
    ccp_verify::emit_stats(
        "admission/four_classes",
        "exhaustive",
        &report,
        start.elapsed(),
    );
    assert!(report.exhausted, "6-step space must be fully covered");
    // 4 single-step queries + 2 releaser steps: 6!/2! = 360.
    assert_eq!(report.schedules, 360);
}

/// With zero waiting capacity every acquire that cannot run immediately
/// fails `QueueFull` *before* consuming a ticket — the conservation
/// equation must still balance.
#[test]
fn zero_capacity_queue_rejects_without_consuming_tickets() {
    const SLOTS: usize = 1;
    let build = || {
        let state = QueueModel {
            queue: queue(SLOTS, 0),
            held: Vec::new(),
            granted_tickets: Vec::new(),
            attempts: 0,
            timed_out: 0,
            queue_full: 0,
        };
        let mut actors: Vec<Actor<QueueModel>> = (0..3)
            .map(|i| {
                Actor::new(format!("query-{i}")).then_accessing(
                    |s: &mut QueueModel| {
                        s.try_acquire(CacheUsageClass::Polluting);
                    },
                    &[Access::AcqRel("queue")],
                )
            })
            .collect();
        actors.push(Actor::new("releaser").then_accessing(
            |s: &mut QueueModel| {
                if !s.held.is_empty() {
                    s.held.remove(0);
                }
            },
            &[Access::Write("queue")],
        ));
        (state, actors)
    };
    let report = explore(MODE, build, step_invariants(SLOTS), |s: &mut QueueModel| {
        if s.queue_full == 0 {
            return Err("capacity-0 queue never reported QueueFull".into());
        }
        final_invariants(s)
    })
    .expect("queue-full accounting must balance");
    assert!(report.exhausted);
}

/// After shutdown every acquire fails fast with `ShuttingDown`, running
/// permits stay valid until dropped, and the queue still drains.
#[test]
fn shutdown_fails_new_arrivals_but_honors_held_permits() {
    let q = queue(2, 8);
    let permit = q
        .acquire_with_deadline(CacheUsageClass::Polluting, Some(Duration::ZERO))
        .expect("empty queue admits immediately");
    q.shutdown();
    assert!(matches!(
        q.acquire_with_deadline(CacheUsageClass::Polluting, Some(Duration::ZERO)),
        Err(AdmissionError::ShuttingDown)
    ));
    assert_eq!(q.occupancy(), (0, 1), "held permit survives shutdown");
    drop(permit);
    assert!(q.drain(Duration::from_secs(1)));
}
