//! Model checks for the tracer's seqlock span ring
//! ([`ccp_trace::SpanRing`]): snapshot/clear interleavings, recycle
//! accounting, and head monotonicity.
//!
//! The headline harness re-finds the PR-3 `/trace?clear=1` bug shape:
//! snapshotting a ring and then calling the unconditional `clear()`
//! loses any record pushed between the two calls. The shipped fix —
//! `clear_to(head)` with the head the snapshot observed — must survive
//! the *exhaustive* exploration of the same schedules.

use ccp_trace::{Record, SpanRing, TraceCat};
use ccp_verify::{explore, replay, Actor, Mode, Violation};
use std::cell::Cell;
use std::collections::BTreeSet;

/// How the reader hides what it has read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClearMode {
    /// `clear_to(observed_head)` — the PR-3 fix.
    Guarded,
    /// Unconditional `clear()` — the PR-3 bug, reverted for the harness.
    Buggy,
}

struct RingModel {
    ring: SpanRing,
    /// Records pushed so far; record `i` carries `id == i`.
    pushed: u64,
    /// Ids any snapshot (or the final sweep) has observed.
    observed: BTreeSet<u64>,
    /// Head returned by the previous collect — must never regress.
    last_head: u64,
    head_regressed: bool,
    /// Observed head handed from the reader's collect step to its clear
    /// step (the window the PR-3 race lives in).
    snapshot_head: u64,
}

impl RingModel {
    fn absorb(&mut self, records: &[Record]) {
        self.observed.extend(records.iter().map(|r| r.id));
    }
}

/// One writer pushing `records` events, one reader doing `cycles`
/// snapshot-then-clear passes, each split into two steps so the explorer
/// can interleave a push *between* them.
fn snapshot_clear_build(
    mode: ClearMode,
    records: u64,
    cycles: usize,
) -> impl Fn() -> (RingModel, Vec<Actor<RingModel>>) {
    move || {
        let state = RingModel {
            ring: SpanRing::new(8),
            pushed: 0,
            observed: BTreeSet::new(),
            last_head: 0,
            head_regressed: false,
            snapshot_head: 0,
        };
        let mut writer = Actor::new("writer");
        for _ in 0..records {
            writer = writer.then(|s: &mut RingModel| {
                s.ring.push_instant(s.pushed, TraceCat::Op, s.pushed, "w");
                s.pushed += 1;
            });
        }
        let mut reader = Actor::new("reader");
        for _ in 0..cycles {
            reader = reader
                .then(|s: &mut RingModel| {
                    let mut buf = Vec::new();
                    let head = s.ring.collect(&mut buf);
                    if head < s.last_head {
                        s.head_regressed = true;
                    }
                    s.last_head = head;
                    s.absorb(&buf);
                    s.snapshot_head = head;
                })
                .then(move |s: &mut RingModel| match mode {
                    ClearMode::Guarded => s.ring.clear_to(s.snapshot_head),
                    ClearMode::Buggy => s.ring.clear(),
                });
        }
        (state, vec![writer, reader])
    }
}

fn no_head_regression(s: &RingModel) -> Result<(), String> {
    if s.head_regressed {
        Err("collect observed a head lower than a previous snapshot's".into())
    } else {
        Ok(())
    }
}

/// Every pushed record must be observed by some snapshot or by the final
/// sweep (capacity 8 > records pushed, so wrap-drop is impossible and
/// `dropped()` must stay 0 — nothing may vanish unaccounted).
fn nothing_lost(s: &mut RingModel) -> Result<(), String> {
    let mut buf = Vec::new();
    s.ring.collect(&mut buf);
    let records = buf;
    s.absorb(&records);
    if s.ring.dropped() != 0 {
        return Err(format!(
            "ring reported {} drops without ever wrapping",
            s.ring.dropped()
        ));
    }
    let missing: Vec<u64> = (0..s.pushed)
        .filter(|id| !s.observed.contains(id))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "records never observed and never counted dropped: {missing:?}"
        ))
    }
}

const MODE: Mode = Mode::Exhaustive {
    max_schedules: 200_000,
};

fn find_clear_race(mode: ClearMode) -> Result<ccp_verify::Report, Violation> {
    explore(
        MODE,
        snapshot_clear_build(mode, 3, 2),
        no_head_regression,
        nothing_lost,
    )
}

#[test]
fn guarded_clear_to_survives_exhaustive_exploration() {
    let report = find_clear_race(ClearMode::Guarded)
        .expect("clear_to(observed_head) must never lose a record");
    assert!(report.exhausted, "state space must be fully covered");
    // 3 writer steps interleaved with 4 reader steps: C(7,3) = 35.
    assert_eq!(report.schedules, 35);
}

#[test]
fn unguarded_clear_loses_the_record_pushed_between_snapshot_and_clear() {
    let violation = find_clear_race(ClearMode::Buggy)
        .expect_err("explorer must rediscover the PR-3 snapshot-vs-clear race");
    assert!(
        violation.message.contains("never observed"),
        "unexpected failure shape: {violation}"
    );
}

#[test]
fn clear_race_witness_replays_and_the_fix_kills_it() {
    let violation = find_clear_race(ClearMode::Buggy).expect_err("bug must be found");
    // The witness schedule is deterministic: replaying it reproduces the
    // exact violation…
    let replayed = replay(
        &violation.schedule,
        snapshot_clear_build(ClearMode::Buggy, 3, 2),
        no_head_regression,
        nothing_lost,
    )
    .expect_err("witness schedule must reproduce the loss");
    assert_eq!(replayed.message, violation.message);
    // …and the same schedule against the guarded clear passes: the fix
    // addresses precisely this interleaving.
    replay(
        &violation.schedule,
        snapshot_clear_build(ClearMode::Guarded, 3, 2),
        no_head_regression,
        nothing_lost,
    )
    .expect("clear_to(observed_head) neutralizes the witness schedule");
}

/// Recycle accounting: `visible + dropped == pushed` at *every* step,
/// under any interleaving of pushes (with wrap-around) and a recycle.
struct RecycleModel {
    ring: SpanRing,
    pushed: u64,
    last_head: Cell<u64>,
}

#[test]
fn recycle_conserves_records_under_all_interleavings() {
    let build = || {
        let state = RecycleModel {
            ring: SpanRing::new(8),
            pushed: 0,
            last_head: Cell::new(0),
        };
        // 12 pushes into 8 slots: 4 wrap-drops, wherever the recycle
        // lands.
        let mut writer = Actor::new("writer");
        for _ in 0..12 {
            writer = writer.then(|s: &mut RecycleModel| {
                s.ring.push_instant(s.pushed, TraceCat::Op, s.pushed, "w");
                s.pushed += 1;
            });
        }
        let recycler = Actor::new("recycler").then(|s: &mut RecycleModel| s.ring.recycle());
        (state, vec![writer, recycler])
    };
    let conserved = |s: &RecycleModel| {
        let mut buf = Vec::new();
        let head = s.ring.collect(&mut buf);
        if head < s.last_head.get() {
            return Err(format!(
                "head regressed: {} after {}",
                head,
                s.last_head.get()
            ));
        }
        s.last_head.set(head);
        let accounted = buf.len() as u64 + s.ring.dropped();
        if accounted == s.pushed {
            Ok(())
        } else {
            Err(format!(
                "pushed {} records but visible ({}) + dropped ({}) = {accounted}",
                s.pushed,
                buf.len(),
                s.ring.dropped()
            ))
        }
    };
    let report = explore(MODE, build, conserved, |_| Ok(()))
        .expect("recycle must count every hidden record as dropped");
    assert!(report.exhausted);
    // One recycle step anywhere among 12 pushes: 13 schedules.
    assert_eq!(report.schedules, 13);
}
