//! Model checks for the tracer's seqlock span ring
//! ([`ccp_trace::SpanRing`]): snapshot/clear interleavings, recycle
//! accounting, and head monotonicity.
//!
//! The headline harness re-finds the PR-3 `/trace?clear=1` bug shape:
//! snapshotting a ring and then calling the unconditional `clear()`
//! loses any record pushed between the two calls. The shipped fix —
//! `clear_to(head)` with the head the snapshot observed — must survive
//! the *exhaustive* exploration of the same schedules.
//!
//! The DPOR harness widens the model to what the tracer actually runs
//! in production: **per-thread rings**. Two rings, each with its own
//! writer/reader pair, are mutually independent — exactly the structure
//! [`Mode::Dpor`] collapses, which buys a state space two orders of
//! magnitude past what the exhaustive harness could afford.

use ccp_trace::{Record, SpanRing, TraceCat};
use ccp_verify::{explore, replay, Access, Actor, Mode, Violation};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::time::Instant;

/// How the reader hides what it has read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClearMode {
    /// `clear_to(observed_head)` — the PR-3 fix.
    Guarded,
    /// Unconditional `clear()` — the PR-3 bug, reverted for the harness.
    Buggy,
}

struct RingModel {
    ring: SpanRing,
    /// Records pushed so far; record `i` carries `id == i`.
    pushed: u64,
    /// Ids any snapshot (or the final sweep) has observed.
    observed: BTreeSet<u64>,
    /// Head returned by the previous collect — must never regress.
    last_head: u64,
    head_regressed: bool,
    /// Observed head handed from the reader's collect step to its clear
    /// step (the window the PR-3 race lives in).
    snapshot_head: u64,
}

impl RingModel {
    fn absorb(&mut self, records: &[Record]) {
        self.observed.extend(records.iter().map(|r| r.id));
    }
}

/// One writer pushing `records` events, one reader doing `cycles`
/// snapshot-then-clear passes, each split into two steps so the explorer
/// can interleave a push *between* them.
fn snapshot_clear_build(
    mode: ClearMode,
    records: u64,
    cycles: usize,
) -> impl Fn() -> (RingModel, Vec<Actor<RingModel>>) {
    move || {
        let state = RingModel {
            ring: SpanRing::new(8),
            pushed: 0,
            observed: BTreeSet::new(),
            last_head: 0,
            head_regressed: false,
            snapshot_head: 0,
        };
        let mut writer = Actor::new("writer");
        for _ in 0..records {
            writer = writer.then_accessing(
                |s: &mut RingModel| {
                    s.ring.push_instant(s.pushed, TraceCat::Op, s.pushed, "w");
                    s.pushed += 1;
                },
                &[Access::Write("ring")],
            );
        }
        let mut reader = Actor::new("reader");
        for _ in 0..cycles {
            reader = reader
                .then_accessing(
                    |s: &mut RingModel| {
                        let mut buf = Vec::new();
                        let head = s.ring.collect(&mut buf);
                        if head < s.last_head {
                            s.head_regressed = true;
                        }
                        s.last_head = head;
                        s.absorb(&buf);
                        s.snapshot_head = head;
                    },
                    &[Access::Read("ring")],
                )
                .then_accessing(
                    move |s: &mut RingModel| match mode {
                        ClearMode::Guarded => s.ring.clear_to(s.snapshot_head),
                        ClearMode::Buggy => s.ring.clear(),
                    },
                    &[Access::Write("ring")],
                );
        }
        (state, vec![writer, reader])
    }
}

fn no_head_regression(s: &RingModel) -> Result<(), String> {
    if s.head_regressed {
        Err("collect observed a head lower than a previous snapshot's".into())
    } else {
        Ok(())
    }
}

/// Every pushed record must be observed by some snapshot or by the final
/// sweep (capacity 8 > records pushed, so wrap-drop is impossible and
/// `dropped()` must stay 0 — nothing may vanish unaccounted).
fn nothing_lost(s: &mut RingModel) -> Result<(), String> {
    let mut buf = Vec::new();
    s.ring.collect(&mut buf);
    let records = buf;
    s.absorb(&records);
    if s.ring.dropped() != 0 {
        return Err(format!(
            "ring reported {} drops without ever wrapping",
            s.ring.dropped()
        ));
    }
    let missing: Vec<u64> = (0..s.pushed)
        .filter(|id| !s.observed.contains(id))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "records never observed and never counted dropped: {missing:?}"
        ))
    }
}

const MODE: Mode = Mode::Exhaustive {
    max_schedules: 200_000,
};

fn find_clear_race(mode: ClearMode) -> Result<ccp_verify::Report, Violation> {
    explore(
        MODE,
        snapshot_clear_build(mode, 3, 2),
        no_head_regression,
        nothing_lost,
    )
}

#[test]
fn guarded_clear_to_survives_exhaustive_exploration() {
    let start = Instant::now();
    let report = find_clear_race(ClearMode::Guarded)
        .expect("clear_to(observed_head) must never lose a record");
    ccp_verify::emit_stats(
        "span_ring/guarded_clear",
        "exhaustive",
        &report,
        start.elapsed(),
    );
    assert!(report.exhausted, "state space must be fully covered");
    // 3 writer steps interleaved with 4 reader steps: C(7,3) = 35.
    assert_eq!(report.schedules, 35);
}

#[test]
fn unguarded_clear_loses_the_record_pushed_between_snapshot_and_clear() {
    let violation = find_clear_race(ClearMode::Buggy)
        .expect_err("explorer must rediscover the PR-3 snapshot-vs-clear race");
    assert!(
        violation.message.contains("never observed"),
        "unexpected failure shape: {violation}"
    );
}

#[test]
fn clear_race_witness_replays_and_the_fix_kills_it() {
    let violation = find_clear_race(ClearMode::Buggy).expect_err("bug must be found");
    // The witness schedule is deterministic: replaying it reproduces the
    // exact violation…
    let replayed = replay(
        &violation.schedule,
        snapshot_clear_build(ClearMode::Buggy, 3, 2),
        no_head_regression,
        nothing_lost,
    )
    .expect_err("witness schedule must reproduce the loss");
    assert_eq!(replayed.message, violation.message);
    // …and the same schedule against the guarded clear passes: the fix
    // addresses precisely this interleaving.
    replay(
        &violation.schedule,
        snapshot_clear_build(ClearMode::Guarded, 3, 2),
        no_head_regression,
        nothing_lost,
    )
    .expect("clear_to(observed_head) neutralizes the witness schedule");
}

/// Recycle accounting: `visible + dropped == pushed` at *every* step,
/// under any interleaving of pushes (with wrap-around) and a recycle.
struct RecycleModel {
    ring: SpanRing,
    pushed: u64,
    last_head: Cell<u64>,
}

#[test]
fn recycle_conserves_records_under_all_interleavings() {
    let build = || {
        let state = RecycleModel {
            ring: SpanRing::new(8),
            pushed: 0,
            last_head: Cell::new(0),
        };
        // 12 pushes into 8 slots: 4 wrap-drops, wherever the recycle
        // lands.
        let mut writer = Actor::new("writer");
        for _ in 0..12 {
            writer = writer.then_accessing(
                |s: &mut RecycleModel| {
                    s.ring.push_instant(s.pushed, TraceCat::Op, s.pushed, "w");
                    s.pushed += 1;
                },
                &[Access::Write("ring")],
            );
        }
        let recycler = Actor::new("recycler").then_accessing(
            |s: &mut RecycleModel| s.ring.recycle(),
            &[Access::Write("ring")],
        );
        (state, vec![writer, recycler])
    };
    let conserved = |s: &RecycleModel| {
        let mut buf = Vec::new();
        let head = s.ring.collect(&mut buf);
        if head < s.last_head.get() {
            return Err(format!(
                "head regressed: {} after {}",
                head,
                s.last_head.get()
            ));
        }
        s.last_head.set(head);
        let accounted = buf.len() as u64 + s.ring.dropped();
        if accounted == s.pushed {
            Ok(())
        } else {
            Err(format!(
                "pushed {} records but visible ({}) + dropped ({}) = {accounted}",
                s.pushed,
                buf.len(),
                s.ring.dropped()
            ))
        }
    };
    let report = explore(MODE, build, conserved, |_| Ok(()))
        .expect("recycle must count every hidden record as dropped");
    assert!(report.exhausted);
    // One recycle step anywhere among 12 pushes: 13 schedules.
    assert_eq!(report.schedules, 13);
}

// ---------------------------------------------------------------------
// DPOR harness: per-thread rings, the tracer's real deployment shape.
// ---------------------------------------------------------------------

/// Two per-thread rings, each with a private writer/reader pair. Steps
/// on different rings are independent and annotated as such; within a
/// ring everything conflicts, so each ring's full snapshot/clear
/// interleaving set is still explored.
struct TwoRings {
    rings: [RingModel; 2],
}

fn two_ring_build(records: u64, cycles: usize) -> impl Fn() -> (TwoRings, Vec<Actor<TwoRings>>) {
    move || {
        let fresh = || RingModel {
            ring: SpanRing::new(8),
            pushed: 0,
            observed: BTreeSet::new(),
            last_head: 0,
            head_regressed: false,
            snapshot_head: 0,
        };
        let state = TwoRings {
            rings: [fresh(), fresh()],
        };
        let objects: [&'static str; 2] = ["ring-0", "ring-1"];
        let mut actors = Vec::new();
        for (r, obj) in objects.into_iter().enumerate() {
            let mut writer = Actor::new(format!("writer-{r}"));
            for _ in 0..records {
                writer = writer.then_accessing(
                    move |s: &mut TwoRings| {
                        let m = &mut s.rings[r];
                        m.ring.push_instant(m.pushed, TraceCat::Op, m.pushed, "w");
                        m.pushed += 1;
                    },
                    &[Access::Write(obj)],
                );
            }
            actors.push(writer);
            let mut reader = Actor::new(format!("reader-{r}"));
            for _ in 0..cycles {
                reader = reader
                    .then_accessing(
                        move |s: &mut TwoRings| {
                            let m = &mut s.rings[r];
                            let mut buf = Vec::new();
                            let head = m.ring.collect(&mut buf);
                            if head < m.last_head {
                                m.head_regressed = true;
                            }
                            m.last_head = head;
                            m.absorb(&buf);
                            m.snapshot_head = head;
                        },
                        &[Access::Read(obj)],
                    )
                    .then_accessing(
                        move |s: &mut TwoRings| {
                            let m = &mut s.rings[r];
                            m.ring.clear_to(m.snapshot_head);
                        },
                        &[Access::Write(obj)],
                    );
            }
            actors.push(reader);
        }
        (state, actors)
    }
}

/// Per-ring conservation and monotonicity, checked at quiescence (the
/// head-regression flags are raised *inside* the reader steps, so DPOR's
/// observer discipline holds: detection depends only on same-ring order).
fn two_ring_final(s: &mut TwoRings) -> Result<(), String> {
    for (r, m) in s.rings.iter_mut().enumerate() {
        if m.head_regressed {
            return Err(format!("ring {r}: head regressed"));
        }
        let mut buf = Vec::new();
        m.ring.collect(&mut buf);
        let records = buf;
        m.absorb(&records);
        if m.ring.dropped() != 0 {
            return Err(format!(
                "ring {r}: {} drops without wrapping",
                m.ring.dropped()
            ));
        }
        let missing: Vec<u64> = (0..m.pushed)
            .filter(|id| !m.observed.contains(id))
            .collect();
        if !missing.is_empty() {
            return Err(format!("ring {r}: records lost: {missing:?}"));
        }
    }
    Ok(())
}

/// The headline reduction: two independent writer/reader pairs explode
/// to 25 200 interleavings (multinomial over 3+2+3+2 steps), but DPOR
/// only needs one representative per trace — the per-ring interleavings
/// times each other, plus sleep-set-blocked stubs — far below the
/// exhaustive harness's budget, on a space 720× larger than the 35
/// schedules the single-ring harness explores.
#[test]
fn per_thread_rings_verify_under_dpor_with_real_reduction() {
    let (records, cycles) = if ccp_verify::deep() { (4, 2) } else { (3, 1) };
    let build = two_ring_build(records, cycles);
    let start = Instant::now();
    let report = explore(
        Mode::Dpor {
            max_schedules: ccp_verify::budget(200_000),
        },
        &build,
        |_| Ok(()),
        two_ring_final,
    )
    .expect("guarded per-thread rings must conserve records");
    ccp_verify::emit_stats("span_ring/two_rings", "dpor", &report, start.elapsed());
    assert!(report.exhausted, "DPOR must close the space: {report:?}");
    if !ccp_verify::deep() {
        // 2 writers × 3 pushes + 2 readers × 2 steps = 10!/(3!2!3!2!).
        assert_eq!(report.interleavings, 25_200);
        // Per ring: C(5,2) = 10 fully-conflicting interleavings; the two
        // rings are independent, so 100 traces cover the product space.
        assert_eq!(report.traces_explored, 100, "{report:?}");
    }
    assert!(
        report.reduction_ratio() >= 2.0,
        "the reduction must be real: ratio {} on {report:?}",
        report.reduction_ratio()
    );
}

/// Same per-thread space, seeded with the PR-3 bug on one ring: DPOR
/// must still find the loss even though most interleavings are pruned —
/// the racing snapshot/clear/push steps all conflict on that ring, so
/// every representative set contains a witness.
#[test]
fn per_thread_rings_dpor_still_finds_a_seeded_clear_race() {
    let build = move || {
        let (mut state, mut actors) = two_ring_build(3, 1)();
        // Swap ring 1's guarded clear for the buggy unconditional one.
        let obj = "ring-1";
        state.rings[1].snapshot_head = 0;
        // Rebuild reader-1 with the bug (actors: w0, r0, w1, r1).
        let mut reader = Actor::new("reader-1-buggy");
        reader = reader
            .then_accessing(
                |s: &mut TwoRings| {
                    let m = &mut s.rings[1];
                    let mut buf = Vec::new();
                    let head = m.ring.collect(&mut buf);
                    m.last_head = head;
                    m.absorb(&buf);
                    m.snapshot_head = head;
                },
                &[Access::Read(obj)],
            )
            .then_accessing(
                |s: &mut TwoRings| s.rings[1].ring.clear(),
                &[Access::Write(obj)],
            );
        actors[3] = reader;
        (state, actors)
    };
    let violation = explore(
        Mode::Dpor {
            max_schedules: 200_000,
        },
        build,
        |_| Ok(()),
        two_ring_final,
    )
    .expect_err("the unconditional clear must lose a record on ring 1");
    assert!(violation.message.contains("ring 1"), "{violation}");
    // The DPOR-found witness replays to the identical violation.
    let replayed = replay(&violation.schedule, build, |_| Ok(()), two_ring_final)
        .expect_err("witness must reproduce");
    assert_eq!(replayed.message, violation.message);
}
