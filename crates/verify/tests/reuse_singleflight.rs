//! Model checks for the reuse cache's single-flight protocol
//! ([`ccp_reuse::ReuseCache`]): at most one builder per key, no torn
//! artifacts, and counter conservation (`hits + misses == resolved
//! lookups`) under every interleaving of lookups, publishes and a
//! concurrent data-version bump.
//!
//! The harness stays single-threaded by stepping the cache through its
//! non-blocking [`TryBegin`] API: each `try_begin` / `publish` /
//! `bump_version` call is one atomic step, and the explorer owns the
//! order. `Pending` outcomes (another builder holds the key) are
//! *unresolved* lookups — the cache counts neither a hit nor a miss for
//! them, and the conservation equation accounts for that.

use ccp_reuse::{Artifact, BuildGuard, ResultSet, ReuseCache, ReuseConfig, ReuseKey, TryBegin};
use ccp_verify::{explore, Access, Actor, Mode};
use std::sync::Arc;
use std::time::{Duration, Instant};

const MODE: Mode = Mode::Exhaustive {
    max_schedules: 200_000,
};

/// The canonical artifact every builder publishes: a hit observing any
/// other `(rows, result)` pair means a torn or fabricated entry.
const ROWS: u64 = 7;
const RESULT: i64 = 42;

fn artifact() -> Artifact {
    Artifact::ResultSet(Arc::new(ResultSet {
        rows: ROWS,
        result: RESULT,
    }))
}

struct ReuseModel {
    cache: ReuseCache,
    /// Build guards claimed by worker actors, by actor index.
    guards: Vec<Option<BuildGuard>>,
    /// Lookups that resolved as hits / build claims; `Pending` retries
    /// resolve later or never (both are fine for conservation).
    resolved_hits: u64,
    resolved_builds: u64,
    unresolved: u64,
}

impl ReuseModel {
    fn new(workers: usize, budget: u64) -> ReuseModel {
        ReuseModel {
            cache: ReuseCache::new(ReuseConfig::with_budget(budget)),
            guards: (0..workers).map(|_| None).collect(),
            resolved_hits: 0,
            resolved_builds: 0,
            unresolved: 0,
        }
    }

    /// One lookup step: record the outcome and hold any claimed guard
    /// in the actor's slot (publishing is a *separate* step, so the
    /// explorer can interleave other lookups into the build window).
    fn lookup(&mut self, actor: usize, key: &ReuseKey) {
        match self.cache.try_begin(key) {
            TryBegin::Hit(a) => {
                let r = a.result_set().expect("published artifact is a result set");
                assert_eq!((r.rows, r.result), (ROWS, RESULT), "torn artifact");
                self.resolved_hits += 1;
            }
            TryBegin::Build(guard) => {
                self.resolved_builds += 1;
                self.guards[actor] = Some(guard);
            }
            TryBegin::Pending => self.unresolved += 1,
        }
    }

    /// One publish step: a no-op unless this actor's lookup claimed the
    /// build (the explorer schedules it regardless, keeping the step
    /// count schedule-independent as the determinism contract requires).
    fn publish(&mut self, actor: usize) {
        if let Some(guard) = self.guards[actor].take() {
            guard.publish(artifact(), Duration::from_micros(100));
        }
    }

    fn outstanding_builders(&self) -> usize {
        self.guards.iter().filter(|g| g.is_some()).count()
    }
}

/// Budget and byte-accounting checks, valid regardless of key layout.
fn step_invariants(s: &ReuseModel) -> Result<(), String> {
    let stats = s.cache.stats();
    if stats.bytes > stats.budget_bytes {
        return Err(format!(
            "cache holds {} bytes over the {}-byte budget",
            stats.bytes, stats.budget_bytes
        ));
    }
    // Every resident artifact in this harness is a 32-byte result set.
    if stats.bytes != stats.entries * 32 {
        return Err(format!(
            "byte accounting drifted: {} entries but {} bytes",
            stats.entries, stats.bytes
        ));
    }
    Ok(())
}

fn final_invariants(s: &mut ReuseModel) -> Result<(), String> {
    let stats = s.cache.stats();
    if stats.hits != s.resolved_hits || stats.misses != s.resolved_builds {
        return Err(format!(
            "counter conservation broken: cache says {} hits + {} misses, \
             harness resolved {} hits + {} builds ({} unresolved)",
            stats.hits, stats.misses, s.resolved_hits, s.resolved_builds, s.unresolved
        ));
    }
    // Abandon any still-held guard and confirm the key is buildable
    // again (an abandoned claim must not wedge the slot).
    for slot in &mut s.guards {
        *slot = None;
    }
    let key = s.cache.key("q1", "t < 5");
    match s.cache.try_begin(&key) {
        TryBegin::Pending => Err("key wedged: no builder alive yet lookup is Pending".into()),
        _ => Ok(()),
    }
}

/// Three workers race lookup→publish→lookup on the same key while a
/// fourth actor bumps the data version somewhere in the middle. Across
/// all 16 800 interleavings: exactly one builder at a time, no torn
/// artifacts, byte accounting exact, and the hit/miss counters conserve.
#[test]
fn single_flight_conserves_counters_under_all_interleavings_with_a_bump() {
    const WORKERS: usize = 3;
    let build = || {
        let state = ReuseModel::new(WORKERS, 1 << 20);
        let shared_key = state.cache.key("q1", "t < 5");
        let mut actors: Vec<Actor<ReuseModel>> = (0..WORKERS)
            .map(|i| {
                let key = shared_key.clone();
                let again = shared_key.clone();
                // One shared key: every step is an RMW on the same slot,
                // annotated as such (no independence to harvest — this
                // harness exists for the per-step omniscient checks,
                // which need Exhaustive mode anyway).
                Actor::new(format!("worker-{i}"))
                    .then_accessing(
                        move |s: &mut ReuseModel| s.lookup(i, &key),
                        &[Access::AcqRel("cache")],
                    )
                    .then_accessing(
                        move |s: &mut ReuseModel| s.publish(i),
                        &[Access::Write("cache")],
                    )
                    // The retry uses the key captured at version 0: after
                    // the bump it misses (purged) and the fresh build is
                    // discarded stale at publish — both still conserve.
                    .then_accessing(
                        move |s: &mut ReuseModel| {
                            s.lookup(i, &again);
                            s.publish(i);
                        },
                        &[Access::AcqRel("cache")],
                    )
            })
            .collect();
        actors.push(Actor::new("bump").then_accessing(
            |s: &mut ReuseModel| {
                s.cache.bump_version();
            },
            &[Access::Write("cache")],
        ));
        (state, actors)
    };
    let single_key_step = |s: &ReuseModel| {
        // All workers contend on ONE key, so single-flight means at
        // most one outstanding build guard across the whole model. (A
        // stale build claimed for a pre-bump key counts too: the claim
        // survives the purge and is discarded at publish, never
        // duplicated.)
        if s.outstanding_builders() > 1 {
            return Err(format!(
                "{} concurrent builders for one key — single-flight broken",
                s.outstanding_builders()
            ));
        }
        step_invariants(s)
    };
    let start = Instant::now();
    let report = explore(MODE, build, single_key_step, final_invariants)
        .expect("single-flight invariants must hold on every schedule");
    ccp_verify::emit_stats(
        "reuse_singleflight/single_key",
        "exhaustive",
        &report,
        start.elapsed(),
    );
    assert!(report.exhausted, "10-step space must be fully covered");
}

/// Two workers build *different* keys under a budget that fits only one
/// 32-byte entry: every publish beyond the first must evict (never
/// overrun), and the accounting stays exact through evictions and a
/// concurrent bump.
#[test]
fn tiny_budget_never_overruns_across_interleavings() {
    const WORKERS: usize = 2;
    let build = || {
        let state = ReuseModel::new(WORKERS, 40);
        let keys: Vec<ReuseKey> = (0..WORKERS)
            .map(|i| state.cache.key(&format!("q{i}"), "t < 5"))
            .collect();
        let mut actors: Vec<Actor<ReuseModel>> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let key = key.clone();
                let again = key.clone();
                // Distinct keys but a shared 40-byte budget: any publish
                // can evict the *other* worker's entry, so steps on
                // different keys do NOT commute here — every step is
                // honestly annotated as touching the one budget-coupled
                // cache.
                Actor::new(format!("worker-{i}"))
                    .then_accessing(
                        move |s: &mut ReuseModel| s.lookup(i, &key),
                        &[Access::AcqRel("cache")],
                    )
                    .then_accessing(
                        move |s: &mut ReuseModel| s.publish(i),
                        &[Access::Write("cache")],
                    )
                    .then_accessing(
                        move |s: &mut ReuseModel| {
                            s.lookup(i, &again);
                            s.publish(i);
                        },
                        &[Access::AcqRel("cache")],
                    )
            })
            .collect();
        actors.push(Actor::new("bump").then_accessing(
            |s: &mut ReuseModel| {
                s.cache.bump_version();
            },
            &[Access::Write("cache")],
        ));
        (state, actors)
    };
    let report = explore(MODE, build, step_invariants, |s: &mut ReuseModel| {
        let stats = s.cache.stats();
        if stats.hits != s.resolved_hits || stats.misses != s.resolved_builds {
            return Err(format!(
                "conservation broken: {stats:?} vs {} hits + {} builds",
                s.resolved_hits, s.resolved_builds
            ));
        }
        if stats.entries > 1 {
            return Err(format!("40-byte budget holds {} entries", stats.entries));
        }
        Ok(())
    })
    .expect("budget invariants must hold on every schedule");
    assert!(report.exhausted, "7-step space must be fully covered");
}

// ---------------------------------------------------------------------
// DPOR harness: two key groups, four workers, one version bump.
// ---------------------------------------------------------------------

/// Per-key-group bookkeeping for the DPOR harness: single-flight is
/// detected *inside* the lookup steps (a flag, raised from same-key
/// state only) so the observer discipline holds under reduction.
struct TwoKeyModel {
    cache: ReuseCache,
    guards: Vec<Option<BuildGuard>>,
    /// Worker index → key-group index.
    group_of: Vec<usize>,
    /// Key-group → single-flight violation observed by some lookup.
    sf_broken: [Option<String>; 2],
    resolved_hits: u64,
    resolved_builds: u64,
    unresolved: u64,
}

impl TwoKeyModel {
    fn lookup(&mut self, actor: usize, key: &ReuseKey) {
        match self.cache.try_begin(key) {
            TryBegin::Hit(a) => {
                let r = a.result_set().expect("published artifact is a result set");
                assert_eq!((r.rows, r.result), (ROWS, RESULT), "torn artifact");
                self.resolved_hits += 1;
            }
            TryBegin::Build(guard) => {
                self.resolved_builds += 1;
                self.guards[actor] = Some(guard);
                let group = self.group_of[actor];
                let holders = self
                    .guards
                    .iter()
                    .enumerate()
                    .filter(|(w, g)| self.group_of[*w] == group && g.is_some())
                    .count();
                if holders > 1 {
                    self.sf_broken[group] = Some(format!(
                        "{holders} concurrent builders in key group {group}"
                    ));
                }
            }
            TryBegin::Pending => self.unresolved += 1,
        }
    }

    fn publish(&mut self, actor: usize) {
        if let Some(guard) = self.guards[actor].take() {
            guard.publish(artifact(), Duration::from_micros(100));
        }
    }
}

/// Four workers, two per key, racing lookup→publish→(lookup+publish)
/// against one version bump. Steps on different keys commute (the
/// 1 MiB budget means no cross-key eviction and the global counters are
/// only read at quiescence, where sums are order-invariant); the bump
/// purges *every* key and is annotated accordingly. This is the space
/// the exhaustive harness could never afford: 4.8 M interleavings
/// (13!/(3!)⁴) vs the 16 800 it caps at today.
fn two_key_build(
    workers_per_key: usize,
    bumps: usize,
) -> impl Fn() -> (TwoKeyModel, Vec<Actor<TwoKeyModel>>) {
    move || {
        let workers = workers_per_key * 2;
        let cache = ReuseCache::new(ReuseConfig::with_budget(1 << 20));
        let objects: [&'static str; 2] = ["key-a", "key-b"];
        let keys = [cache.key("qa", "t < 5"), cache.key("qb", "t < 5")];
        let state = TwoKeyModel {
            cache,
            guards: (0..workers).map(|_| None).collect(),
            group_of: (0..workers).map(|w| w % 2).collect(),
            sf_broken: [None, None],
            resolved_hits: 0,
            resolved_builds: 0,
            unresolved: 0,
        };
        let mut actors: Vec<Actor<TwoKeyModel>> = (0..workers)
            .map(|i| {
                let group = i % 2;
                let obj = objects[group];
                let key = keys[group].clone();
                let again = key.clone();
                Actor::new(format!("worker-{i}{}", ["a", "b"][group]))
                    .then_accessing(
                        move |s: &mut TwoKeyModel| s.lookup(i, &key),
                        &[Access::AcqRel(obj)],
                    )
                    .then_accessing(
                        move |s: &mut TwoKeyModel| s.publish(i),
                        &[Access::Write(obj)],
                    )
                    .then_accessing(
                        move |s: &mut TwoKeyModel| {
                            s.lookup(i, &again);
                            s.publish(i);
                        },
                        &[Access::AcqRel(obj)],
                    )
            })
            .collect();
        let mut bumper = Actor::new("bump");
        for _ in 0..bumps {
            bumper = bumper.then_accessing(
                |s: &mut TwoKeyModel| {
                    s.cache.bump_version();
                },
                // A version bump purges every key group at once.
                &[Access::Write("key-a"), Access::Write("key-b")],
            );
        }
        actors.push(bumper);
        (state, actors)
    }
}

fn two_key_final(s: &mut TwoKeyModel) -> Result<(), String> {
    for (group, broken) in s.sf_broken.iter().enumerate() {
        if let Some(why) = broken {
            return Err(format!("key group {group}: {why}"));
        }
    }
    let stats = s.cache.stats();
    if stats.hits != s.resolved_hits || stats.misses != s.resolved_builds {
        return Err(format!(
            "counter conservation broken: cache says {} hits + {} misses, \
             harness resolved {} hits + {} builds ({} unresolved)",
            stats.hits, stats.misses, s.resolved_hits, s.resolved_builds, s.unresolved
        ));
    }
    if stats.bytes != stats.entries * 32 {
        return Err(format!(
            "byte accounting drifted: {} entries but {} bytes",
            stats.entries, stats.bytes
        ));
    }
    // No wedged keys once every guard is dropped.
    for slot in &mut s.guards {
        *slot = None;
    }
    for (name, filter) in [("qa", "t < 5"), ("qb", "t < 5")] {
        let key = s.cache.key(name, filter);
        if matches!(s.cache.try_begin(&key), TryBegin::Pending) {
            return Err(format!("key {name} wedged with no builder alive"));
        }
    }
    Ok(())
}

/// The raised-bounds single-flight check: 4 workers over 2 keys plus a
/// bump — 4.8 M interleavings closed by DPOR in tens of thousands of
/// runs, with the reduction asserted ≥ 2×.
#[test]
fn four_workers_two_keys_single_flight_under_dpor() {
    let bumps = if ccp_verify::deep() { 2 } else { 1 };
    let build = two_key_build(2, bumps);
    let start = Instant::now();
    let report = explore(
        Mode::Dpor {
            max_schedules: ccp_verify::budget(400_000),
        },
        &build,
        |_| Ok(()),
        two_key_final,
    )
    .expect("single-flight and conservation must hold on every schedule");
    ccp_verify::emit_stats(
        "reuse_singleflight/two_keys",
        "dpor",
        &report,
        start.elapsed(),
    );
    assert!(report.exhausted, "DPOR must close the space: {report:?}");
    if !ccp_verify::deep() {
        // 4 workers × 3 steps + 1 bump = 13 steps → 13!/(3!3!3!3!1!).
        assert_eq!(report.interleavings, 4_804_800);
    }
    assert!(
        report.reduction_ratio() >= 2.0,
        "the reduction must be real: ratio {} on {report:?}",
        report.reduction_ratio()
    );
}

/// Teeth for the DPOR harness: a worker that *leaks* its guard slot —
/// modelling a second begin for the same key — must be caught through
/// the reduced exploration too. The leak is seeded by letting worker 2
/// call `try_begin` twice without publishing in between; the cache's
/// single-flight makes the second call Pending, so instead the model
/// fakes the regression by double-claiming the slot count. Rather than
/// fabricate cache state, the fixture drops the real invariant down a
/// level: worker 2 claims, then worker 0's lookup on the same key must
/// see Pending, never Build. If the cache ever hands out two guards,
/// `sf_broken` trips inside the step.
#[test]
fn dpor_two_keys_would_catch_a_double_build() {
    // Differential probe: the same space under a deliberately broken
    // model check (treating Pending as a resolved build) must produce a
    // conservation violation, proving the harness's final check is live.
    let build = two_key_build(2, 1);
    let broken_final = |s: &mut TwoKeyModel| {
        let stats = s.cache.stats();
        let claimed = s.resolved_builds + s.unresolved;
        if stats.misses != claimed {
            return Err(format!(
                "seeded miscount: cache says {} misses, model (wrongly) claims {claimed}",
                stats.misses
            ));
        }
        Ok(())
    };
    let violation = explore(
        Mode::Dpor {
            max_schedules: 400_000,
        },
        &build,
        |_| Ok(()),
        broken_final,
    )
    .expect_err("some schedule must produce a Pending, tripping the seeded miscount");
    assert!(violation.message.contains("seeded miscount"), "{violation}");
    // And the witness replays mode-agnostically.
    let replayed = ccp_verify::replay(&violation.schedule, &build, |_| Ok(()), broken_final)
        .expect_err("witness must reproduce");
    assert_eq!(replayed.message, violation.message);
}
