//! Model checks for the reuse cache's single-flight protocol
//! ([`ccp_reuse::ReuseCache`]): at most one builder per key, no torn
//! artifacts, and counter conservation (`hits + misses == resolved
//! lookups`) under every interleaving of lookups, publishes and a
//! concurrent data-version bump.
//!
//! The harness stays single-threaded by stepping the cache through its
//! non-blocking [`TryBegin`] API: each `try_begin` / `publish` /
//! `bump_version` call is one atomic step, and the explorer owns the
//! order. `Pending` outcomes (another builder holds the key) are
//! *unresolved* lookups — the cache counts neither a hit nor a miss for
//! them, and the conservation equation accounts for that.

use ccp_reuse::{Artifact, BuildGuard, ResultSet, ReuseCache, ReuseConfig, ReuseKey, TryBegin};
use ccp_verify::{explore, Actor, Mode};
use std::sync::Arc;
use std::time::Duration;

const MODE: Mode = Mode::Exhaustive {
    max_schedules: 200_000,
};

/// The canonical artifact every builder publishes: a hit observing any
/// other `(rows, result)` pair means a torn or fabricated entry.
const ROWS: u64 = 7;
const RESULT: i64 = 42;

fn artifact() -> Artifact {
    Artifact::ResultSet(Arc::new(ResultSet {
        rows: ROWS,
        result: RESULT,
    }))
}

struct ReuseModel {
    cache: ReuseCache,
    /// Build guards claimed by worker actors, by actor index.
    guards: Vec<Option<BuildGuard>>,
    /// Lookups that resolved as hits / build claims; `Pending` retries
    /// resolve later or never (both are fine for conservation).
    resolved_hits: u64,
    resolved_builds: u64,
    unresolved: u64,
}

impl ReuseModel {
    fn new(workers: usize, budget: u64) -> ReuseModel {
        ReuseModel {
            cache: ReuseCache::new(ReuseConfig::with_budget(budget)),
            guards: (0..workers).map(|_| None).collect(),
            resolved_hits: 0,
            resolved_builds: 0,
            unresolved: 0,
        }
    }

    /// One lookup step: record the outcome and hold any claimed guard
    /// in the actor's slot (publishing is a *separate* step, so the
    /// explorer can interleave other lookups into the build window).
    fn lookup(&mut self, actor: usize, key: &ReuseKey) {
        match self.cache.try_begin(key) {
            TryBegin::Hit(a) => {
                let r = a.result_set().expect("published artifact is a result set");
                assert_eq!((r.rows, r.result), (ROWS, RESULT), "torn artifact");
                self.resolved_hits += 1;
            }
            TryBegin::Build(guard) => {
                self.resolved_builds += 1;
                self.guards[actor] = Some(guard);
            }
            TryBegin::Pending => self.unresolved += 1,
        }
    }

    /// One publish step: a no-op unless this actor's lookup claimed the
    /// build (the explorer schedules it regardless, keeping the step
    /// count schedule-independent as the determinism contract requires).
    fn publish(&mut self, actor: usize) {
        if let Some(guard) = self.guards[actor].take() {
            guard.publish(artifact(), Duration::from_micros(100));
        }
    }

    fn outstanding_builders(&self) -> usize {
        self.guards.iter().filter(|g| g.is_some()).count()
    }
}

/// Budget and byte-accounting checks, valid regardless of key layout.
fn step_invariants(s: &ReuseModel) -> Result<(), String> {
    let stats = s.cache.stats();
    if stats.bytes > stats.budget_bytes {
        return Err(format!(
            "cache holds {} bytes over the {}-byte budget",
            stats.bytes, stats.budget_bytes
        ));
    }
    // Every resident artifact in this harness is a 32-byte result set.
    if stats.bytes != stats.entries * 32 {
        return Err(format!(
            "byte accounting drifted: {} entries but {} bytes",
            stats.entries, stats.bytes
        ));
    }
    Ok(())
}

fn final_invariants(s: &mut ReuseModel) -> Result<(), String> {
    let stats = s.cache.stats();
    if stats.hits != s.resolved_hits || stats.misses != s.resolved_builds {
        return Err(format!(
            "counter conservation broken: cache says {} hits + {} misses, \
             harness resolved {} hits + {} builds ({} unresolved)",
            stats.hits, stats.misses, s.resolved_hits, s.resolved_builds, s.unresolved
        ));
    }
    // Abandon any still-held guard and confirm the key is buildable
    // again (an abandoned claim must not wedge the slot).
    for slot in &mut s.guards {
        *slot = None;
    }
    let key = s.cache.key("q1", "t < 5");
    match s.cache.try_begin(&key) {
        TryBegin::Pending => Err("key wedged: no builder alive yet lookup is Pending".into()),
        _ => Ok(()),
    }
}

/// Three workers race lookup→publish→lookup on the same key while a
/// fourth actor bumps the data version somewhere in the middle. Across
/// all 16 800 interleavings: exactly one builder at a time, no torn
/// artifacts, byte accounting exact, and the hit/miss counters conserve.
#[test]
fn single_flight_conserves_counters_under_all_interleavings_with_a_bump() {
    const WORKERS: usize = 3;
    let build = || {
        let state = ReuseModel::new(WORKERS, 1 << 20);
        let shared_key = state.cache.key("q1", "t < 5");
        let mut actors: Vec<Actor<ReuseModel>> = (0..WORKERS)
            .map(|i| {
                let key = shared_key.clone();
                let again = shared_key.clone();
                Actor::new(format!("worker-{i}"))
                    .then(move |s: &mut ReuseModel| s.lookup(i, &key))
                    .then(move |s: &mut ReuseModel| s.publish(i))
                    // The retry uses the key captured at version 0: after
                    // the bump it misses (purged) and the fresh build is
                    // discarded stale at publish — both still conserve.
                    .then(move |s: &mut ReuseModel| {
                        s.lookup(i, &again);
                        s.publish(i);
                    })
            })
            .collect();
        actors.push(Actor::new("bump").then(|s: &mut ReuseModel| {
            s.cache.bump_version();
        }));
        (state, actors)
    };
    let single_key_step = |s: &ReuseModel| {
        // All workers contend on ONE key, so single-flight means at
        // most one outstanding build guard across the whole model. (A
        // stale build claimed for a pre-bump key counts too: the claim
        // survives the purge and is discarded at publish, never
        // duplicated.)
        if s.outstanding_builders() > 1 {
            return Err(format!(
                "{} concurrent builders for one key — single-flight broken",
                s.outstanding_builders()
            ));
        }
        step_invariants(s)
    };
    let report = explore(MODE, build, single_key_step, final_invariants)
        .expect("single-flight invariants must hold on every schedule");
    assert!(report.exhausted, "10-step space must be fully covered");
}

/// Two workers build *different* keys under a budget that fits only one
/// 32-byte entry: every publish beyond the first must evict (never
/// overrun), and the accounting stays exact through evictions and a
/// concurrent bump.
#[test]
fn tiny_budget_never_overruns_across_interleavings() {
    const WORKERS: usize = 2;
    let build = || {
        let state = ReuseModel::new(WORKERS, 40);
        let keys: Vec<ReuseKey> = (0..WORKERS)
            .map(|i| state.cache.key(&format!("q{i}"), "t < 5"))
            .collect();
        let mut actors: Vec<Actor<ReuseModel>> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let key = key.clone();
                let again = key.clone();
                Actor::new(format!("worker-{i}"))
                    .then(move |s: &mut ReuseModel| s.lookup(i, &key))
                    .then(move |s: &mut ReuseModel| s.publish(i))
                    .then(move |s: &mut ReuseModel| {
                        s.lookup(i, &again);
                        s.publish(i);
                    })
            })
            .collect();
        actors.push(Actor::new("bump").then(|s: &mut ReuseModel| {
            s.cache.bump_version();
        }));
        (state, actors)
    };
    let report = explore(MODE, build, step_invariants, |s: &mut ReuseModel| {
        let stats = s.cache.stats();
        if stats.hits != s.resolved_hits || stats.misses != s.resolved_builds {
            return Err(format!(
                "conservation broken: {stats:?} vs {} hits + {} builds",
                s.resolved_hits, s.resolved_builds
            ));
        }
        if stats.entries > 1 {
            return Err(format!("40-byte budget holds {} entries", stats.entries));
        }
        Ok(())
    })
    .expect("budget invariants must hold on every schedule");
    assert!(report.exhausted, "7-step space must be fully covered");
}
