//! Edge cases for [`ccp_verify::replay`]: witness schedules recorded in
//! one mode replay in any other, schedules recorded against a different
//! harness shape fail with a diagnosable violation (never a panic), and
//! a truncated schedule deterministically runs the remainder to
//! completion instead of stopping short of the final check.

use ccp_verify::{explore, replay, Access, Actor, Mode};

struct Tally {
    vals: [u64; 3],
}

/// `actors` independent single-object writers, two steps each.
fn build_n(actors: usize) -> impl Fn() -> (Tally, Vec<Actor<Tally>>) {
    const OBJS: [&str; 3] = ["a", "b", "c"];
    move || {
        let state = Tally { vals: [0; 3] };
        let actors = (0..actors)
            .map(|i| {
                Actor::new(format!("writer-{i}"))
                    .then_accessing(
                        move |s: &mut Tally| s.vals[i] += 1,
                        &[Access::Write(OBJS[i])],
                    )
                    .then_accessing(
                        move |s: &mut Tally| s.vals[i] += 1,
                        &[Access::Write(OBJS[i])],
                    )
            })
            .collect();
        (state, actors)
    }
}

fn all_twos(n: usize) -> impl Fn(&mut Tally) -> Result<(), String> {
    move |s: &mut Tally| {
        for (i, v) in s.vals.iter().enumerate().take(n) {
            if *v != 2 {
                return Err(format!("writer-{i} landed {v} increments, expected 2"));
            }
        }
        Ok(())
    }
}

/// A schedule found under DPOR replays unchanged — replay has no notion
/// of the mode that recorded it, only the actor-index sequence.
#[test]
fn dpor_recorded_schedule_replays_clean() {
    // Seed a bug so explore returns a witness schedule to replay: the
    // final check demands a value the harness never produces.
    let impossible = |s: &mut Tally| -> Result<(), String> {
        if s.vals[0] == 99 {
            Ok(())
        } else {
            Err(format!("vals[0]={} (seeded check)", s.vals[0]))
        }
    };
    let v = explore(
        Mode::Dpor {
            max_schedules: 1_000,
        },
        build_n(3),
        |_| Ok(()),
        impossible,
    )
    .expect_err("seeded check must fail");
    // Replaying the witness reproduces it exactly…
    let replayed =
        replay(&v.schedule, build_n(3), |_| Ok(()), impossible).expect_err("must reproduce");
    assert_eq!(replayed.message, v.message);
    // …and the same schedule passes the real invariant.
    replay(&v.schedule, build_n(3), |_| Ok(()), all_twos(3))
        .expect("DPOR witness schedule must drive the harness to completion");
}

/// Replaying a schedule against a harness with fewer actors than the
/// recording must fail with a violation that names the out-of-range
/// actor pick and the shrunken actor set — not index-panic.
#[test]
fn shrunk_actor_set_yields_a_named_error_not_a_panic() {
    // Recorded against build_n(3): picks actor #2 up front. Against the
    // 2-actor harness that pick is out of range while steps remain, so
    // it cannot be absorbed by the run-to-completion fallback.
    let recorded = [2, 2, 0, 0, 1, 1];
    replay(&recorded, build_n(3), |_| Ok(()), all_twos(3))
        .expect("schedule is valid against the harness it was recorded on");
    let err = replay(&recorded, build_n(2), |_| Ok(()), all_twos(2))
        .expect_err("shrunk harness must be rejected");
    assert!(
        err.message.contains("only has 2 actors"),
        "error must name the shrunken set: {err}"
    );
    assert!(
        err.message.contains("writer-0") && err.message.contains("writer-1"),
        "error must list the surviving actors: {err}"
    );
}

/// A schedule that picks an actor with no steps left fails with the
/// actor's name, not a panic.
#[test]
fn exhausted_actor_pick_yields_a_named_error() {
    // Actor 0 has 2 steps; a schedule picking it three times overruns.
    let err = replay(&[0, 0, 0, 1, 1], build_n(2), |_| Ok(()), all_twos(2))
        .expect_err("overrunning schedule must be rejected");
    assert!(
        err.message.contains("writer-0") && err.message.contains("no steps left"),
        "error must name the exhausted actor: {err}"
    );
}

/// A truncated schedule runs its prefix verbatim, then falls back to a
/// deterministic completion (first runnable actor) so the final check
/// still sees quiescence.
#[test]
fn truncated_schedule_runs_to_completion_deterministically() {
    // Only 2 of 6 steps are scheduled; replay must finish the rest and
    // reach the final check, which sees every writer's 2 increments.
    replay(&[1, 0], build_n(3), |_| Ok(()), all_twos(3))
        .expect("truncated schedule must be completed deterministically");
    // Empty schedule: pure fallback, still completes.
    replay(&[], build_n(3), |_| Ok(()), all_twos(3))
        .expect("empty schedule must still drive the harness to quiescence");
}
