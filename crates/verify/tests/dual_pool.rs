//! Model checks for the dual-pool handoff ([`ccp_engine::DualPoolExecutor`]):
//! jobs land in the pool they were submitted to, nothing is lost or run
//! twice, and the §V-C guarantee — the OLTP pool binds the full cache
//! mask exactly once per worker, never a partition — holds under every
//! interleaving of OLAP and OLTP submissions.
//!
//! The pools use real worker threads, so the explorer controls the
//! *submission* interleaving and the invariants are checked after
//! `wait_idle()` — the handoff (which queue a job enters, which mask its
//! pool binds) is exactly the part schedule order could plausibly break.

use ccp_engine::{CacheUsageClass, DualPoolExecutor, Job, PartitionPolicy, RecordingAllocator};
use ccp_verify::{explore, Access, Actor, Mode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const PER_POOL: u64 = 4;
const FULL_MASK: u32 = 0xfffff;
const POLLUTER_MASK: u32 = 0x3;

struct PoolModel {
    rec: Arc<RecordingAllocator>,
    ex: DualPoolExecutor,
    done: Arc<AtomicU64>,
    submitted_olap: u64,
    submitted_oltp: u64,
}

#[test]
fn handoff_preserves_jobs_and_oltp_full_cache_under_all_submission_orders() {
    let build = || {
        let cfg = ccp_cachesim::HierarchyConfig::broadwell_e5_2699_v4();
        let rec = Arc::new(RecordingAllocator::new());
        let ex = DualPoolExecutor::new(
            1,
            1,
            PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
            rec.clone(),
        );
        let state = PoolModel {
            rec,
            ex,
            done: Arc::new(AtomicU64::new(0)),
            submitted_olap: 0,
            submitted_oltp: 0,
        };
        // The two submitters touch disjoint queues, and every check runs
        // after wait_idle() — so the submission orders are genuinely
        // independent and DPOR collapses the space to one trace.
        let mut olap = Actor::new("olap-submitter");
        for i in 0..PER_POOL {
            olap = olap.then_accessing(
                move |s: &mut PoolModel| {
                    let d = s.done.clone();
                    s.ex.submit_olap(Job::new(
                        format!("scan-{i}"),
                        CacheUsageClass::Polluting,
                        move || {
                            d.fetch_add(1, Ordering::Relaxed);
                        },
                    ));
                    s.submitted_olap += 1;
                },
                &[Access::Write("olap-q")],
            );
        }
        let mut oltp = Actor::new("oltp-submitter");
        for i in 0..PER_POOL {
            oltp = oltp.then_accessing(
                move |s: &mut PoolModel| {
                    let d = s.done.clone();
                    s.ex.submit_oltp(Job::new(
                        format!("txn-{i}"),
                        CacheUsageClass::Polluting, // CUID is advisory on OLTP
                        move || {
                            d.fetch_add(1, Ordering::Relaxed);
                        },
                    ));
                    s.submitted_oltp += 1;
                },
                &[Access::Write("oltp-q")],
            );
        }
        (state, vec![olap, oltp])
    };
    let check_final = |s: &mut PoolModel| {
        s.ex.wait_idle();
        // Conservation: every submitted job ran exactly once, in the pool
        // it was handed to.
        let ran = s.done.load(Ordering::Relaxed);
        if ran != s.submitted_olap + s.submitted_oltp {
            return Err(format!(
                "{ran} jobs ran, {} + {} were submitted",
                s.submitted_olap, s.submitted_oltp
            ));
        }
        if s.ex.olap().jobs_executed() != s.submitted_olap {
            return Err(format!(
                "OLAP pool ran {} of {} OLAP jobs",
                s.ex.olap().jobs_executed(),
                s.submitted_olap
            ));
        }
        if s.ex.oltp().jobs_executed() != s.submitted_oltp {
            return Err(format!(
                "OLTP pool ran {} of {} OLTP jobs",
                s.ex.oltp().jobs_executed(),
                s.submitted_oltp
            ));
        }
        // §V-C: the OLTP pool binds once per worker (1 here), and only
        // ever the full mask; polluting OLAP jobs bind their partition.
        let (_, oltp_switches) = s.ex.mask_switches();
        if oltp_switches > 1 {
            return Err(format!(
                "OLTP pool re-bound {oltp_switches} times; must bind once per worker"
            ));
        }
        let masks: Vec<u32> = s.rec.calls().iter().map(|(_, m)| m.bits()).collect();
        if !masks.iter().all(|&m| m == FULL_MASK || m == POLLUTER_MASK) {
            return Err(format!("unexpected mask among binds: {masks:x?}"));
        }
        if !masks.contains(&FULL_MASK) {
            return Err("OLTP worker never bound the full mask".into());
        }
        if !masks.contains(&POLLUTER_MASK) {
            return Err("polluting OLAP jobs never bound their partition".into());
        }
        Ok(())
    };
    let start = Instant::now();
    let report = explore(
        Mode::Dpor {
            max_schedules: 1_000,
        },
        build,
        |_| Ok(()),
        check_final,
    )
    .expect("dual-pool handoff must be order-independent");
    assert!(report.exhausted);
    // Two 4-step submitters into disjoint pools: C(8,4) = 70
    // interleavings, all Mazurkiewicz-equivalent — one representative run.
    assert_eq!(report.interleavings, 70);
    assert_eq!(report.traces_explored, 1);
    ccp_verify::emit_stats("dual_pool/handoff", "dpor", &report, start.elapsed());
}

/// Randomized sweep at a larger scale than the exhaustive harness can
/// afford: 6 jobs per pool, 40 seeded schedules.
#[test]
fn handoff_survives_randomized_submission_orders() {
    let build = || {
        let cfg = ccp_cachesim::HierarchyConfig::broadwell_e5_2699_v4();
        let rec = Arc::new(RecordingAllocator::new());
        let ex = DualPoolExecutor::new(
            2,
            2,
            PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
            rec.clone(),
        );
        let state = PoolModel {
            rec,
            ex,
            done: Arc::new(AtomicU64::new(0)),
            submitted_olap: 0,
            submitted_oltp: 0,
        };
        let mut olap = Actor::new("olap-submitter");
        let mut oltp = Actor::new("oltp-submitter");
        for _ in 0..6 {
            olap = olap.then_accessing(
                |s: &mut PoolModel| {
                    let d = s.done.clone();
                    s.ex.submit_olap(Job::new("scan", CacheUsageClass::Polluting, move || {
                        d.fetch_add(1, Ordering::Relaxed);
                    }));
                    s.submitted_olap += 1;
                },
                &[Access::Write("olap-q")],
            );
            oltp = oltp.then_accessing(
                |s: &mut PoolModel| {
                    let d = s.done.clone();
                    s.ex.submit_oltp(Job::unannotated("txn", move || {
                        d.fetch_add(1, Ordering::Relaxed);
                    }));
                    s.submitted_oltp += 1;
                },
                &[Access::Write("oltp-q")],
            );
        }
        (state, vec![olap, oltp])
    };
    let report = explore(
        Mode::Random {
            seed: 0xcc9,
            schedules: 40,
        },
        build,
        |_| Ok(()),
        |s: &mut PoolModel| {
            s.ex.wait_idle();
            let ran = s.done.load(Ordering::Relaxed);
            if ran != 12 {
                return Err(format!("{ran} of 12 jobs ran"));
            }
            let (_, oltp_switches) = s.ex.mask_switches();
            if oltp_switches > 2 {
                return Err(format!("OLTP re-bound {oltp_switches} times for 2 workers"));
            }
            Ok(())
        },
    )
    .expect("randomized submission orders must all conserve jobs");
    assert_eq!(report.schedules, 40);
}
