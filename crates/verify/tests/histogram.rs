//! Model checks for the observability layer's lock-free histogram
//! ([`ccp_obs::Histogram`]): concurrent recording through shared-bucket
//! clones, snapshot monotonicity, and exact final totals.
//!
//! A negative control models the *non-atomic* histogram this design
//! replaced — bucket increment and sum accumulation as two separate
//! steps — and shows the explorer catching the torn state a scraper
//! could then observe.

use ccp_obs::{Histogram, HistogramSnapshot};
use ccp_verify::{explore, Access, Actor, Mode};
use std::time::Instant;

const MODE: Mode = Mode::Exhaustive {
    max_schedules: 200_000,
};

struct HistModel {
    hist: Histogram,
    /// Observations completed so far (each of a known value).
    recorded: u64,
    /// The scraper's snapshots, in the order taken.
    scrapes: Vec<HistogramSnapshot>,
}

/// Two recorders (cloned handles onto the same buckets) and a scraper,
/// fully interleaved. Invariants: a scrape's totals never regress
/// between scrapes, never exceed what was recorded, and the final
/// counts/sum are exact.
#[test]
fn concurrent_record_and_scrape_stays_consistent() {
    const VALUE: f64 = 2.0;
    const PER_RECORDER: usize = 3;
    let build = || {
        let hist = Histogram::latency();
        let state = HistModel {
            hist: hist.clone(),
            recorded: 0,
            scrapes: Vec::new(),
        };
        let mut actors = Vec::new();
        for r in 0..2 {
            // Clones share the underlying buckets — this is how the
            // registry hands the same instrument to many threads.
            let handle = hist.clone();
            let mut a = Actor::new(format!("recorder-{r}"));
            for _ in 0..PER_RECORDER {
                let h = handle.clone();
                a = a.then_accessing(
                    move |s: &mut HistModel| {
                        h.observe(VALUE);
                        s.recorded += 1;
                    },
                    &[Access::Write("hist")],
                );
            }
            actors.push(a);
        }
        let mut scraper = Actor::new("scraper");
        for _ in 0..2 {
            scraper = scraper.then_accessing(
                |s: &mut HistModel| s.scrapes.push(s.hist.snapshot()),
                &[Access::Read("hist")],
            );
        }
        actors.push(scraper);
        (state, actors)
    };
    let check_step = |s: &HistModel| {
        if s.hist.count() > s.recorded {
            return Err(format!(
                "count {} exceeds the {} observations made",
                s.hist.count(),
                s.recorded
            ));
        }
        for pair in s.scrapes.windows(2) {
            if pair[1].count() < pair[0].count() {
                return Err(format!(
                    "scrape totals regressed: {} then {}",
                    pair[0].count(),
                    pair[1].count()
                ));
            }
        }
        Ok(())
    };
    let check_final = |s: &mut HistModel| {
        let want = 2 * PER_RECORDER as u64;
        if s.hist.count() != want {
            return Err(format!("final count {} != {want}", s.hist.count()));
        }
        let sum = s.hist.sum();
        let expect = want as f64 * VALUE;
        if (sum - expect).abs() > 1e-9 {
            return Err(format!("final sum {sum} != {expect}"));
        }
        let snap = s.hist.snapshot();
        if snap.count() != want {
            return Err(format!("snapshot bucket total {} != {want}", snap.count()));
        }
        Ok(())
    };
    let start = Instant::now();
    let report =
        explore(MODE, build, check_step, check_final).expect("shared-bucket recording is atomic");
    ccp_verify::emit_stats(
        "histogram/record_scrape",
        "exhaustive",
        &report,
        start.elapsed(),
    );
    assert!(report.exhausted, "3+3+2 steps must be fully explorable");
}

/// Negative control: a modeled histogram whose observe is two separate
/// steps (bucket increment, then sum accumulation). A scraper landing
/// between them sees `count = 1, sum = 0` — the torn state the real
/// histogram's single-call observe makes unobservable at this
/// granularity.
#[test]
fn torn_two_step_observe_is_caught() {
    const VALUE: f64 = 2.0;
    struct Torn {
        count: u64,
        sum: f64,
        torn_seen: bool,
    }
    let build = || {
        let state = Torn {
            count: 0,
            sum: 0.0,
            torn_seen: false,
        };
        let recorder = Actor::new("recorder")
            .then_accessing(|s: &mut Torn| s.count += 1, &[Access::Write("hist")])
            .then_accessing(|s: &mut Torn| s.sum += VALUE, &[Access::Write("hist")]);
        let scraper = Actor::new("scraper").then_accessing(
            |s: &mut Torn| {
                if (s.sum - s.count as f64 * VALUE).abs() > 1e-9 {
                    s.torn_seen = true;
                }
            },
            &[Access::Read("hist")],
        );
        (state, vec![recorder, scraper])
    };
    let violation = explore(
        MODE,
        build,
        |s: &Torn| {
            if s.torn_seen {
                Err(format!("scrape saw count={} but sum={}", s.count, s.sum))
            } else {
                Ok(())
            }
        },
        |_| Ok(()),
    )
    .expect_err("the scrape-between-steps schedule must be found");
    assert!(violation.message.contains("count=1"), "{violation}");
}
