//! Model-checks the tenant group lifecycle: a reconciler minting
//! `ccp-<tenant>-<class>` groups from a finite CLOSID pool, a
//! supervisor that can trip (and heal) the degradation breaker at any
//! point, a tenant-churn actor flipping a tenant in and out of the
//! desired set mid-pass, and an admission-side reader binding
//! throughout. Under *every* interleaving:
//!
//! * no group is ever leaked (every table entry maps to a desired
//!   tenant group after quiescence, orphans are swept),
//! * no CLOSID is ever double-freed or aliased by two groups,
//! * no tenant is ever stranded — after a quiescent pass each desired
//!   group is either Satisfied (dedicated CLOSID) or Fallback (shared
//!   class mask); exhaustion degrades, it never abandons.

use ccp_resctrl::TenantId;
use ccp_verify::{explore, Access, Actor, Mode};
use std::time::Instant;

/// CLOSIDs usable for tenant groups (the real fake tree keeps one for
/// the default group; the model pool is already net of that).
const POOL: usize = 2;

#[derive(Clone, Debug)]
struct TenantModel {
    /// CLOSID pool: `true` = allocated.
    closids: [bool; POOL],
    /// Group table: (group name, closid it owns).
    groups: Vec<(String, usize)>,
    /// Desired tenant groups (reconciler input, churned concurrently).
    desired: Vec<String>,
    /// Groups accounted as degraded onto the shared class mask.
    fallback: Vec<String>,
    /// Supervisor breaker: reconciler must stand down while set.
    degraded: bool,
    /// First double-free observed, if any (the invariant killer).
    double_free: Option<String>,
}

impl TenantModel {
    fn alloc(&mut self) -> Option<usize> {
        let free = self.closids.iter().position(|&used| !used)?;
        self.closids[free] = true;
        Some(free)
    }

    fn release(&mut self, closid: usize, group: &str) {
        if !self.closids[closid] {
            self.double_free
                .get_or_insert_with(|| format!("CLOSID {closid} freed twice (last by {group})"));
            return;
        }
        self.closids[closid] = false;
    }

    /// One sweep step: drop every group no longer desired, returning
    /// its CLOSID to the pool. Mirrors `Reconciler`'s orphan pass.
    fn sweep(&mut self) {
        if self.degraded {
            return;
        }
        // A departed tenant's fallback accounting goes with its groups
        // (the real reconciler rebuilds its state map from `desired`).
        let desired = self.desired.clone();
        self.fallback.retain(|f| desired.contains(f));
        let mut kept = Vec::new();
        for (name, closid) in std::mem::take(&mut self.groups) {
            if self.desired.contains(&name) {
                kept.push((name, closid));
            } else {
                self.release(closid, &name);
                self.fallback.retain(|f| f != &name);
            }
        }
        self.groups = kept;
    }

    /// One reconcile step for `name`: satisfy it from the pool, or
    /// account it as fallback when the pool is exhausted — never drop
    /// it on the floor. Mirrors `Reconciler::reconcile` per group.
    fn reconcile_one(&mut self, name: &str) {
        if self.degraded || !self.desired.iter().any(|d| d == name) {
            return;
        }
        if self.groups.iter().any(|(g, _)| g == name) {
            self.fallback.retain(|f| f != name);
            return;
        }
        match self.alloc() {
            Some(closid) => {
                self.groups.push((name.to_string(), closid));
                self.fallback.retain(|f| f != name);
            }
            None => {
                if !self.fallback.iter().any(|f| f == name) {
                    self.fallback.push(name.to_string());
                }
            }
        }
    }

    /// Structural consistency that must hold at *every* step, not just
    /// at quiescence: the CLOSID ledger and the group table agree.
    fn check_ledger(&self) -> Result<(), String> {
        if let Some(df) = &self.double_free {
            return Err(df.clone());
        }
        for (i, (name, closid)) in self.groups.iter().enumerate() {
            if !self.closids[*closid] {
                return Err(format!("{name} owns CLOSID {closid} marked free"));
            }
            if self.groups[i + 1..].iter().any(|(_, c)| c == closid) {
                return Err(format!("CLOSID {closid} aliased by two groups"));
            }
            if self.fallback.contains(name) {
                return Err(format!("{name} is both satisfied and fallback"));
            }
        }
        Ok(())
    }
}

fn group(tenant: &str) -> String {
    TenantId::parse(tenant)
        .expect("model tenants are valid ids")
        .group_name("polluting")
}

/// Builds the model: the reconciler runs two full passes (sweep +
/// per-tenant reconcile), the supervisor trips/heals the breaker, the
/// churn actor removes tenant `b` from the desired set and (optionally)
/// re-adds it, and the reader checks the ledger from the bind path.
fn build(
    trip: bool,
    heal: bool,
    readd: bool,
) -> impl Fn() -> (TenantModel, Vec<Actor<TenantModel>>) {
    move || {
        let (a, b) = (group("acme"), group("blue"));
        let orphan = group("stale");
        let mut state = TenantModel {
            closids: [false; POOL],
            groups: Vec::new(),
            desired: vec![a.clone(), b.clone()],
            fallback: Vec::new(),
            degraded: false,
            double_free: None,
        };
        // A leftover group from a crashed predecessor holds a CLOSID at
        // boot — the sweep must reclaim it before the pool can satisfy
        // both live tenants.
        let stale_closid = state.alloc().expect("empty pool at boot");
        state.groups.push((orphan, stale_closid));

        let mut reconciler = Actor::new("reconciler");
        for _pass in 0..2 {
            reconciler = reconciler.then_accessing(
                TenantModel::sweep,
                &[
                    Access::Read("breaker"),
                    Access::Read("desired"),
                    Access::Write("table"),
                ],
            );
            for name in [a.clone(), b.clone()] {
                reconciler = reconciler.then_accessing(
                    move |s: &mut TenantModel| s.reconcile_one(&name),
                    &[
                        Access::Read("breaker"),
                        Access::Read("desired"),
                        Access::Write("table"),
                    ],
                );
            }
        }

        let supervisor = Actor::new("supervisor")
            .then_accessing(
                move |s: &mut TenantModel| {
                    if trip {
                        s.degraded = true;
                    }
                },
                &[Access::Write("breaker")],
            )
            .then_accessing(
                move |s: &mut TenantModel| {
                    if heal {
                        s.degraded = false;
                    }
                },
                &[Access::Write("breaker")],
            );

        let churn_b = b.clone();
        let readd_b = b.clone();
        let churn = Actor::new("churn")
            .then_accessing(
                move |s: &mut TenantModel| s.desired.retain(|d| d != &churn_b),
                &[Access::Write("desired")],
            )
            .then_accessing(
                move |s: &mut TenantModel| {
                    if readd && !s.desired.contains(&readd_b) {
                        s.desired.push(readd_b.clone());
                    }
                },
                &[Access::Write("desired")],
            );

        let reader = Actor::new("reader").then_accessing(
            |s: &mut TenantModel| {
                if let Err(e) = s.check_ledger() {
                    panic!("bind-path read saw a torn ledger: {e}");
                }
            },
            &[Access::Read("table")],
        );

        (state, vec![reconciler, supervisor, churn, reader])
    }
}

fn check_step(s: &TenantModel) -> Result<(), String> {
    s.check_ledger()
}

/// Quiescent convergence: the reconciler's *next* pass after all actors
/// stop (the loop never exits in the real system). After it, every
/// desired group is satisfied or fallback, nothing undesired survives,
/// and with the breaker clear the pool is large enough that fallback
/// only appears while a stale CLOSID is still reclaimable — which the
/// pass just did, so fallback must be empty.
fn check_final(s: &mut TenantModel) -> Result<(), String> {
    let desired = s.desired.clone();
    if !s.degraded {
        s.sweep();
        for name in desired.clone() {
            s.reconcile_one(&name);
        }
    }
    s.check_ledger()?;
    if s.degraded {
        // Static shared masks cover every tenant while degraded; only
        // the ledger has to stay sound.
        return Ok(());
    }
    for name in &desired {
        let satisfied = s.groups.iter().any(|(g, _)| g == name);
        let fallback = s.fallback.contains(name);
        if !satisfied && !fallback {
            return Err(format!("{name} stranded: neither satisfied nor fallback"));
        }
    }
    for (name, _) in &s.groups {
        if !desired.contains(name) {
            return Err(format!("leaked group {name} survived the sweep"));
        }
    }
    // Two desired groups, two CLOSIDs, orphan reclaimed: fallback means
    // the reconciler failed to use capacity it provably had.
    if !s.fallback.is_empty() {
        return Err(format!("fallback with free capacity: {:?}", s.fallback));
    }
    Ok(())
}

fn explore_case(trip: bool, heal: bool, readd: bool) -> ccp_verify::Report {
    let report = explore(
        Mode::Dpor {
            max_schedules: 500_000,
        },
        build(trip, heal, readd),
        check_step,
        check_final,
    )
    .unwrap_or_else(|v| panic!("trip={trip} heal={heal} readd={readd}: {v}"));
    assert!(report.exhausted, "interleaving space not fully covered");
    report
}

#[test]
fn reconciler_churn_and_reader_never_tear_the_ledger() {
    let start = Instant::now();
    let report = explore_case(false, false, true);
    // 6 reconciler + 2 supervisor + 2 churn + 1 reader steps: the
    // multinomial space is ≫ 1k; DPOR must buy a real reduction.
    assert!(
        report.interleavings > 1_000,
        "space too small to be meaningful: {}",
        report.interleavings
    );
    assert!(
        report.reduction_ratio() >= 2.0,
        "DPOR reduction collapsed: {:.1}x over {} interleavings",
        report.reduction_ratio(),
        report.interleavings
    );
    ccp_verify::emit_stats("tenant_lifecycle/churn", "dpor", &report, start.elapsed());
}

#[test]
fn breaker_trip_at_any_point_leaves_no_tenant_stranded() {
    let start = Instant::now();
    let report = explore_case(true, false, false);
    ccp_verify::emit_stats(
        "tenant_lifecycle/degraded",
        "dpor",
        &report,
        start.elapsed(),
    );
}

#[test]
fn trip_then_heal_converges_with_orphans_reclaimed() {
    let start = Instant::now();
    let report = explore_case(true, true, true);
    ccp_verify::emit_stats("tenant_lifecycle/heal", "dpor", &report, start.elapsed());
}

#[test]
fn tenant_removal_without_return_frees_its_closid() {
    let report = explore_case(false, false, false);
    assert!(report.traces_explored >= 1);
}
