//! Model checks for the observability lifecycles added with the fault
//! work: the [`ccp_resctrl::OccupancySampler`] start/sample/stop path
//! and [`ccp_server::ScrapeServer`] shutdown.
//!
//! Both run real background threads, so the explorer interleaves the
//! *control* operations — waiting for samples, stopping, double-stopping,
//! dropping, publishing, scraping — and the invariants say the
//! lifecycles are order-independent: stop is idempotent, a joined
//! sampler's last publish is never lost (the gauge equals the final
//! probe reading), nothing samples after the join, and a scrape server
//! going down can neither lose a registry publish nor serve a torn
//! scrape.

use ccp_obs::{Counter, Registry};
use ccp_resctrl::{ClassSample, OccupancyProbe, OccupancySampler};
use ccp_server::{fetch, ScrapeServer};
use ccp_verify::{explore, Actor, Mode};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic probe: the k-th sample reports `k * 100` occupancy
/// bytes, so the published gauge encodes exactly which sample it came
/// from.
struct CountingProbe {
    n: Arc<AtomicU64>,
}

impl OccupancyProbe for CountingProbe {
    fn sample(&mut self) -> Vec<ClassSample> {
        let k = self.n.fetch_add(1, Ordering::SeqCst) + 1;
        vec![ClassSample {
            class: "polluting".to_string(),
            llc_occupancy_bytes: k * 100,
            mbm_total_bytes: k,
        }]
    }
}

struct SamplerModel {
    registry: Registry,
    sampler: Option<OccupancySampler>,
    samples: Arc<AtomicU64>,
}

#[test]
fn sampler_stop_is_idempotent_and_never_loses_the_final_publish() {
    let build = || {
        let registry = Registry::new();
        let samples = Arc::new(AtomicU64::new(0));
        let sampler = OccupancySampler::start(
            Box::new(CountingProbe {
                n: Arc::clone(&samples),
            }),
            &registry,
            Duration::from_millis(1),
        )
        .expect("sampler start");
        let state = SamplerModel {
            registry,
            sampler: Some(sampler),
            samples,
        };
        // The sampler loop samples once before its first stop check, so
        // a waiter for >= 1 sample terminates under every interleaving,
        // even "stop immediately".
        // UNANNOTATED: steps drive a real background thread; their
        // effects are not captured by a declarable read/write set, so
        // every step must stay mutually dependent (exhaustive mode).
        let waiter = Actor::new("waiter").then(|s: &mut SamplerModel| {
            while s.samples.load(Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        // Two stop calls on the same handle: stop must be idempotent.
        let stop_step = |s: &mut SamplerModel| {
            if let Some(sampler) = s.sampler.as_mut() {
                sampler.stop();
            }
        };
        // UNANNOTATED: stop/drop join a real thread — not modelable.
        let stopper = Actor::new("stopper").then(stop_step).then(stop_step);
        // Dropping is the third way down (Drop also stops).
        // UNANNOTATED: see above — real thread join.
        let dropper = Actor::new("dropper").then(|s: &mut SamplerModel| {
            s.sampler.take();
        });
        (state, vec![waiter, stopper, dropper])
    };
    let check_final = |s: &mut SamplerModel| {
        if s.sampler.is_some() {
            return Err("dropper ran, yet the sampler handle survived".to_string());
        }
        let n = s.samples.load(Ordering::SeqCst);
        if n == 0 {
            return Err("sampler thread never sampled before stopping".to_string());
        }
        // The thread is joined: nothing may sample any more.
        std::thread::sleep(Duration::from_millis(5));
        let after = s.samples.load(Ordering::SeqCst);
        if after != n {
            return Err(format!("sampling continued after stop: {n} -> {after}"));
        }
        // The final publish was not lost: the gauge holds exactly the
        // last probe reading (publish happens before the loop's stop
        // check, and stop joins).
        let gauge = s
            .registry
            .gauge_family("ccp_llc_occupancy_bytes", "")
            .get_or_create(&[("class", "polluting")])
            .get();
        if gauge != (n * 100) as f64 {
            return Err(format!(
                "gauge {gauge} does not match the last sample ({} expected from {n} samples)",
                n * 100
            ));
        }
        Ok(())
    };
    let report = explore(
        Mode::Exhaustive {
            max_schedules: 1_000,
        },
        build,
        |_| Ok(()),
        check_final,
    )
    .expect("sampler lifecycle must be order-independent");
    assert!(report.exhausted);
    // waiter(1) + stopper(2) + dropper(1): 4!/(1!·2!·1!) = 12 orders.
    assert_eq!(report.schedules, 12);
}

struct ScrapeModel {
    registry: Registry,
    hits: Counter,
    server: Option<ScrapeServer>,
    addr: SocketAddr,
    scraped: Option<String>,
}

#[test]
fn scrape_server_shutdown_loses_no_publish_and_tolerates_double_stop() {
    let build = || {
        let registry = Registry::new();
        let hits = registry
            .counter_family("model_final_publish_total", "model publishes")
            .get_or_create(&[]);
        let server = ScrapeServer::start(&registry, "127.0.0.1:0").expect("scrape server");
        let addr = server.addr();
        let state = ScrapeModel {
            registry,
            hits,
            server: Some(server),
            addr,
            scraped: None,
        };
        // Publishes racing the shutdown: the registry outlives the
        // server, so none may be lost whichever side wins.
        let publish = |s: &mut ScrapeModel| {
            s.hits.inc();
        };
        // UNANNOTATED: these steps race a live TCP server thread; their
        // interactions are not a declarable read/write set, so the
        // harness stays exhaustive with default conflicts-with-all.
        let publisher = Actor::new("publisher").then(publish).then(publish);
        // UNANNOTATED: see above — live server thread.
        let scraper = Actor::new("scraper").then(|s: &mut ScrapeModel| {
            // Succeeds before shutdown, fails cleanly after — both fine;
            // a *torn* success is the bug this hunts.
            if let Ok(resp) = fetch(s.addr, "GET", "/metrics", None) {
                s.scraped = Some(resp.body);
            }
        });
        let stop_step = |s: &mut ScrapeModel| {
            if let Some(server) = s.server.as_mut() {
                server.shutdown();
            }
        };
        // UNANNOTATED: see above — live server thread.
        let stopper = Actor::new("stopper").then(stop_step).then(stop_step);
        (state, vec![publisher, scraper, stopper])
    };
    let check_final = |s: &mut ScrapeModel| {
        // Third shutdown via Drop.
        s.server.take();
        if s.hits.get() != 2 {
            return Err(format!("{} of 2 publishes survived", s.hits.get()));
        }
        let rendered = s.registry.render_prometheus();
        if !rendered.contains("model_final_publish_total 2") {
            return Err(format!(
                "final publish missing from the registry render: {rendered:?}"
            ));
        }
        if let Some(body) = &s.scraped {
            if !body.contains("model_final_publish_total") {
                return Err(format!("successful scrape was torn: {body:?}"));
            }
        }
        Ok(())
    };
    let report = explore(
        Mode::Exhaustive {
            max_schedules: 1_000,
        },
        build,
        |_| Ok(()),
        check_final,
    )
    .expect("scrape-server shutdown must be order-independent");
    assert!(report.exhausted);
    // publisher(2) + scraper(1) + stopper(2): 5!/(2!·1!·2!) = 30 orders.
    assert_eq!(report.schedules, 30);
}
