//! Differential tests: on seeded-bug fixtures, [`Mode::Dpor`] and
//! [`Mode::Exhaustive`] must agree — both find a violation on the buggy
//! variant, both exhaust the clean variant cleanly, and any DPOR-found
//! witness schedule replays to the identical violation. This is the
//! soundness contract of the reduction: pruning interleavings may never
//! prune a bug.
//!
//! The fixtures reproduce the two real bugs this repo's harnesses have
//! caught: the PR-3 `/trace?clear=1` snapshot-vs-clear race (via the
//! real [`ccp_trace::SpanRing`] with the guard reverted) and the PR-4
//! recycle drop-accounting double-count (as a model, since the shipped
//! ring carries the `i - cap >= cleared_upto` fix), plus the classic
//! two-step lost update as a baseline.

use ccp_trace::{SpanRing, TraceCat};
use ccp_verify::{explore, replay, Access, Actor, Mode, Violation};
use std::collections::BTreeSet;

const BUDGET: usize = 200_000;

/// Run one fixture under both modes and check the differential
/// contract. `needle` must appear in every violation message so we know
/// both modes found the *same bug*, not merely *a* bug.
fn assert_modes_agree<S>(
    label: &str,
    build: impl Fn() -> (S, Vec<Actor<S>>),
    check_step: impl Fn(&S) -> Result<(), String>,
    check_final: impl Fn(&mut S) -> Result<(), String>,
    needle: Option<&str>,
) {
    let exhaustive = explore(
        Mode::Exhaustive {
            max_schedules: BUDGET,
        },
        &build,
        &check_step,
        &check_final,
    );
    let dpor = explore(
        Mode::Dpor {
            max_schedules: BUDGET,
        },
        &build,
        &check_step,
        &check_final,
    );
    match needle {
        Some(needle) => {
            let ev = exhaustive.expect_err(&format!("{label}: exhaustive must find the bug"));
            let dv = dpor.expect_err(&format!("{label}: DPOR must find the bug"));
            for (mode, v) in [("exhaustive", &ev), ("dpor", &dv)] {
                assert!(
                    v.message.contains(needle),
                    "{label}/{mode} found a different bug: {v}"
                );
            }
            // The DPOR witness replays mode-independently to the same
            // violation — replay() has no notion of the finding mode.
            let replayed = replay(&dv.schedule, &build, &check_step, &check_final)
                .expect_err(&format!("{label}: DPOR witness must reproduce"));
            assert_eq!(replayed.message, dv.message, "{label}: replay diverged");
            let replayed = replay(&ev.schedule, &build, &check_step, &check_final)
                .expect_err(&format!("{label}: exhaustive witness must reproduce"));
            assert_eq!(replayed.message, ev.message, "{label}: replay diverged");
        }
        None => {
            let er = exhaustive.unwrap_or_else(|v: Violation| {
                panic!("{label}: exhaustive flagged the clean fixture: {v}")
            });
            let dr =
                dpor.unwrap_or_else(|v| panic!("{label}: DPOR flagged the clean fixture: {v}"));
            assert!(er.exhausted, "{label}: exhaustive did not close the space");
            assert!(dr.exhausted, "{label}: DPOR did not close the space");
            assert_eq!(
                er.interleavings, dr.interleavings,
                "{label}: modes disagree on the space size"
            );
            assert!(
                dr.schedules <= er.schedules,
                "{label}: DPOR ran more schedules ({}) than exhaustive ({})",
                dr.schedules,
                er.schedules
            );
        }
    }
}

// ---------------------------------------------------------------------
// Fixture 1: the classic lost update (baseline).
// ---------------------------------------------------------------------

struct Counter {
    val: u64,
    tmp: [u64; 2],
}

/// Two actors read-modify-write a counter. `racy` splits the RMW into
/// two steps (the bug); the clean variant does it atomically in one.
fn counter_build(racy: bool) -> impl Fn() -> (Counter, Vec<Actor<Counter>>) {
    move || {
        let state = Counter {
            val: 0,
            tmp: [0, 0],
        };
        let actors = (0..2)
            .map(|i| {
                let a = Actor::new(format!("inc-{i}"));
                if racy {
                    a.then_accessing(
                        move |s: &mut Counter| s.tmp[i] = s.val,
                        &[Access::Read("val")],
                    )
                    .then_accessing(
                        move |s: &mut Counter| s.val = s.tmp[i] + 1,
                        &[Access::Write("val")],
                    )
                } else {
                    a.then_accessing(|s: &mut Counter| s.val += 1, &[Access::AcqRel("val")])
                }
            })
            .collect();
        (state, actors)
    }
}

fn counter_final(s: &mut Counter) -> Result<(), String> {
    if s.val == 2 {
        Ok(())
    } else {
        Err(format!("lost update: val={}", s.val))
    }
}

#[test]
fn lost_update_found_by_both_modes_and_clean_variant_passes_both() {
    assert_modes_agree(
        "lost-update/buggy",
        counter_build(true),
        |_| Ok(()),
        counter_final,
        Some("lost update"),
    );
    assert_modes_agree(
        "lost-update/clean",
        counter_build(false),
        |_| Ok(()),
        counter_final,
        None,
    );
}

// ---------------------------------------------------------------------
// Fixture 2: the PR-3 snapshot-vs-clear race, on the real SpanRing.
// ---------------------------------------------------------------------

struct RingModel {
    ring: SpanRing,
    pushed: u64,
    observed: BTreeSet<u64>,
    snapshot_head: u64,
}

/// One writer, one snapshot-then-clear reader. `guarded` selects the
/// shipped `clear_to(observed_head)` fix; the buggy variant reverts to
/// the unconditional `clear()` that lost records pushed between the
/// snapshot and the clear.
fn pr3_build(guarded: bool) -> impl Fn() -> (RingModel, Vec<Actor<RingModel>>) {
    move || {
        let state = RingModel {
            ring: SpanRing::new(8),
            pushed: 0,
            observed: BTreeSet::new(),
            snapshot_head: 0,
        };
        let mut writer = Actor::new("writer");
        for _ in 0..3 {
            writer = writer.then_accessing(
                |s: &mut RingModel| {
                    s.ring.push_instant(s.pushed, TraceCat::Op, s.pushed, "w");
                    s.pushed += 1;
                },
                &[Access::Write("ring")],
            );
        }
        let reader = Actor::new("reader")
            .then_accessing(
                |s: &mut RingModel| {
                    let mut buf = Vec::new();
                    s.snapshot_head = s.ring.collect(&mut buf);
                    s.observed.extend(buf.iter().map(|r| r.id));
                },
                &[Access::Read("ring")],
            )
            .then_accessing(
                move |s: &mut RingModel| {
                    if guarded {
                        s.ring.clear_to(s.snapshot_head);
                    } else {
                        s.ring.clear();
                    }
                },
                &[Access::Write("ring")],
            );
        (state, vec![writer, reader])
    }
}

fn pr3_final(s: &mut RingModel) -> Result<(), String> {
    let mut buf = Vec::new();
    s.ring.collect(&mut buf);
    s.observed.extend(buf.iter().map(|r| r.id));
    let missing: Vec<u64> = (0..s.pushed)
        .filter(|id| !s.observed.contains(id))
        .collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("records never observed: {missing:?}"))
    }
}

#[test]
fn pr3_clear_race_found_by_both_modes_and_fix_passes_both() {
    assert_modes_agree(
        "pr3/buggy",
        pr3_build(false),
        |_| Ok(()),
        pr3_final,
        Some("never observed"),
    );
    assert_modes_agree("pr3/fixed", pr3_build(true), |_| Ok(()), pr3_final, None);
}

// ---------------------------------------------------------------------
// Fixture 3: the PR-4 recycle drop-accounting double-count, as a model.
// ---------------------------------------------------------------------

/// Miniature of the span ring's drop accounting. The shipped
/// `SpanRing::recycle` carries the `i - cap >= cleared_upto` guard, so
/// the bug is reproduced here in model form: `recycle()` counts every
/// still-visible record as dropped, and a wrapping push counts its
/// victim — the bug was counting victims that recycle had *already*
/// counted, inflating `dropped` past conservation.
struct MiniRing {
    cap: u64,
    head: u64,
    cleared_upto: u64,
    dropped: u64,
    buggy: bool,
}

impl MiniRing {
    fn push(&mut self) {
        if self.head >= self.cap {
            let victim = self.head - self.cap;
            if victim >= self.cleared_upto || self.buggy {
                self.dropped += 1;
            }
        }
        self.head += 1;
    }

    fn recycle(&mut self) {
        let oldest_live = self.cleared_upto.max(self.head.saturating_sub(self.cap));
        self.dropped += self.head - oldest_live;
        self.cleared_upto = self.head;
    }

    fn visible(&self) -> u64 {
        self.head - self.cleared_upto.max(self.head.saturating_sub(self.cap))
    }
}

fn pr4_build(buggy: bool) -> impl Fn() -> (MiniRing, Vec<Actor<MiniRing>>) {
    move || {
        let state = MiniRing {
            cap: 4,
            head: 0,
            cleared_upto: 0,
            dropped: 0,
            buggy,
        };
        // 6 pushes into 4 slots wrap twice; one recycle lands anywhere
        // among them. The double count needs a wrap *after* the recycle
        // has hidden the victim — only some interleavings trigger it,
        // which is exactly what makes it a race.
        let mut writer = Actor::new("writer");
        for _ in 0..6 {
            writer = writer.then_accessing(|s: &mut MiniRing| s.push(), &[Access::Write("ring")]);
        }
        let recycler = Actor::new("recycler")
            .then_accessing(|s: &mut MiniRing| s.recycle(), &[Access::Write("ring")]);
        (state, vec![writer, recycler])
    }
}

fn pr4_final(s: &mut MiniRing) -> Result<(), String> {
    if s.visible() + s.dropped == s.head {
        Ok(())
    } else {
        Err(format!(
            "drop accounting broke conservation: visible {} + dropped {} != pushed {}",
            s.visible(),
            s.dropped,
            s.head
        ))
    }
}

#[test]
fn pr4_drop_double_count_found_by_both_modes_and_fix_passes_both() {
    assert_modes_agree(
        "pr4/buggy",
        pr4_build(true),
        |_| Ok(()),
        pr4_final,
        Some("conservation"),
    );
    assert_modes_agree("pr4/fixed", pr4_build(false), |_| Ok(()), pr4_final, None);
}
