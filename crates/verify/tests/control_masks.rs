//! Model-checks the adaptive controller's mask publication against the
//! supervisor's degradation breaker and concurrent bind-time readers.
//!
//! The real system publishes a repartition one class entry at a time
//! ([`ccp_engine::LiveMasks`] stores are independent atomics), while the
//! supervisor may trip resctrl health at any point and workers keep
//! binding jobs throughout. The invariant under *every* interleaving:
//! no class entry is ever empty, non-contiguous, or wider than the
//! cache, and the run always settles on a *complete* plan — the full
//! adaptive plan (with the polluter exclusively confined) or the full
//! static plan — never a torn mixture.

use ccp_cachesim::{HierarchyConfig, WayMask};
use ccp_control::{derive_masks, ClassTargets, MaskPlan};
use ccp_engine::{CacheUsageClass, LiveMasks, PartitionPolicy};
use ccp_verify::{explore, Access, Actor, Mode};
use std::sync::Arc;
use std::time::Instant;

const WAYS: u32 = 20;

struct ControlModel {
    policy: PartitionPolicy,
    live: Arc<LiveMasks>,
    adaptive: MaskPlan,
    static_plan: MaskPlan,
    /// Supervisor breaker: set when resctrl health trips mid-run.
    degraded: bool,
    /// Controller observed a failure (apply fault or degraded health)
    /// and reverted the whole table to the static plan.
    reverted: bool,
}

impl ControlModel {
    fn live_entry(&self, idx: usize) -> u32 {
        match idx {
            0 => self.live.polluting_bits(),
            1 => self.live.mixed_bits(),
            _ => self.live.sensitive_bits(),
        }
    }

    /// Publishes class entry `idx` of the adaptive plan, leaving the
    /// other two entries untouched — exactly the per-class store
    /// granularity of `LiveMasks::set_masks`.
    fn publish_class(&self, idx: usize) {
        let pick = |i: usize| {
            if i == idx {
                match i {
                    0 => self.adaptive.polluting,
                    1 => self.adaptive.mixed,
                    _ => self.adaptive.sensitive,
                }
            } else {
                WayMask::new(self.live_entry(i)).expect("live entry stays valid")
            }
        };
        self.live.set_masks(pick(0), pick(1), pick(2));
    }

    fn revert(&mut self) {
        self.live.reset_to(&self.policy);
        self.reverted = true;
    }
}

fn paper_policy() -> PartitionPolicy {
    let cfg = HierarchyConfig::broadwell_e5_2699_v4();
    PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes)
}

fn static_plan(policy: &PartitionPolicy) -> MaskPlan {
    MaskPlan::new(
        policy.mask_for(CacheUsageClass::Polluting),
        policy.mask_for(CacheUsageClass::Mixed {
            hot_bytes: policy.llc.size_bytes,
        }),
        policy.mask_for(CacheUsageClass::Sensitive),
    )
}

/// Builds the model: a controller applying a shrink repartition one
/// class per step (failing at step `fail_at`, if any), a supervisor
/// that trips the health breaker at an arbitrary point, and a worker
/// reading bind-time masks throughout.
fn build(
    fail_at: Option<usize>,
    trip_health: bool,
) -> impl Fn() -> (ControlModel, Vec<Actor<ControlModel>>) {
    move || {
        let policy = paper_policy();
        let live = Arc::new(LiveMasks::from_policy(&policy));
        // The canonical "sensitive shrinks" repartition.
        let adaptive = derive_masks(
            &ClassTargets {
                polluting: 2,
                mixed: 3,
                sensitive: 4,
            },
            WAYS,
            2,
        );
        let state = ControlModel {
            static_plan: static_plan(&policy),
            policy,
            live,
            adaptive,
            degraded: false,
            reverted: false,
        };

        let mut controller = Actor::new("controller");
        for idx in 0..3 {
            // Each apply reads the breaker and rewrites the whole live
            // table (publish_class re-stores the untouched entries too).
            controller = controller.then_accessing(
                move |s: &mut ControlModel| {
                    if s.reverted {
                        return; // gave up earlier; remaining applies are no-ops
                    }
                    if s.degraded || fail_at == Some(idx) {
                        // Degraded health observed mid-apply, or the
                        // schemata write faulted: abort and revert whole.
                        s.revert();
                        return;
                    }
                    s.publish_class(idx);
                },
                &[Access::Read("breaker"), Access::Write("masks")],
            );
        }
        // The next control tick: a clamp check after the applies. This
        // is where a breaker that tripped *after* the last apply gets
        // observed.
        controller = controller.then_accessing(
            |s: &mut ControlModel| {
                if s.degraded && !s.reverted {
                    s.revert();
                }
            },
            &[Access::Read("breaker"), Access::Write("masks")],
        );

        let supervisor = Actor::new("supervisor").then_accessing(
            move |s: &mut ControlModel| {
                if trip_health {
                    s.degraded = true;
                }
            },
            &[Access::Write("breaker")],
        );

        // A worker binding jobs mid-repartition: every read must be a
        // valid mask no matter where the publishes stand.
        let mut worker = Actor::new("worker");
        for cuid in [
            CacheUsageClass::Sensitive,
            CacheUsageClass::Mixed {
                hot_bytes: 12_500_000,
            },
            CacheUsageClass::Polluting,
        ] {
            worker = worker.then_accessing(
                move |s: &mut ControlModel| {
                    let m = s.live.mask_for(cuid, &s.policy);
                    assert!(m.way_count() >= 1, "bind read an empty mask for {cuid:?}");
                    assert!(m.check_fits(WAYS).is_ok());
                },
                &[Access::Read("masks")],
            );
        }

        (state, vec![controller, supervisor, worker])
    }
}

fn check_step(s: &ControlModel) -> Result<(), String> {
    for (idx, name) in [(0, "polluting"), (1, "mixed"), (2, "sensitive")] {
        let bits = s.live_entry(idx);
        let mask = WayMask::new(bits)
            .map_err(|e| format!("{name} entry 0x{bits:x} invalid mid-run: {e}"))?;
        mask.check_fits(WAYS)
            .map_err(|e| format!("{name} entry {mask} exceeds the cache: {e}"))?;
    }
    Ok(())
}

fn check_final(s: &mut ControlModel) -> Result<(), String> {
    let settled = MaskPlan::new(
        WayMask::new(s.live.polluting_bits()).map_err(|e| format!("final polluting: {e}"))?,
        WayMask::new(s.live.mixed_bits()).map_err(|e| format!("final mixed: {e}"))?,
        WayMask::new(s.live.sensitive_bits()).map_err(|e| format!("final sensitive: {e}"))?,
    );
    if s.reverted {
        if settled != s.static_plan {
            return Err(format!(
                "reverted run did not settle on the static plan: {settled:?}"
            ));
        }
        return Ok(());
    }
    if settled == s.adaptive {
        if !settled.polluter_isolated() {
            return Err(format!(
                "adaptive plan leaves the polluter shared: {settled:?}"
            ));
        }
        return Ok(());
    }
    Err(format!(
        "torn final table (neither static nor adaptive): {settled:?}"
    ))
}

fn explore_case(fail_at: Option<usize>, trip_health: bool) -> ccp_verify::Report {
    let report = explore(
        Mode::Exhaustive {
            max_schedules: 100_000,
        },
        build(fail_at, trip_health),
        check_step,
        check_final,
    )
    .unwrap_or_else(|v| panic!("fail_at={fail_at:?} trip_health={trip_health}: {v}"));
    assert!(report.exhausted, "interleaving space not fully covered");
    report
}

#[test]
fn clean_repartitions_never_tear_under_any_interleaving() {
    let start = Instant::now();
    let report = explore_case(None, false);
    ccp_verify::emit_stats(
        "control_masks/clean",
        "exhaustive",
        &report,
        start.elapsed(),
    );
}

#[test]
fn supervisor_degradation_at_any_point_settles_on_a_complete_plan() {
    explore_case(None, true);
}

#[test]
fn apply_faults_at_every_class_revert_to_static() {
    for fail_at in [0, 1, 2] {
        explore_case(Some(fail_at), false);
    }
}

#[test]
fn faults_and_degradation_together_still_settle_cleanly() {
    for fail_at in [0, 1, 2] {
        explore_case(Some(fail_at), true);
    }
}
