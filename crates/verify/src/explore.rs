//! The controlled scheduler: actors, access-annotated steps, schedules,
//! exhaustive and random exploration, and deterministic replay. The
//! partial-order-reduced explorer lives in `dpor.rs`; this module owns
//! the shared vocabulary (actors, modes, reports, violations) and the
//! brute-force drivers.

use crate::rng::SplitMix64;
use std::collections::{HashSet, VecDeque};

/// One boxed step of an actor (the unit of atomicity under exploration).
type Step<S> = Box<dyn FnMut(&mut S)>;

/// What one step may touch, for the dependency relation the DPOR mode
/// reduces by. Objects are named by `&'static str` labels chosen by the
/// harness; two steps *conflict* when they touch the same object and at
/// least one of the touches is a [`Access::Write`] or [`Access::AcqRel`].
/// Two [`Access::Read`]s of the same object commute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// The step observes the object without mutating it.
    Read(&'static str),
    /// The step mutates the object.
    Write(&'static str),
    /// The step is a read-modify-write (CAS, fetch-add, lock acquire):
    /// conflicts exactly like a write, the name records the intent.
    AcqRel(&'static str),
}

impl Access {
    /// The object label this access touches.
    pub fn object(&self) -> &'static str {
        match self {
            Access::Read(o) | Access::Write(o) | Access::AcqRel(o) => o,
        }
    }

    /// Whether the access mutates the object (writes and RMWs do).
    pub fn is_write(&self) -> bool {
        !matches!(self, Access::Read(_))
    }
}

/// The access metadata carried by one step. Steps added with
/// [`Actor::then`] carry [`StepAccess::Conflicting`] — they are assumed
/// to touch everything, which keeps unannotated harnesses sound (DPOR
/// degenerates to brute force) at the cost of zero reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum StepAccess {
    /// No annotation: conflicts with every other step.
    Conflicting,
    /// Annotated: conflicts only via overlapping objects.
    Annotated(Vec<Access>),
}

impl StepAccess {
    /// Whether two steps' access sets conflict (are *dependent* when the
    /// steps belong to different actors).
    pub(crate) fn conflicts(&self, other: &StepAccess) -> bool {
        match (self, other) {
            (StepAccess::Conflicting, _) | (_, StepAccess::Conflicting) => true,
            (StepAccess::Annotated(a), StepAccess::Annotated(b)) => a.iter().any(|x| {
                b.iter()
                    .any(|y| x.object() == y.object() && (x.is_write() || y.is_write()))
            }),
        }
    }
}

/// One step plus its access annotation.
pub(crate) struct StepEntry<S> {
    pub(crate) run: Step<S>,
    pub(crate) access: StepAccess,
}

/// The scheduling oracle `run_one` consults at each decision: what to do
/// given the decision depth, the (ascending) runnable actor indices and
/// a view of the state.
enum Choice {
    /// Advance this absolute actor index.
    Pick(usize),
    /// Stop the run here without a final check (fingerprint prune).
    Stop,
    /// Abort the run as a violation.
    Fail(String),
}

type Decider<'d, S> = &'d mut dyn FnMut(usize, &[usize], &S) -> Choice;

/// One logical thread of a concurrent test case: a named, fixed sequence
/// of steps over the shared state `S`. The explorer advances exactly one
/// actor per scheduling decision, so steps are the preemption points —
/// everything inside a single step is atomic with respect to the
/// explored interleavings.
pub struct Actor<S> {
    name: String,
    steps: VecDeque<StepEntry<S>>,
}

impl<S> Actor<S> {
    /// Creates an empty actor. Add steps with [`then`](Actor::then) or
    /// [`then_accessing`](Actor::then_accessing).
    pub fn new(name: impl Into<String>) -> Actor<S> {
        Actor {
            name: name.into(),
            steps: VecDeque::new(),
        }
    }

    /// Appends one unannotated step. Steps run in the order they were
    /// added; actor-local state flows between them through captures or
    /// through `S`. Under [`Mode::Dpor`] an unannotated step is treated
    /// as conflicting with every other step — sound, but it erases the
    /// reduction; prefer [`then_accessing`](Actor::then_accessing) for
    /// harnesses that want DPOR to bite.
    pub fn then(mut self, f: impl FnMut(&mut S) + 'static) -> Actor<S> {
        self.steps.push_back(StepEntry {
            run: Box::new(f),
            access: StepAccess::Conflicting,
        });
        self
    }

    /// Appends one step annotated with the objects it touches. The
    /// annotation is a *claim*: it must cover every piece of shared
    /// state the step reads or writes **including what any invariant
    /// observes through it** — DPOR only explores one order of two
    /// non-conflicting steps, so an under-annotated step can hide a
    /// schedule a violation lives in. When in doubt, use
    /// [`then`](Actor::then) (conflicts with everything).
    pub fn then_accessing(
        mut self,
        f: impl FnMut(&mut S) + 'static,
        accesses: &[Access],
    ) -> Actor<S> {
        self.steps.push_back(StepEntry {
            run: Box::new(f),
            access: StepAccess::Annotated(accesses.to_vec()),
        });
        self
    }

    /// Steps not yet executed.
    pub fn remaining(&self) -> usize {
        self.steps.len()
    }

    /// The actor's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn pop_step(&mut self) -> Option<StepEntry<S>> {
        self.steps.pop_front()
    }

    pub(crate) fn access_sets(&self) -> Vec<StepAccess> {
        self.steps.iter().map(|e| e.access.clone()).collect()
    }
}

/// How the explorer picks schedules.
#[derive(Debug, Clone, Copy)]
pub enum Mode {
    /// Depth-first enumeration of every interleaving, up to
    /// `max_schedules` runs. When the full space fits under the bound the
    /// result's [`Report::exhausted`] is `true` and the absence of a
    /// violation is a proof over operation-granularity schedules.
    Exhaustive {
        /// Upper bound on schedules to run before giving up on
        /// exhaustion (the space grows multinomially in actor steps).
        max_schedules: usize,
    },
    /// Seeded pseudo-random schedules — for state spaces too large to
    /// exhaust. Same seed ⇒ same schedules, so failures stay
    /// reproducible.
    Random {
        /// Seed for the schedule stream.
        seed: u64,
        /// Number of schedules to run.
        schedules: usize,
    },
    /// Dynamic partial-order reduction: a stateless backtracking DFS
    /// with sleep sets over the dependency relation induced by step
    /// access annotations. Visits at least one representative schedule
    /// per Mazurkiewicz trace — two schedules that only commute
    /// *independent* (non-conflicting) steps are equivalent, and only
    /// one of each class is executed. With fully unannotated actors
    /// every pair of steps conflicts and this degenerates to
    /// [`Mode::Exhaustive`] (plus bookkeeping); with honest annotations
    /// the reduction is typically multiplicative per independent actor
    /// pair. See [`Report::reduction_ratio`].
    Dpor {
        /// Upper bound on runs (complete, sleep-set-blocked and pruned)
        /// before giving up on exhaustion.
        max_schedules: usize,
    },
}

/// Successful exploration summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Runs actually executed (in [`Mode::Dpor`] this includes
    /// sleep-set-blocked and fingerprint-pruned partial runs).
    pub schedules: usize,
    /// Whether the whole interleaving space was covered (exhaustive or
    /// DPOR mode under the bound only).
    pub exhausted: bool,
    /// Runs that reached quiescence and passed the final check — in
    /// DPOR mode, the number of Mazurkiewicz-trace representatives
    /// executed.
    pub traces_explored: usize,
    /// Interleavings the mode proved it did not need to run:
    /// `interleavings − schedules` when the exploration exhausted the
    /// space, `0` otherwise (a truncated run proves nothing).
    pub schedules_pruned: u64,
    /// The full interleaving count of the harness, computed analytically
    /// as the multinomial over actor step counts (every actor with
    /// remaining steps is always runnable). Saturates at `u64::MAX`.
    pub interleavings: u64,
}

impl Report {
    /// How much smaller the executed run count is than the full
    /// interleaving space: `interleavings / schedules`. `1.0` for a
    /// plain exhaustive pass; meaningful only when
    /// [`exhausted`](Report::exhausted) — a truncated exploration
    /// reports `1.0` rather than claim a reduction it did not prove.
    pub fn reduction_ratio(&self) -> f64 {
        if !self.exhausted || self.schedules == 0 {
            return 1.0;
        }
        self.interleavings as f64 / self.schedules as f64
    }
}

/// A failed run: the exact schedule (actor index per step) that produced
/// it, replayable with [`replay`].
#[derive(Debug, Clone)]
pub struct Violation {
    /// Actor index chosen at each scheduling decision, in order.
    pub schedule: Vec<usize>,
    /// What went wrong, prefixed with where (step or final check).
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [schedule: {:?}]", self.message, self.schedule)
    }
}

/// The multinomial `(Σ nᵢ)! / Π nᵢ!` over actor step counts — the exact
/// interleaving count when enabledness is "has steps left", which is the
/// explorer's model. Saturates at `u64::MAX`.
pub(crate) fn interleaving_count(step_counts: &[usize]) -> u64 {
    let mut total: u128 = 1;
    let mut placed: u128 = 0;
    for &n in step_counts {
        for k in 1..=n as u128 {
            placed += 1;
            // Exact at every iteration: total carries C(placed, k) for
            // the current group times the previous groups' product.
            total = total * placed / k;
            if total > u64::MAX as u128 {
                return u64::MAX;
            }
        }
    }
    total as u64
}

/// Shared formatting so every mode reports identical violation shapes.
pub(crate) fn step_violation_message(at: usize, name: &str, why: &str) -> String {
    format!("invariant broken after step {at} ({name}): {why}")
}

pub(crate) fn final_violation_message(why: &str) -> String {
    format!("final check failed: {why}")
}

pub(crate) fn nondeterminism_message(depth: usize, was: &[usize], now: &[usize]) -> String {
    format!(
        "non-deterministic harness: depth {depth} had runnable set {was:?}, now {now:?} — \
         actor step counts or enabledness must depend only on the schedule"
    )
}

/// Runs one schedule. `decide` receives the decision depth, the
/// (ascending) indices of runnable actors and a read-only view of the
/// state; it picks the actor to advance, stops the run early (pruning),
/// or aborts it as a violation. Returns the executed schedule and
/// whether the run reached quiescence (ran the final check).
fn run_one<S>(
    build: &impl Fn() -> (S, Vec<Actor<S>>),
    check_step: &impl Fn(&S) -> Result<(), String>,
    check_final: &impl Fn(&mut S) -> Result<(), String>,
    decide: Decider<'_, S>,
) -> Result<(Vec<usize>, bool), Violation> {
    let (mut state, mut actors) = build();
    let mut schedule: Vec<usize> = Vec::new();
    loop {
        let runnable: Vec<usize> = actors
            .iter()
            .enumerate()
            .filter(|(_, a)| a.remaining() > 0)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            break;
        }
        let actor = match decide(schedule.len(), &runnable, &state) {
            Choice::Pick(i) => i,
            Choice::Stop => return Ok((schedule, false)),
            Choice::Fail(message) => return Err(Violation { schedule, message }),
        };
        schedule.push(actor);
        let Some(mut entry) = actors.get_mut(actor).and_then(Actor::pop_step) else {
            return Err(Violation {
                schedule,
                message: format!("scheduler picked finished actor #{actor}"),
            });
        };
        (entry.run)(&mut state);
        if let Err(why) = check_step(&state) {
            let name = actors[actor].name.clone();
            let at = schedule.len() - 1;
            return Err(Violation {
                schedule,
                message: step_violation_message(at, &name, &why),
            });
        }
    }
    if let Err(why) = check_final(&mut state) {
        return Err(Violation {
            schedule,
            message: final_violation_message(&why),
        });
    }
    Ok((schedule, true))
}

/// Explores interleavings of `build`'s actors over its shared state.
///
/// Per schedule, `build` constructs a fresh state and fresh actors; the
/// explorer then repeatedly picks a runnable actor (per [`Mode`]) and
/// executes its next step. `check_step` runs after every step,
/// `check_final` once per schedule after all actors finished (it takes
/// `&mut S` so harnesses can run a final drain/collect).
///
/// Returns the first [`Violation`] found — including the schedule that
/// triggers it, for [`replay`] — or a [`Report`] when every explored
/// schedule upheld the invariants.
///
/// Determinism contract: `build` must produce actors whose *step counts
/// and enabledness* depend only on the schedule, not on time, real
/// parallelism, or ambient randomness. The explorer fingerprints the
/// runnable-set *sequence* of every schedule prefix it replays — not
/// just its width — so a harness whose actor membership drifts between
/// rebuilds (a state-dependent enabled/disabled actor, a build that
/// rotates which actor carries a step) is reported as a violation
/// rather than explored as garbage.
///
/// Under [`Mode::Dpor`], `check_step` is only evaluated at the
/// intermediate states of the *representative* schedules DPOR runs. An
/// invariant that only an omniscient observer would notice — one about
/// state no annotated step reads — can therefore be missed on the
/// pruned orders; put the observation *inside* a step (and its access
/// set) or in `check_final`, or keep the harness on
/// [`Mode::Exhaustive`]. See `DESIGN.md` §8.
pub fn explore<S>(
    mode: Mode,
    build: impl Fn() -> (S, Vec<Actor<S>>),
    check_step: impl Fn(&S) -> Result<(), String>,
    check_final: impl Fn(&mut S) -> Result<(), String>,
) -> Result<Report, Violation> {
    explore_inner(mode, &build, None, &check_step, &check_final)
}

/// [`explore`] with a state fingerprint hook: `fingerprint` must hash
/// *all* state the harness's behaviour depends on. When two schedule
/// prefixes reach the same fingerprint with the same per-actor progress,
/// the second subtree is pruned as already explored. Sound for
/// [`Mode::Exhaustive`] (identical state + progress ⇒ identical
/// subtree); under [`Mode::Dpor`] the pruned continuation's backtrack
/// contributions are conservatively over-approximated from the pruned
/// actors' remaining access sets, which keeps the reduction honest at
/// the price of some re-exploration. Ignored by [`Mode::Random`].
pub fn explore_with_fingerprint<S>(
    mode: Mode,
    build: impl Fn() -> (S, Vec<Actor<S>>),
    fingerprint: impl Fn(&S) -> u64,
    check_step: impl Fn(&S) -> Result<(), String>,
    check_final: impl Fn(&mut S) -> Result<(), String>,
) -> Result<Report, Violation> {
    explore_inner(mode, &build, Some(&fingerprint), &check_step, &check_final)
}

/// [`explore_with_fingerprint`] for states that implement [`Hash`]: the
/// fingerprint is the state's own hash under the std default hasher.
pub fn explore_hashed<S: std::hash::Hash>(
    mode: Mode,
    build: impl Fn() -> (S, Vec<Actor<S>>),
    check_step: impl Fn(&S) -> Result<(), String>,
    check_final: impl Fn(&mut S) -> Result<(), String>,
) -> Result<Report, Violation> {
    explore_inner(
        mode,
        &build,
        Some(&|s: &S| {
            use std::hash::Hasher;
            // DefaultHasher::new() is fixed-key SipHash: deterministic
            // across runs of one binary, which is all pruning needs.
            let mut h = std::collections::hash_map::DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        }),
        &check_step,
        &check_final,
    )
}

pub(crate) fn explore_inner<S>(
    mode: Mode,
    build: &impl Fn() -> (S, Vec<Actor<S>>),
    fingerprint: Option<&dyn Fn(&S) -> u64>,
    check_step: &impl Fn(&S) -> Result<(), String>,
    check_final: &impl Fn(&mut S) -> Result<(), String>,
) -> Result<Report, Violation> {
    let interleavings = {
        let (_, probe) = build();
        interleaving_count(&probe.iter().map(Actor::remaining).collect::<Vec<_>>())
    };
    match mode {
        Mode::Exhaustive { max_schedules } => {
            // DFS over decision prefixes: `path` holds (choice, runnable
            // set) per depth; each iteration replays the prefix and
            // extends it with first-choice decisions, then the odometer
            // advances.
            let mut path: Vec<(usize, Vec<usize>)> = Vec::new();
            let mut schedules = 0usize;
            let mut traces = 0usize;
            // Fingerprint pruning: (state hash, per-actor progress) of
            // states whose subtrees are fully covered by an earlier
            // visit. Progress is tracked via the per-run choice counts.
            let mut visited: HashSet<(u64, Vec<usize>)> = HashSet::new();
            let mut pcs: Vec<usize> = Vec::new();
            loop {
                let completed = {
                    let path = &mut path;
                    let pcs = &mut pcs;
                    let visited = &mut visited;
                    let (_, done) = run_one(
                        build,
                        check_step,
                        check_final,
                        &mut |depth, runnable, state| {
                            if depth == 0 {
                                pcs.clear();
                            }
                            let fresh = depth >= path.len();
                            if fresh {
                                if let Some(fp) = fingerprint {
                                    let key = (fp(state), pcs.clone());
                                    if !visited.insert(key) {
                                        // Same state, same per-actor
                                        // progress: the subtree from here
                                        // was exhausted on first visit.
                                        return Choice::Stop;
                                    }
                                }
                                path.push((0, runnable.to_vec()));
                            } else {
                                let (_, ref was) = path[depth];
                                if was != runnable {
                                    return Choice::Fail(nondeterminism_message(
                                        depth, was, runnable,
                                    ));
                                }
                            }
                            let (choice, _) = path[depth];
                            let picked = runnable[choice];
                            if pcs.len() <= picked {
                                pcs.resize(picked + 1, 0);
                            }
                            pcs[picked] += 1;
                            Choice::Pick(picked)
                        },
                    )?;
                    done
                };
                schedules += 1;
                if completed {
                    traces += 1;
                }
                // Odometer: advance the deepest decision that still has an
                // unexplored sibling, dropping everything below it.
                while let Some((choice, runnable)) = path.pop() {
                    if choice + 1 < runnable.len() {
                        path.push((choice + 1, runnable));
                        break;
                    }
                }
                let exhausted = path.is_empty();
                if exhausted || schedules >= max_schedules {
                    return Ok(Report {
                        schedules,
                        exhausted,
                        traces_explored: traces,
                        schedules_pruned: if exhausted {
                            interleavings.saturating_sub(schedules as u64)
                        } else {
                            0
                        },
                        interleavings,
                    });
                }
            }
        }
        Mode::Random { seed, schedules } => {
            for run in 0..schedules {
                // Decorrelate per-run streams: feeding `seed + run` into
                // SplitMix64 is exactly its intended splitting usage.
                let mut rng = SplitMix64::new(seed.wrapping_add(run as u64));
                run_one(build, check_step, check_final, &mut |_, runnable, _| {
                    Choice::Pick(runnable[rng.below(runnable.len())])
                })?;
            }
            Ok(Report {
                schedules,
                exhausted: false,
                traces_explored: schedules,
                schedules_pruned: 0,
                interleavings,
            })
        }
        Mode::Dpor { max_schedules } => crate::dpor::explore_dpor(
            max_schedules,
            interleavings,
            build,
            fingerprint,
            check_step,
            check_final,
        ),
    }
}

/// Re-executes one recorded schedule (from [`Violation::schedule`])
/// against a fresh build. The schedule is mode-agnostic: a violation
/// found under [`Mode::Dpor`] replays through the very same decision
/// path as one found exhaustively, because a schedule *is* the decision
/// path. Decisions beyond the recorded schedule fall back to the first
/// runnable actor — a violating schedule always ends at its violation,
/// so the tail is never reached when reproducing one; a truncated
/// schedule therefore degrades to "replay this prefix, then run
/// first-choice to quiescence" rather than failing.
///
/// Returns the reproduced violation, or `Ok(())` when the schedule now
/// passes (e.g. after a fix). A schedule that does not fit the harness —
/// an actor index the build does not have, or more picks of an actor
/// than it has steps — is reported as a violation naming the actor, not
/// a panic.
pub fn replay<S>(
    schedule: &[usize],
    build: impl Fn() -> (S, Vec<Actor<S>>),
    check_step: impl Fn(&S) -> Result<(), String>,
    check_final: impl Fn(&mut S) -> Result<(), String>,
) -> Result<(), Violation> {
    // Probe the harness shape once so schedule-vs-harness mismatches can
    // name the actor they trip over.
    let (actor_names, actor_count) = {
        let (_, probe) = build();
        (
            probe
                .iter()
                .map(|a| a.name().to_string())
                .collect::<Vec<_>>(),
            probe.len(),
        )
    };
    run_one(
        &build,
        &check_step,
        &check_final,
        &mut |depth, runnable, _| {
            let Some(&want) = schedule.get(depth) else {
                return Choice::Pick(runnable[0]);
            };
            if runnable.contains(&want) {
                Choice::Pick(want)
            } else if want >= actor_count {
                Choice::Fail(format!(
                    "schedule picks actor #{want} at depth {depth}, but the harness only has \
                 {actor_count} actors ({actor_names:?}) — was it recorded against a larger \
                 actor set?"
                ))
            } else {
                Choice::Fail(format!(
                    "schedule picks actor #{want} ({}) at depth {depth}, but it has no steps left",
                    actor_names[want]
                ))
            }
        },
    )
    .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-step non-atomic increments: the canonical lost update.
    #[derive(Hash)]
    struct LostUpdate {
        val: u64,
        tmp: [u64; 2],
    }

    fn lost_update_build() -> (LostUpdate, Vec<Actor<LostUpdate>>) {
        let state = LostUpdate {
            val: 0,
            tmp: [0, 0],
        };
        let actors = (0..2)
            .map(|i| {
                Actor::new(format!("inc-{i}"))
                    .then(move |s: &mut LostUpdate| s.tmp[i] = s.val)
                    .then(move |s: &mut LostUpdate| s.val = s.tmp[i] + 1)
            })
            .collect();
        (state, actors)
    }

    fn lost_update_final(s: &mut LostUpdate) -> Result<(), String> {
        if s.val == 2 {
            Ok(())
        } else {
            Err(format!("lost update: val={}", s.val))
        }
    }

    #[test]
    fn exhaustive_finds_the_lost_update() {
        let violation = explore(
            Mode::Exhaustive {
                max_schedules: 1_000,
            },
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("two-step increments must lose an update somewhere");
        assert!(violation.message.contains("lost update"), "{violation}");
        // The witness must interleave the reads before both writes.
        assert_eq!(violation.schedule.len(), 4, "{violation}");
    }

    #[test]
    fn exhaustive_passes_single_step_increments_and_exhausts() {
        let report = explore(
            Mode::Exhaustive {
                max_schedules: 1_000,
            },
            || {
                let actors = (0..2)
                    .map(|i| {
                        Actor::new(format!("inc-{i}")).then(move |s: &mut LostUpdate| {
                            // One-step RMW: atomic at this granularity.
                            s.tmp[i] = s.val;
                            s.val = s.tmp[i] + 1;
                        })
                    })
                    .collect();
                (
                    LostUpdate {
                        val: 0,
                        tmp: [0, 0],
                    },
                    actors,
                )
            },
            |_| Ok(()),
            lost_update_final,
        )
        .expect("atomic increments never lose updates");
        assert!(report.exhausted);
        assert_eq!(report.schedules, 2, "two actors, one step each: 2 orders");
        assert_eq!(report.traces_explored, 2);
        assert_eq!(report.interleavings, 2);
        assert_eq!(report.schedules_pruned, 0);
    }

    #[test]
    fn violating_schedule_replays_to_the_same_violation() {
        let violation = explore(
            Mode::Exhaustive { max_schedules: 100 },
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("must fail");
        let replayed = replay(
            &violation.schedule,
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("replay must reproduce");
        assert_eq!(replayed.message, violation.message);
        assert_eq!(replayed.schedule, violation.schedule);
    }

    #[test]
    fn random_mode_finds_the_lost_update_and_is_deterministic() {
        let a = explore(
            Mode::Random {
                seed: 7,
                schedules: 200,
            },
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("200 random schedules of a 2/6-failing space must hit one");
        let b = explore(
            Mode::Random {
                seed: 7,
                schedules: 200,
            },
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("same seed, same outcome");
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn max_schedules_truncation_is_reported() {
        let report = explore(
            Mode::Exhaustive { max_schedules: 3 },
            || {
                let actors = (0..3)
                    .map(|i| {
                        Actor::new(format!("a{i}"))
                            .then(|_: &mut ()| {})
                            .then(|_: &mut ()| {})
                    })
                    .collect();
                ((), actors)
            },
            |_| Ok(()),
            |_| Ok(()),
        )
        .expect("no invariants to break");
        assert_eq!(report.schedules, 3);
        assert!(!report.exhausted, "90-schedule space cut off at 3");
        assert_eq!(report.interleavings, 90);
        assert_eq!(
            report.schedules_pruned, 0,
            "a truncated run proves no pruning"
        );
        assert_eq!(report.reduction_ratio(), 1.0);
    }

    #[test]
    fn step_checks_pinpoint_the_failing_actor() {
        let violation = explore(
            Mode::Exhaustive { max_schedules: 10 },
            || {
                let actors = vec![
                    Actor::new("ok").then(|s: &mut u64| *s += 1),
                    Actor::new("bad").then(|s: &mut u64| *s += 100),
                ];
                (0u64, actors)
            },
            |s| {
                if *s < 100 {
                    Ok(())
                } else {
                    Err("state blew past 100".into())
                }
            },
            |_| Ok(()),
        )
        .expect_err("step check must fire");
        assert!(violation.message.contains("(bad)"), "{violation}");
    }

    #[test]
    fn replay_rejects_schedules_for_finished_actors() {
        let err = replay(
            &[0, 0],
            || {
                let actors = vec![
                    Actor::new("a").then(|s: &mut u64| *s += 1),
                    Actor::new("b").then(|s: &mut u64| *s += 1),
                ];
                (0u64, actors)
            },
            |_| Ok(()),
            |_| Ok(()),
        )
        .expect_err("actor 0 has only one step; depth 1 must reject it");
        assert!(err.message.contains("no steps left"), "{err}");
        assert!(err.message.contains("(a)"), "names the actor: {err}");
    }

    #[test]
    fn interleaving_count_matches_known_multinomials() {
        assert_eq!(interleaving_count(&[]), 1);
        assert_eq!(interleaving_count(&[5]), 1);
        assert_eq!(interleaving_count(&[1, 1]), 2);
        assert_eq!(interleaving_count(&[3, 4]), 35); // C(7,3)
        assert_eq!(interleaving_count(&[2, 2]), 6);
        assert_eq!(interleaving_count(&[12, 1]), 13);
        assert_eq!(interleaving_count(&[3, 3, 3, 1]), 16_800);
        assert_eq!(interleaving_count(&[100, 100]), u64::MAX, "saturates");
    }

    #[test]
    fn access_conflicts_follow_the_read_write_matrix() {
        let r = StepAccess::Annotated(vec![Access::Read("ring")]);
        let w = StepAccess::Annotated(vec![Access::Write("ring")]);
        let rmw = StepAccess::Annotated(vec![Access::AcqRel("ring")]);
        let other = StepAccess::Annotated(vec![Access::Write("queue")]);
        let any = StepAccess::Conflicting;
        assert!(!r.conflicts(&r), "read/read commutes");
        assert!(r.conflicts(&w));
        assert!(w.conflicts(&w));
        assert!(r.conflicts(&rmw), "RMW counts as a write");
        assert!(!w.conflicts(&other), "distinct objects commute");
        assert!(any.conflicts(&r), "unannotated conflicts with everything");
        assert!(any.conflicts(&any));
        let empty = StepAccess::Annotated(vec![]);
        assert!(!empty.conflicts(&w), "an empty access set touches nothing");
    }

    /// Same width, different membership: a zero-step actor that rotates
    /// between builds keeps the runnable-set *width* stable while its
    /// membership drifts — exactly what the width-only detector missed.
    #[test]
    fn runnable_membership_drift_is_reported_as_nondeterminism() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let build = || {
            let flip = BUILDS.fetch_add(1, Ordering::SeqCst) % 2 == 1;
            let mut actors = vec![Actor::new("a").then(|_: &mut ()| {})];
            if flip {
                actors.push(Actor::new("b")); // zero steps: never runnable
                actors.push(Actor::new("c").then(|_: &mut ()| {}));
            } else {
                actors.push(Actor::new("b").then(|_: &mut ()| {}));
                actors.push(Actor::new("c")); // zero steps: never runnable
            }
            ((), actors)
        };
        let violation = explore(
            Mode::Exhaustive { max_schedules: 100 },
            build,
            |_| Ok(()),
            |_| Ok(()),
        )
        .expect_err("membership drift at equal width must be caught");
        assert!(
            violation.message.contains("non-deterministic harness"),
            "{violation}"
        );
        assert!(
            violation.message.contains("[0, 1]") && violation.message.contains("[0, 2]"),
            "message shows both runnable sets: {violation}"
        );
    }

    /// Width drift (the old detector's case) still reports, through the
    /// same runnable-set message.
    #[test]
    fn runnable_width_drift_is_still_reported() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        let build = || {
            let extra = BUILDS.fetch_add(1, Ordering::SeqCst) % 2;
            let mut a = Actor::new("a").then(|_: &mut ()| {});
            for _ in 0..extra {
                a = a.then(|_: &mut ()| {});
            }
            ((), vec![a, Actor::new("b").then(|_: &mut ()| {})])
        };
        let violation = explore(
            Mode::Exhaustive { max_schedules: 100 },
            build,
            |_| Ok(()),
            |_| Ok(()),
        )
        .expect_err("step-count drift must be caught");
        assert!(
            violation.message.contains("non-deterministic harness"),
            "{violation}"
        );
    }

    /// Fingerprint pruning in exhaustive mode: converging states (the
    /// order of two commuting increments) collapse to one subtree, the
    /// space still counts as exhausted, and violations are still found.
    #[test]
    fn exhaustive_fingerprint_prunes_converged_states() {
        #[derive(Hash)]
        struct Counters {
            x: u64,
            y: u64,
        }
        let build = || {
            let actors = vec![
                Actor::new("x")
                    .then(|s: &mut Counters| s.x += 1)
                    .then(|s: &mut Counters| s.x += 1),
                Actor::new("y")
                    .then(|s: &mut Counters| s.y += 1)
                    .then(|s: &mut Counters| s.y += 1),
            ];
            (Counters { x: 0, y: 0 }, actors)
        };
        let unpruned = explore(
            Mode::Exhaustive { max_schedules: 100 },
            build,
            |_| Ok(()),
            |_| Ok(()),
        )
        .expect("nothing to violate");
        assert_eq!(unpruned.schedules, 6, "C(4,2) schedules");
        let pruned = explore_hashed(
            Mode::Exhaustive { max_schedules: 100 },
            build,
            |_| Ok(()),
            |_| Ok(()),
        )
        .expect("nothing to violate");
        assert!(pruned.exhausted, "pruning must not cost exhaustion");
        assert!(
            pruned.schedules < unpruned.schedules,
            "converging lattice must prune: {} vs {}",
            pruned.schedules,
            unpruned.schedules
        );
        // Pruning must not hide violations reachable through a pruned
        // prefix's sibling.
        let violation = explore_hashed(
            Mode::Exhaustive { max_schedules: 100 },
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        );
        assert!(violation.is_err(), "lost update survives pruning");
    }
}
