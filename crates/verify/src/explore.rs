//! The controlled scheduler: actors, schedules, exhaustive and random
//! exploration, and deterministic replay.

use crate::rng::SplitMix64;
use std::collections::VecDeque;

/// One boxed step of an actor (the unit of atomicity under exploration).
type Step<S> = Box<dyn FnMut(&mut S)>;

/// The scheduling oracle `run_one` consults: given the decision depth
/// and the runnable actor indices, picks one (or aborts the run).
type Decider<'d> = &'d mut dyn FnMut(usize, &[usize]) -> Result<usize, String>;

/// One logical thread of a concurrent test case: a named, fixed sequence
/// of steps over the shared state `S`. The explorer advances exactly one
/// actor per scheduling decision, so steps are the preemption points —
/// everything inside a single step is atomic with respect to the
/// explored interleavings.
pub struct Actor<S> {
    name: String,
    steps: VecDeque<Step<S>>,
}

impl<S> Actor<S> {
    /// Creates an empty actor. Add steps with [`then`](Actor::then).
    pub fn new(name: impl Into<String>) -> Actor<S> {
        Actor {
            name: name.into(),
            steps: VecDeque::new(),
        }
    }

    /// Appends one step. Steps run in the order they were added; actor-
    /// local state flows between them through captures or through `S`.
    pub fn then(mut self, f: impl FnMut(&mut S) + 'static) -> Actor<S> {
        self.steps.push_back(Box::new(f));
        self
    }

    /// Steps not yet executed.
    pub fn remaining(&self) -> usize {
        self.steps.len()
    }

    /// The actor's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// How the explorer picks schedules.
#[derive(Debug, Clone, Copy)]
pub enum Mode {
    /// Depth-first enumeration of every interleaving, up to
    /// `max_schedules` runs. When the full space fits under the bound the
    /// result's [`Report::exhausted`] is `true` and the absence of a
    /// violation is a proof over operation-granularity schedules.
    Exhaustive {
        /// Upper bound on schedules to run before giving up on
        /// exhaustion (the space grows multinomially in actor steps).
        max_schedules: usize,
    },
    /// Seeded pseudo-random schedules — for state spaces too large to
    /// exhaust. Same seed ⇒ same schedules, so failures stay
    /// reproducible.
    Random {
        /// Seed for the schedule stream.
        seed: u64,
        /// Number of schedules to run.
        schedules: usize,
    },
}

/// Successful exploration summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules: usize,
    /// Whether the whole interleaving space was covered (exhaustive mode
    /// under the bound only).
    pub exhausted: bool,
}

/// A failed run: the exact schedule (actor index per step) that produced
/// it, replayable with [`replay`].
#[derive(Debug, Clone)]
pub struct Violation {
    /// Actor index chosen at each scheduling decision, in order.
    pub schedule: Vec<usize>,
    /// What went wrong, prefixed with where (step or final check).
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [schedule: {:?}]", self.message, self.schedule)
    }
}

/// Runs one schedule. `decide` receives the decision depth and the
/// (ascending) indices of runnable actors and returns the absolute index
/// of the actor to advance; an `Err` from it aborts the run as a
/// violation (used by replay and the determinism check).
fn run_one<S>(
    build: &impl Fn() -> (S, Vec<Actor<S>>),
    check_step: &impl Fn(&S) -> Result<(), String>,
    check_final: &impl Fn(&mut S) -> Result<(), String>,
    decide: Decider<'_>,
) -> Result<Vec<usize>, Violation> {
    let (mut state, mut actors) = build();
    let mut schedule: Vec<usize> = Vec::new();
    loop {
        let runnable: Vec<usize> = actors
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.steps.is_empty())
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            break;
        }
        let actor = match decide(schedule.len(), &runnable) {
            Ok(i) => i,
            Err(message) => return Err(Violation { schedule, message }),
        };
        schedule.push(actor);
        let Some(step) = actors[actor].steps.pop_front().map(|mut f| f(&mut state)) else {
            return Err(Violation {
                schedule,
                message: format!("scheduler picked finished actor #{actor}"),
            });
        };
        let () = step;
        if let Err(why) = check_step(&state) {
            let name = actors[actor].name.clone();
            let at = schedule.len() - 1;
            return Err(Violation {
                schedule,
                message: format!("invariant broken after step {at} ({name}): {why}"),
            });
        }
    }
    if let Err(why) = check_final(&mut state) {
        return Err(Violation {
            schedule,
            message: format!("final check failed: {why}"),
        });
    }
    Ok(schedule)
}

/// Explores interleavings of `build`'s actors over its shared state.
///
/// Per schedule, `build` constructs a fresh state and fresh actors; the
/// explorer then repeatedly picks a runnable actor (per [`Mode`]) and
/// executes its next step. `check_step` runs after every step,
/// `check_final` once per schedule after all actors finished (it takes
/// `&mut S` so harnesses can run a final drain/collect).
///
/// Returns the first [`Violation`] found — including the schedule that
/// triggers it, for [`replay`] — or a [`Report`] when every explored
/// schedule upheld the invariants.
///
/// Determinism contract: `build` must produce actors whose *step counts
/// and enabledness* depend only on the schedule, not on time, real
/// parallelism, or ambient randomness. The explorer detects divergence
/// between runs (a schedule prefix reaching a different runnable-set
/// width) and reports it as a violation rather than exploring garbage.
pub fn explore<S>(
    mode: Mode,
    build: impl Fn() -> (S, Vec<Actor<S>>),
    check_step: impl Fn(&S) -> Result<(), String>,
    check_final: impl Fn(&mut S) -> Result<(), String>,
) -> Result<Report, Violation> {
    match mode {
        Mode::Exhaustive { max_schedules } => {
            // DFS over decision prefixes: `path` holds (choice, width) per
            // depth; each iteration replays the prefix and extends it with
            // first-choice decisions, then the odometer advances.
            let mut path: Vec<(usize, usize)> = Vec::new();
            let mut schedules = 0usize;
            loop {
                {
                    let path = &mut path;
                    run_one(&build, &check_step, &check_final, &mut |depth, runnable| {
                        if depth < path.len() {
                            let (choice, width) = path[depth];
                            if width != runnable.len() {
                                return Err(format!(
                                    "non-deterministic harness: depth {depth} had width \
                                     {width}, now {}",
                                    runnable.len()
                                ));
                            }
                            Ok(runnable[choice])
                        } else {
                            path.push((0, runnable.len()));
                            Ok(runnable[0])
                        }
                    })?;
                }
                schedules += 1;
                // Odometer: advance the deepest decision that still has an
                // unexplored sibling, dropping everything below it.
                while let Some((choice, width)) = path.pop() {
                    if choice + 1 < width {
                        path.push((choice + 1, width));
                        break;
                    }
                }
                if path.is_empty() {
                    return Ok(Report {
                        schedules,
                        exhausted: true,
                    });
                }
                if schedules >= max_schedules {
                    return Ok(Report {
                        schedules,
                        exhausted: false,
                    });
                }
            }
        }
        Mode::Random { seed, schedules } => {
            for run in 0..schedules {
                // Decorrelate per-run streams: feeding `seed + run` into
                // SplitMix64 is exactly its intended splitting usage.
                let mut rng = SplitMix64::new(seed.wrapping_add(run as u64));
                run_one(&build, &check_step, &check_final, &mut |_, runnable| {
                    Ok(runnable[rng.below(runnable.len())])
                })?;
            }
            Ok(Report {
                schedules,
                exhausted: false,
            })
        }
    }
}

/// Re-executes one recorded schedule (from [`Violation::schedule`])
/// against a fresh build. Decisions beyond the recorded schedule fall
/// back to the first runnable actor — a violating schedule always ends
/// at its violation, so the tail is never reached when reproducing one.
///
/// Returns the reproduced violation, or `Ok(())` when the schedule now
/// passes (e.g. after a fix).
pub fn replay<S>(
    schedule: &[usize],
    build: impl Fn() -> (S, Vec<Actor<S>>),
    check_step: impl Fn(&S) -> Result<(), String>,
    check_final: impl Fn(&mut S) -> Result<(), String>,
) -> Result<(), Violation> {
    run_one(&build, &check_step, &check_final, &mut |depth, runnable| {
        let Some(&want) = schedule.get(depth) else {
            return Ok(runnable[0]);
        };
        if runnable.contains(&want) {
            Ok(want)
        } else {
            Err(format!(
                "schedule picks actor #{want} at depth {depth}, but it has no steps left"
            ))
        }
    })
    .map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-step non-atomic increments: the canonical lost update.
    struct LostUpdate {
        val: u64,
        tmp: [u64; 2],
    }

    fn lost_update_build() -> (LostUpdate, Vec<Actor<LostUpdate>>) {
        let state = LostUpdate {
            val: 0,
            tmp: [0, 0],
        };
        let actors = (0..2)
            .map(|i| {
                Actor::new(format!("inc-{i}"))
                    .then(move |s: &mut LostUpdate| s.tmp[i] = s.val)
                    .then(move |s: &mut LostUpdate| s.val = s.tmp[i] + 1)
            })
            .collect();
        (state, actors)
    }

    fn lost_update_final(s: &mut LostUpdate) -> Result<(), String> {
        if s.val == 2 {
            Ok(())
        } else {
            Err(format!("lost update: val={}", s.val))
        }
    }

    #[test]
    fn exhaustive_finds_the_lost_update() {
        let violation = explore(
            Mode::Exhaustive {
                max_schedules: 1_000,
            },
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("two-step increments must lose an update somewhere");
        assert!(violation.message.contains("lost update"), "{violation}");
        // The witness must interleave the reads before both writes.
        assert_eq!(violation.schedule.len(), 4, "{violation}");
    }

    #[test]
    fn exhaustive_passes_single_step_increments_and_exhausts() {
        let report = explore(
            Mode::Exhaustive {
                max_schedules: 1_000,
            },
            || {
                let actors = (0..2)
                    .map(|i| {
                        Actor::new(format!("inc-{i}")).then(move |s: &mut LostUpdate| {
                            // One-step RMW: atomic at this granularity.
                            s.tmp[i] = s.val;
                            s.val = s.tmp[i] + 1;
                        })
                    })
                    .collect();
                (
                    LostUpdate {
                        val: 0,
                        tmp: [0, 0],
                    },
                    actors,
                )
            },
            |_| Ok(()),
            lost_update_final,
        )
        .expect("atomic increments never lose updates");
        assert!(report.exhausted);
        assert_eq!(report.schedules, 2, "two actors, one step each: 2 orders");
    }

    #[test]
    fn violating_schedule_replays_to_the_same_violation() {
        let violation = explore(
            Mode::Exhaustive { max_schedules: 100 },
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("must fail");
        let replayed = replay(
            &violation.schedule,
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("replay must reproduce");
        assert_eq!(replayed.message, violation.message);
        assert_eq!(replayed.schedule, violation.schedule);
    }

    #[test]
    fn random_mode_finds_the_lost_update_and_is_deterministic() {
        let a = explore(
            Mode::Random {
                seed: 7,
                schedules: 200,
            },
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("200 random schedules of a 2/6-failing space must hit one");
        let b = explore(
            Mode::Random {
                seed: 7,
                schedules: 200,
            },
            lost_update_build,
            |_| Ok(()),
            lost_update_final,
        )
        .expect_err("same seed, same outcome");
        assert_eq!(a.schedule, b.schedule);
    }

    #[test]
    fn max_schedules_truncation_is_reported() {
        let report = explore(
            Mode::Exhaustive { max_schedules: 3 },
            || {
                let actors = (0..3)
                    .map(|i| {
                        Actor::new(format!("a{i}"))
                            .then(|_: &mut ()| {})
                            .then(|_: &mut ()| {})
                    })
                    .collect();
                ((), actors)
            },
            |_| Ok(()),
            |_| Ok(()),
        )
        .expect("no invariants to break");
        assert_eq!(report.schedules, 3);
        assert!(!report.exhausted, "90-schedule space cut off at 3");
    }

    #[test]
    fn step_checks_pinpoint_the_failing_actor() {
        let violation = explore(
            Mode::Exhaustive { max_schedules: 10 },
            || {
                let actors = vec![
                    Actor::new("ok").then(|s: &mut u64| *s += 1),
                    Actor::new("bad").then(|s: &mut u64| *s += 100),
                ];
                (0u64, actors)
            },
            |s| {
                if *s < 100 {
                    Ok(())
                } else {
                    Err("state blew past 100".into())
                }
            },
            |_| Ok(()),
        )
        .expect_err("step check must fire");
        assert!(violation.message.contains("(bad)"), "{violation}");
    }

    #[test]
    fn replay_rejects_schedules_for_finished_actors() {
        let err = replay(
            &[0, 0],
            || {
                let actors = vec![
                    Actor::new("a").then(|s: &mut u64| *s += 1),
                    Actor::new("b").then(|s: &mut u64| *s += 1),
                ];
                (0u64, actors)
            },
            |_| Ok(()),
            |_| Ok(()),
        )
        .expect_err("actor 0 has only one step; depth 1 must reject it");
        assert!(err.message.contains("no steps left"), "{err}");
    }
}
