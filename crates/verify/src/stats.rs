//! Per-harness exploration stats (`CCP_VERIFY_JSON`) and deep-mode
//! budget helpers.
//!
//! The harnesses in `tests/` call [`emit_stats`] after each
//! exploration. When the `CCP_VERIFY_JSON` env var names a file, one
//! JSON line per exploration is appended there — same contract
//! `CCP_BENCH_JSON` has for the benches, so `scripts/verify_stats.sh`
//! can collect them into the CI step summary and gate on
//! [`Report::reduction_ratio`] actually biting. Without the env var the
//! line goes to stdout (visible under `cargo test -- --nocapture`).

use crate::Report;
use std::io::Write as _;
use std::time::Duration;

/// Whether the nightly deep pass is on (`CCP_VERIFY_DEEP` set to
/// anything but empty/`0`). Harnesses use this to widen actor/step
/// counts beyond what a PR-gating run should pay for.
pub fn deep() -> bool {
    std::env::var_os("CCP_VERIFY_DEEP").is_some_and(|v| !v.is_empty() && v != "0")
}

/// A schedule budget: `default` normally, 10× under [`deep`] mode.
pub fn budget(default: usize) -> usize {
    if deep() {
        default.saturating_mul(10)
    } else {
        default
    }
}

/// Emits one `CCP_VERIFY_JSON {...}` stats line for a finished
/// exploration: harness name, mode (`"exhaustive"`, `"random"`,
/// `"dpor"`), schedule/trace counts, the analytic interleaving total,
/// pruned count, reduction ratio, exhaustion flag and wall time.
///
/// Appended to the file named by the `CCP_VERIFY_JSON` env var when
/// set (created on demand), printed to stdout otherwise. Emission is
/// best-effort: an unwritable file degrades to stdout rather than
/// failing the harness.
pub fn emit_stats(harness: &str, mode: &str, report: &Report, wall: Duration) {
    let line = format!(
        concat!(
            "CCP_VERIFY_JSON {{\"harness\":\"{}\",\"mode\":\"{}\",\"schedules\":{},",
            "\"traces_explored\":{},\"interleavings\":{},\"schedules_pruned\":{},",
            "\"reduction_ratio\":{:.3},\"exhausted\":{},\"wall_ms\":{:.3}}}"
        ),
        harness,
        mode,
        report.schedules,
        report.traces_explored,
        report.interleavings,
        report.schedules_pruned,
        report.reduction_ratio(),
        report.exhausted,
        wall.as_secs_f64() * 1e3,
    );
    let wrote = std::env::var_os("CCP_VERIFY_JSON")
        .filter(|path| !path.is_empty())
        .and_then(|path| {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .ok()
        })
        .map(|mut f| writeln!(f, "{line}").is_ok())
        .unwrap_or(false);
    if !wrote {
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_line_is_valid_json_after_the_prefix() {
        // No env-var plumbing here (tests share a process); just check
        // the formatting path by rebuilding the line the way emit_stats
        // does and asserting its shape.
        let report = Report {
            schedules: 12,
            exhausted: true,
            traces_explored: 9,
            schedules_pruned: 168,
            interleavings: 180,
        };
        let ratio = report.reduction_ratio();
        assert!((ratio - 15.0).abs() < 1e-9, "{ratio}");
        // budget() math, independent of the environment.
        assert_eq!(200usize.saturating_mul(10), 2_000);
    }
}
