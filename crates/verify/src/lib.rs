//! # ccp-verify — deterministic interleaving checking
//!
//! The reproduction leans on hand-rolled lock-free code in exactly the
//! places the paper's claims depend on: the tracer's seqlock span rings
//! (`ccp-trace`), the observability layer's lock-free histograms
//! (`ccp-obs`), the scheduler-gated admission queue and the dual-pool
//! executor (`ccp-server`/`ccp-engine`). An ordering bug in any of them
//! does not crash — it silently corrupts the numbers the experiments
//! report. This crate is the checking machinery: a small, std-only,
//! loom-style **interleaving explorer** plus model-check harnesses (in
//! `tests/`) that drive the real data structures through every (bounded)
//! interleaving of their operations and assert linearizability-ish
//! invariants:
//!
//! * **no lost records beyond the dropped counter** — every record
//!   pushed into a [`ccp_trace::SpanRing`] is eventually observed by a
//!   snapshot, still visible, or counted as dropped;
//! * **monotone heads** — a ring's write index never runs backwards,
//!   under any snapshot/clear/recycle interleaving;
//! * **conserved queue tickets** — every admission attempt consumes
//!   exactly one ticket, granted tickets are unique and monotone, and
//!   the queue drains to empty once all permits drop.
//!
//! ## How it works
//!
//! There is no way to preempt real threads between two machine
//! instructions from safe std-only code, so the explorer controls
//! interleavings at **operation granularity**: a test case is a set of
//! [`Actor`]s, each a fixed sequence of steps (closures over shared
//! state `S`), and the [`explore`] driver runs one step at a time,
//! choosing which actor advances next. Choices come from either
//!
//! * [`Mode::Exhaustive`] — a depth-first enumeration of every schedule
//!   (bounded by `max_schedules`),
//! * [`Mode::Random`] — seeded pseudo-random schedules (SplitMix64), for
//!   state spaces too large to exhaust, or
//! * [`Mode::Dpor`] — dynamic partial-order reduction (sleep sets +
//!   Flanagan–Godefroid backtrack sets over the dependency relation
//!   declared by [`Actor::then_accessing`] access annotations): visits
//!   at least one representative schedule per Mazurkiewicz trace
//!   instead of every interleaving, and reports how much it pruned
//!   ([`Report::reduction_ratio`]). Optional state fingerprinting
//!   ([`explore_with_fingerprint`] / [`explore_hashed`]) additionally
//!   prunes converged states.
//!
//! Every run is **deterministic and replayable**: a failing schedule is
//! reported as the exact sequence of actor indices that produced it, and
//! [`replay`] re-executes that sequence for debugging. This is the same
//! discipline loom applies to memory orderings, scaled down to the
//! operation interleavings our invariants actually depend on — which is
//! precisely the granularity at which the PR-3 `/trace?clear=1`
//! snapshot-vs-clear race lived (see `tests/span_ring.rs`, which
//! re-finds that bug shape when the `clear_to` guard is reverted).
//!
//! ## Example
//!
//! The classic lost update: two actors read-modify-write a plain
//! counter in two separate steps. The explorer finds the interleaving
//! where one update disappears.
//!
//! ```
//! use ccp_verify::{explore, Actor, Mode};
//!
//! struct S {
//!     val: u64,
//!     tmp: [u64; 2],
//! }
//!
//! let build = || {
//!     let state = S { val: 0, tmp: [0, 0] };
//!     let actors = (0..2)
//!         .map(|i| {
//!             Actor::new(format!("inc-{i}"))
//!                 .then(move |s: &mut S| s.tmp[i] = s.val)
//!                 .then(move |s: &mut S| s.val = s.tmp[i] + 1)
//!         })
//!         .collect();
//!     (state, actors)
//! };
//! let outcome = explore(
//!     Mode::Exhaustive { max_schedules: 1_000 },
//!     build,
//!     |_| Ok(()),
//!     |s| {
//!         if s.val == 2 {
//!             Ok(())
//!         } else {
//!             Err(format!("lost update: val={}", s.val))
//!         }
//!     },
//! );
//! let violation = outcome.expect_err("explorer must find the lost update");
//! assert!(violation.message.contains("lost update"));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]

mod dpor;
mod explore;
mod rng;
mod stats;

pub use explore::{
    explore, explore_hashed, explore_with_fingerprint, replay, Access, Actor, Mode, Report,
    Violation,
};
pub use rng::SplitMix64;
pub use stats::{budget, deep, emit_stats};
