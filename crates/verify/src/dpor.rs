//! Dynamic partial-order reduction: the [`Mode::Dpor`] driver.
//!
//! Two schedules that differ only in the order of *independent* steps —
//! steps of different actors whose access sets do not conflict — are
//! equivalent (they form one Mazurkiewicz trace: same intermediate
//! dependency structure, same final state). Brute force runs every
//! member of every trace; this driver runs at least one representative
//! per trace and proves the rest redundant. The machinery is the
//! classic stateless-model-checking combination:
//!
//! * **Backtrack sets** (Flanagan–Godefroid, POPL 2005): a depth-first
//!   search keeps a stack of decision frames; whenever an actor's next
//!   step is *dependent* on an earlier executed step of a different
//!   actor, that earlier frame is told to also try this actor. In this
//!   explorer's model every unfinished actor is enabled at every frame
//!   (enabledness ≡ "has steps left"), which removes the hardest part
//!   of FG — computing a may-enable relation — and makes the classic
//!   algorithm exact: the racing actor can always be scheduled at the
//!   backtrack point directly.
//! * **Sleep sets** (Godefroid): when a frame has fully explored choice
//!   `q` and moves to its sibling, `q` is put to sleep in the sibling's
//!   subtree and stays asleep until some dependent step wakes it.
//!   Without them, two backtrack choices would re-explore each other's
//!   interleavings of independent suffixes.
//! * **State fingerprinting** (optional): identical `(state hash,
//!   per-actor progress, sleep set)` keys mark subtrees already
//!   explored. Under DPOR this pruning is *conservative*: the pruned
//!   subtree may have owed backtrack points to the current prefix, so
//!   the driver over-approximates them from every actor's remaining
//!   access sets before pruning (see `run_once`). This costs some
//!   re-exploration on diamond-shaped spaces but never coverage.
//!
//! Soundness depends on the access annotations being honest (see
//! [`Actor::then_accessing`]) and on the observer discipline documented
//! on [`crate::explore`]: per-step checks only see the representative
//! schedules' intermediate states.

use crate::explore::{
    final_violation_message, nondeterminism_message, step_violation_message, Actor, Report,
    StepAccess, Violation,
};
use std::collections::{BTreeSet, HashSet};

/// One decision on the DFS stack: the state identity (enabled set +
/// per-actor progress), which actor was run from it, and the DPOR
/// bookkeeping (backtrack/done/sleep sets over actor indices).
struct Frame {
    /// Actor index executed from this frame on the current path.
    chosen: usize,
    /// `chosen`'s step index at this frame (its access metadata key).
    chosen_pc: usize,
    /// Runnable actor indices at this frame, ascending — replayed runs
    /// must reproduce this exactly (determinism contract).
    enabled: Vec<usize>,
    /// Per-actor executed-step counts at this frame.
    pcs: Vec<usize>,
    /// Actors some later race said must also be tried from here.
    backtrack: BTreeSet<usize>,
    /// Choices whose subtrees are fully explored.
    done: BTreeSet<usize>,
    /// Actors whose next step is already covered by an explored sibling
    /// subtree; not scheduled here until a dependent step wakes them.
    sleep: BTreeSet<usize>,
}

/// How one run through the current stack ended (violations return early
/// through `Err`).
enum RunOutcome {
    /// Reached quiescence and passed the final check: one trace
    /// representative.
    Completed,
    /// Every runnable actor was asleep at a fresh depth: the suffix was
    /// already covered elsewhere. Counted as a run, not a trace.
    SleepBlocked,
    /// Fingerprint hit at a fresh depth: subtree already explored.
    Pruned,
}

/// Fingerprint-pruning key: state hash + per-actor progress + sleep
/// set. Sleep is part of the key because two visits that agree on state
/// but not on what is asleep do not explore the same subtree.
type VisitKey = (u64, Vec<usize>, Vec<usize>);

pub(crate) fn explore_dpor<S>(
    max_schedules: usize,
    interleavings: u64,
    build: &impl Fn() -> (S, Vec<Actor<S>>),
    fingerprint: Option<&dyn Fn(&S) -> u64>,
    check_step: &impl Fn(&S) -> Result<(), String>,
    check_final: &impl Fn(&mut S) -> Result<(), String>,
) -> Result<Report, Violation> {
    // Access metadata from a probe build; the determinism contract makes
    // it identical for every rebuild, and `run_once` verifies the parts
    // it relies on.
    let meta: Vec<Vec<StepAccess>> = {
        let (_, probe) = build();
        probe.iter().map(Actor::access_sets).collect()
    };
    let mut stack: Vec<Frame> = Vec::new();
    let mut visited: HashSet<VisitKey> = HashSet::new();
    let mut schedules = 0usize;
    let mut traces = 0usize;
    loop {
        // Frames 0..stack.len() replay their recorded `chosen` (the
        // deepest one freshly re-chosen by the last backtrack); depths
        // past the stack pick first-runnable-not-asleep and push frames.
        let replay_len = stack.len();
        let outcome = run_once(
            &mut stack,
            replay_len,
            &meta,
            &mut visited,
            build,
            fingerprint,
            check_step,
            check_final,
        )?;
        schedules += 1;
        if matches!(outcome, RunOutcome::Completed) {
            traces += 1;
        }
        if schedules >= max_schedules {
            return Ok(Report {
                schedules,
                exhausted: false,
                traces_explored: traces,
                schedules_pruned: 0,
                interleavings,
            });
        }
        // Backtrack: retire the top frame's current choice, then either
        // switch it to a pending backtrack candidate (and replay) or pop
        // the fully-explored frame and continue below.
        loop {
            let Some(top) = stack.last_mut() else {
                return Ok(Report {
                    schedules,
                    exhausted: true,
                    traces_explored: traces,
                    schedules_pruned: interleavings.saturating_sub(schedules as u64),
                    interleavings,
                });
            };
            top.done.insert(top.chosen);
            let next = top
                .backtrack
                .iter()
                .copied()
                .find(|c| !top.done.contains(c) && !top.sleep.contains(c));
            if let Some(c) = next {
                top.chosen = c;
                top.chosen_pc = top.pcs[c];
                break;
            }
            stack.pop();
        }
    }
}

/// The latest executed frame below `depth` whose step is dependent with
/// `access` and belongs to a different actor than `p` — the FG race
/// partner. `p` is always enabled there (steps-remaining model), so
/// adding `p` to that frame's backtrack set is exact, not heuristic.
fn last_dependent(
    stack: &[Frame],
    depth: usize,
    meta: &[Vec<StepAccess>],
    p: usize,
    access: &StepAccess,
) -> Option<usize> {
    (0..depth).rev().find(|&i| {
        let f = &stack[i];
        f.chosen != p && meta[f.chosen][f.chosen_pc].conflicts(access)
    })
}

#[allow(clippy::too_many_arguments)]
fn run_once<S>(
    stack: &mut Vec<Frame>,
    replay_len: usize,
    meta: &[Vec<StepAccess>],
    visited: &mut HashSet<VisitKey>,
    build: &impl Fn() -> (S, Vec<Actor<S>>),
    fingerprint: Option<&dyn Fn(&S) -> u64>,
    check_step: &impl Fn(&S) -> Result<(), String>,
    check_final: &impl Fn(&mut S) -> Result<(), String>,
) -> Result<RunOutcome, Violation> {
    let (mut state, mut actors) = build();
    let mut pcs = vec![0usize; actors.len()];
    let mut schedule: Vec<usize> = Vec::new();
    loop {
        let depth = schedule.len();
        let runnable: Vec<usize> = actors
            .iter()
            .enumerate()
            .filter(|(_, a)| a.remaining() > 0)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if depth < replay_len {
                // The stack remembers decisions past where this rebuild
                // ran out of steps.
                return Err(Violation {
                    schedule,
                    message: nondeterminism_message(depth, &stack[depth].enabled, &runnable),
                });
            }
            return match check_final(&mut state) {
                Ok(()) => Ok(RunOutcome::Completed),
                Err(why) => Err(Violation {
                    schedule,
                    message: final_violation_message(&why),
                }),
            };
        }
        let chosen = if depth < replay_len {
            let frame = &stack[depth];
            if frame.enabled != runnable {
                return Err(Violation {
                    schedule,
                    message: nondeterminism_message(depth, &frame.enabled, &runnable),
                });
            }
            frame.chosen
        } else {
            // Fresh depth. The sleep set comes from the parent: an actor
            // asleep (or already fully explored) there stays asleep here
            // unless the parent's executed step was dependent with its
            // pending step — a dependent step wakes it.
            let sleep: BTreeSet<usize> = if depth == 0 {
                BTreeSet::new()
            } else {
                let parent = &stack[depth - 1];
                let parent_access = &meta[parent.chosen][parent.chosen_pc];
                parent
                    .sleep
                    .iter()
                    .chain(parent.done.iter())
                    .copied()
                    .filter(|&q| {
                        q != parent.chosen
                            && parent.pcs[q] < meta[q].len()
                            && !meta[q][parent.pcs[q]].conflicts(parent_access)
                    })
                    .collect()
            };
            if let Some(fp) = fingerprint {
                let key = (
                    fp(&state),
                    pcs.clone(),
                    sleep.iter().copied().collect::<Vec<_>>(),
                );
                if !visited.insert(key) {
                    // Already-explored subtree. Before abandoning it,
                    // conservatively grant the prefix every backtrack
                    // point the subtree could have owed it: for each
                    // actor's every remaining step, point its last
                    // dependent executed event at that actor.
                    for (p, steps) in meta.iter().enumerate() {
                        for access in &steps[pcs[p]..] {
                            if let Some(i) = last_dependent(stack, depth, meta, p, access) {
                                stack[i].backtrack.insert(p);
                            }
                        }
                    }
                    return Ok(RunOutcome::Pruned);
                }
            }
            // FG race detection: every runnable actor's pending step is
            // raced against the executed prefix.
            for &p in &runnable {
                let Some(pending) = meta[p].get(pcs[p]) else {
                    return Err(Violation {
                        schedule,
                        message: format!(
                            "non-deterministic harness: actor #{p} has more steps than the \
                             probe build recorded ({})",
                            meta[p].len()
                        ),
                    });
                };
                if let Some(i) = last_dependent(stack, depth, meta, p, pending) {
                    stack[i].backtrack.insert(p);
                }
            }
            let Some(&chosen) = runnable.iter().find(|c| !sleep.contains(c)) else {
                return Ok(RunOutcome::SleepBlocked);
            };
            stack.push(Frame {
                chosen,
                chosen_pc: pcs[chosen],
                enabled: runnable.clone(),
                pcs: pcs.clone(),
                backtrack: BTreeSet::from([chosen]),
                done: BTreeSet::new(),
                sleep,
            });
            chosen
        };
        schedule.push(chosen);
        let Some(mut entry) = actors.get_mut(chosen).and_then(Actor::pop_step) else {
            return Err(Violation {
                schedule,
                message: format!("scheduler picked finished actor #{chosen}"),
            });
        };
        (entry.run)(&mut state);
        pcs[chosen] += 1;
        if let Err(why) = check_step(&state) {
            let at = schedule.len() - 1;
            let name = actors[chosen].name().to_string();
            return Err(Violation {
                schedule,
                message: step_violation_message(at, &name, &why),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::explore::{explore, Access, Actor, Mode, Report};

    /// Fully-conflicting steps (unannotated): DPOR must degenerate to
    /// exhaustive — every interleaving is its own trace.
    #[test]
    fn unannotated_dpor_degenerates_to_exhaustive() {
        let build = || {
            let actors = (0..2)
                .map(|i| {
                    Actor::new(format!("w{i}"))
                        .then(move |s: &mut u64| *s += 1 << (8 * i))
                        .then(move |s: &mut u64| *s += 1 << (8 * i))
                })
                .collect();
            (0u64, actors)
        };
        let dpor = explore(
            Mode::Dpor {
                max_schedules: 1_000,
            },
            build,
            |_| Ok(()),
            |_| Ok(()),
        )
        .expect("nothing to violate");
        assert!(dpor.exhausted);
        assert_eq!(
            dpor.traces_explored, 6,
            "all C(4,2) interleavings are distinct traces: {dpor:?}"
        );
        assert_eq!(dpor.interleavings, 6);
    }

    /// Two actors on disjoint objects: one trace, one run, full-space
    /// reduction.
    #[test]
    fn disjoint_writers_collapse_to_one_trace() {
        let build = || {
            let actors = vec![
                Actor::new("a")
                    .then_accessing(|s: &mut (u64, u64)| s.0 += 1, &[Access::Write("a")])
                    .then_accessing(|s: &mut (u64, u64)| s.0 += 1, &[Access::Write("a")])
                    .then_accessing(|s: &mut (u64, u64)| s.0 += 1, &[Access::Write("a")]),
                Actor::new("b")
                    .then_accessing(|s: &mut (u64, u64)| s.1 += 1, &[Access::Write("b")])
                    .then_accessing(|s: &mut (u64, u64)| s.1 += 1, &[Access::Write("b")])
                    .then_accessing(|s: &mut (u64, u64)| s.1 += 1, &[Access::Write("b")]),
            ];
            ((0u64, 0u64), actors)
        };
        let report: Report = explore(
            Mode::Dpor {
                max_schedules: 1_000,
            },
            build,
            |_| Ok(()),
            |s| {
                if *s == (3, 3) {
                    Ok(())
                } else {
                    Err(format!("bad totals {s:?}"))
                }
            },
        )
        .expect("independent increments cannot conflict");
        assert!(report.exhausted);
        assert_eq!(report.traces_explored, 1, "{report:?}");
        assert_eq!(report.schedules, 1, "no sleep-blocked noise: {report:?}");
        assert_eq!(report.interleavings, 20, "C(6,3) full space");
        assert_eq!(report.schedules_pruned, 19);
        assert!(report.reduction_ratio() >= 20.0);
    }

    /// The annotated lost update: reads and writes of one object still
    /// conflict, so DPOR finds the same violation exhaustive does.
    #[test]
    fn dpor_finds_the_annotated_lost_update() {
        let build = || {
            let actors = (0..2)
                .map(|i| {
                    Actor::new(format!("inc-{i}"))
                        .then_accessing(
                            move |s: &mut (u64, [u64; 2])| s.1[i] = s.0,
                            &[Access::Read("val")],
                        )
                        .then_accessing(
                            move |s: &mut (u64, [u64; 2])| s.0 = s.1[i] + 1,
                            &[Access::Write("val")],
                        )
                })
                .collect();
            ((0u64, [0u64; 2]), actors)
        };
        let check = |s: &mut (u64, [u64; 2])| {
            if s.0 == 2 {
                Ok(())
            } else {
                Err(format!("lost update: val={}", s.0))
            }
        };
        let violation = explore(
            Mode::Dpor {
                max_schedules: 1_000,
            },
            build,
            |_| Ok(()),
            check,
        )
        .expect_err("the read-read-write-write schedule loses an update");
        assert!(violation.message.contains("lost update"), "{violation}");
        // The witness replays identically, mode notwithstanding.
        let replayed = crate::explore::replay(&violation.schedule, build, |_| Ok(()), check)
            .expect_err("replay must reproduce");
        assert_eq!(replayed.message, violation.message);
    }

    /// A mixed space — two independent pairs, conflicts within each
    /// pair: reduction without losing the per-pair interleavings.
    #[test]
    fn two_independent_pairs_multiply_down() {
        let build = || {
            let mut actors = Vec::new();
            for (pair, obj) in ["left", "right"].iter().enumerate() {
                actors.push(
                    Actor::new(format!("w-{obj}"))
                        .then_accessing(move |s: &mut [u64; 2]| s[pair] += 1, &[Access::Write(obj)])
                        .then_accessing(
                            move |s: &mut [u64; 2]| s[pair] += 1,
                            &[Access::Write(obj)],
                        ),
                );
                actors.push(Actor::new(format!("r-{obj}")).then_accessing(
                    move |s: &mut [u64; 2]| {
                        let _ = s[pair];
                    },
                    &[Access::Read(obj)],
                ));
            }
            ([0u64; 2], actors)
        };
        let report = explore(
            Mode::Dpor {
                max_schedules: 100_000,
            },
            build,
            |_| Ok(()),
            |s| {
                if *s == [2, 2] {
                    Ok(())
                } else {
                    Err(format!("bad totals {s:?}"))
                }
            },
        )
        .expect("no invariant to break");
        assert!(report.exhausted);
        // Each pair alone has 3 traces (reader before/between/after the
        // writes); the pairs are mutually independent, so the product
        // space has 9 traces vs C(6,2)·C(4,2)/... = 180 interleavings.
        assert_eq!(report.interleavings, 180);
        assert_eq!(report.traces_explored, 9, "{report:?}");
        assert!(
            report.reduction_ratio() >= 2.0,
            "ratio {} on {report:?}",
            report.reduction_ratio()
        );
    }

    /// Dpor + fingerprinting still exhausts and still finds violations
    /// (the conservative backtrack sweep at prune points keeps races).
    #[test]
    fn dpor_with_fingerprint_keeps_coverage() {
        let build = || {
            let actors = (0..2)
                .map(|i| {
                    Actor::new(format!("inc-{i}"))
                        .then_accessing(
                            move |s: &mut (u64, [u64; 2])| s.1[i] = s.0,
                            &[Access::Read("val")],
                        )
                        .then_accessing(
                            move |s: &mut (u64, [u64; 2])| s.0 = s.1[i] + 1,
                            &[Access::Write("val")],
                        )
                })
                .collect();
            ((0u64, [0u64; 2]), actors)
        };
        #[allow(clippy::type_complexity)]
        let check: fn(&mut (u64, [u64; 2])) -> Result<(), String> = |s| {
            if s.0 == 2 {
                Ok(())
            } else {
                Err(format!("lost update: val={}", s.0))
            }
        };
        let violation = crate::explore::explore_hashed(
            Mode::Dpor {
                max_schedules: 1_000,
            },
            build,
            |_| Ok(()),
            check,
        )
        .expect_err("fingerprinting must not hide the lost update");
        assert!(violation.message.contains("lost update"), "{violation}");
    }
}
