//! Deterministic pseudo-randomness for the explorer's randomized mode.
//!
//! SplitMix64 (Steele, Lea, Flood — "Fast splittable pseudorandom number
//! generators", OOPSLA 2014): tiny, full-period over 2^64 seeds, and —
//! unlike anything seeded from time or `RandomState` — bit-for-bit
//! reproducible across runs, which is the whole point of a *replayable*
//! schedule explorer. The vendored `rand` stub is not used here so this
//! crate stays dependency-free.

/// A SplitMix64 generator. Same seed ⇒ same sequence, on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed is valid (including 0).
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n`. `n` must be nonzero.
    ///
    /// Plain modulo — the bias for the explorer's tiny `n` (a handful of
    /// runnable actors) is ~2⁻⁶⁰ and irrelevant to schedule coverage.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0) is meaningless");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_stays_in_range_and_hits_all_values() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below(5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
    }
}
