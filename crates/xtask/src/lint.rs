//! The workspace lint rules.
//!
//! Six concurrency-hygiene checks over the scanner's per-line
//! code/comment streams (see `scan.rs`); `#[cfg(test)] mod` regions and
//! `tests/` / `benches/` trees are exempt. Findings are machine-readable
//! (`--format json`) and any finding fails the run — the rules encode
//! review policy, not style taste:
//!
//! * `safety-comment` — every `unsafe` token carries a `SAFETY:` comment
//!   (same line or within the 5 lines above).
//! * `ordering-comment` — every non-`SeqCst` atomic ordering
//!   (`Relaxed` / `Acquire` / `Release` / `AcqRel`) carries an
//!   `ORDERING:` comment explaining why that strength suffices. `SeqCst`
//!   is exempt: it is the conservative default, the others are claims.
//! * `server-no-panic` — no `.unwrap()` / `.expect("…")` in
//!   `crates/server/src` (the request path) or `crates/reuse/src` (the
//!   reuse cache runs inside that path): a panic there kills a
//!   connection handler, not a test.
//! * `engine-no-sleep` — no `thread::sleep` in `crates/engine/src` hot
//!   paths; blocking a pool worker stalls a whole partition.
//! * `contiguous-mask` — every literal way-mask (`WayMask::new(0x…)` or
//!   a `const …MASK… = 0x…`) is non-empty and contiguous, the CAT
//!   hardware constraint `schemata` writes must satisfy.
//! * `signal-safe` — every `extern "C" fn` in `crates/flight/src` (the
//!   SIGPROF handler and anything shaped like one) carries an
//!   `// ASYNC-SIGNAL-SAFE:` comment, and its body is free of tokens
//!   that allocate, lock or panic (`format!`, `Box::new`, `.lock(`,
//!   `.unwrap()`, …) — none of which are async-signal-safe.
//! * `verify-annotated` — model-check harnesses in
//!   `crates/verify/tests/` declare each step's access set with
//!   `then_accessing(…)`; a bare `then(…)` silently pins the step to
//!   "conflicts with everything", so it needs an `// UNANNOTATED:`
//!   comment justifying why no access set is declarable (the only lint
//!   scope inside a `tests/` tree — harness files are exempt from the
//!   hygiene rules above but not from this one).

use crate::scan::{scan, FileScan};
use std::fmt;
use std::path::{Path, PathBuf};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier.
    pub rule: &'static str,
    /// File the violation is in (as given to the walker).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// Serializes the finding as one JSON object (hand-rolled; findings
    /// contain no exotic characters beyond what `escape` covers).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.chars()
                .flat_map(|c| match c {
                    '"' => "\\\"".chars().collect::<Vec<_>>(),
                    '\\' => "\\\\".chars().collect(),
                    '\n' => "\\n".chars().collect(),
                    c => vec![c],
                })
                .collect()
        }
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            self.rule,
            esc(&self.file),
            self.line,
            esc(&self.message)
        )
    }
}

/// How many *code-bearing* lines above a site an annotation comment may
/// sit; comment-only and blank lines don't consume the budget, so a
/// multi-line justification doesn't push itself out of its own window.
const ANNOTATION_WINDOW: usize = 5;

/// True when `needle` occurs in `hay` as a whole word (neither neighbor
/// is an identifier character).
fn has_word(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre_ok = start == 0 || {
            let b = bytes[start - 1];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        let post_ok = end >= bytes.len() || {
            let b = bytes[end];
            !(b.is_ascii_alphanumeric() || b == b'_')
        };
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// True when a comment on `line`, or above it within
/// [`ANNOTATION_WINDOW`] code-bearing lines, contains `tag`.
fn annotated(scan: &FileScan, line: usize, tag: &str) -> bool {
    if scan.comments[line].contains(tag) {
        return true;
    }
    let mut budget = ANNOTATION_WINDOW;
    for l in (0..line).rev() {
        if scan.comments[l].contains(tag) {
            return true;
        }
        if !scan.code[l].trim().is_empty() {
            budget -= 1;
            if budget == 0 {
                return false;
            }
        }
    }
    false
}

/// Extracts the integer literal starting at `code[at..]` (skipping
/// leading whitespace); returns `None` when the next token is not a
/// literal (e.g. a variable).
fn int_literal_after(code: &str, at: usize) -> Option<u64> {
    let rest = code[at..].trim_start();
    let (radix, digits) = if let Some(h) = rest.strip_prefix("0x").or(rest.strip_prefix("0X")) {
        (16, h)
    } else if let Some(b) = rest.strip_prefix("0b") {
        (2, b)
    } else {
        (10, rest)
    };
    let tok: String = digits
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    // Strip a type suffix like `u32` if present.
    let tok = tok
        .find(|c: char| !c.is_digit(radix))
        .map(|i| &tok[..i])
        .unwrap_or(&tok);
    if tok.is_empty() {
        return None;
    }
    u64::from_str_radix(tok, radix).ok()
}

fn mask_is_contiguous(bits: u64) -> bool {
    if bits == 0 {
        return false;
    }
    let shifted = bits >> bits.trailing_zeros();
    shifted & (shifted + 1) == 0
}

/// Tokens forbidden inside a signal-handler body: each one allocates,
/// takes a lock, or can panic — all undefined behaviour (or a deadlock
/// waiting to happen) when the interrupted thread holds the allocator
/// or a mutex the handler then re-enters.
const SIGNAL_UNSAFE_TOKENS: &[&str] = &[
    "format!",
    "println!",
    "eprintln!",
    "panic!",
    "String::",
    ".to_string(",
    "Vec::",
    "vec!",
    "Box::new",
    ".lock(",
    ".unwrap()",
    ".expect(\"",
    "Mutex",
    "RwLock",
];

/// The `signal-safe` rule: every `extern "C" fn` in the flight crate
/// must be annotated `// ASYNC-SIGNAL-SAFE:` (stating the argument for
/// why every operation in it is safe in signal context), and its body —
/// tracked by brace depth from the signature to the matching close —
/// must not contain any [`SIGNAL_UNSAFE_TOKENS`].
fn signal_safe_findings(path: &str, scan_result: &FileScan) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut line = 0;
    while line < scan_result.lines() {
        let code = &scan_result.code[line];
        // The scanner blanks string contents, so `extern "C" fn` (or any
        // other ABI string) appears as `extern "" fn` in the code stream.
        if scan_result.in_test[line] || !code.contains("extern \"\" fn") {
            line += 1;
            continue;
        }
        if !annotated(scan_result, line, "ASYNC-SIGNAL-SAFE:") {
            findings.push(Finding {
                rule: "signal-safe",
                file: path.to_string(),
                line: line + 1,
                message: "`extern \"C\" fn` without an `// ASYNC-SIGNAL-SAFE:` comment arguing \
                          every operation is legal in signal context"
                    .into(),
            });
        }
        // Walk the handler body: from the signature line to the brace
        // that closes it, every line is signal context.
        let mut depth = 0usize;
        let mut entered = false;
        let mut l = line;
        while l < scan_result.lines() {
            let body = &scan_result.code[l];
            for tok in SIGNAL_UNSAFE_TOKENS {
                if body.contains(tok) {
                    findings.push(Finding {
                        rule: "signal-safe",
                        file: path.to_string(),
                        line: l + 1,
                        message: format!(
                            "`{tok}` inside a signal handler — allocation, locking and \
                             panicking are not async-signal-safe"
                        ),
                    });
                }
            }
            for ch in body.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            if entered && depth == 0 {
                break;
            }
            l += 1;
        }
        line = l + 1;
    }
    findings
}

/// The `verify-annotated` rule: a bare `.then(` in a verify harness
/// means the step's dependency footprint was never declared — DPOR then
/// serializes it against every other step. Either annotate the access
/// set with `then_accessing(…)` or justify the default with an
/// `// UNANNOTATED:` comment (steps driving real threads, for example,
/// have no declarable read/write set).
fn verify_annotated_findings(path: &str, scan_result: &FileScan) -> Vec<Finding> {
    let mut findings = Vec::new();
    for line in 0..scan_result.lines() {
        if scan_result.code[line].contains(".then(")
            && !annotated(scan_result, line, "UNANNOTATED:")
        {
            findings.push(Finding {
                rule: "verify-annotated",
                file: path.to_string(),
                line: line + 1,
                message: "bare `then(…)` in a model-check harness — declare the step's access \
                          set with `then_accessing(…)` so DPOR can exploit independence, or \
                          justify conflicts-with-everything with an `// UNANNOTATED:` comment"
                    .into(),
            });
        }
    }
    findings
}

/// Runs every rule over one scanned file. `path` decides rule scope.
pub fn lint_file(path: &str, scan_result: &FileScan) -> Vec<Finding> {
    let mut findings = Vec::new();
    let norm = path.replace('\\', "/");
    // Harness files are whole-file test code: the concurrency-hygiene
    // rules below don't apply there, the annotation discipline does.
    if norm.contains("crates/verify/tests") {
        return verify_annotated_findings(path, scan_result);
    }
    // The reuse cache executes inside the server's request path, so it
    // inherits the same no-panic discipline.
    let in_server_src = norm.contains("crates/server/src") || norm.contains("crates/reuse/src");
    let in_engine_src = norm.contains("crates/engine/src");
    if norm.contains("crates/flight/src") {
        findings.extend(signal_safe_findings(path, scan_result));
    }
    let finding = |rule, line, message: String| Finding {
        rule,
        file: path.to_string(),
        line: line + 1,
        message,
    };

    for line in 0..scan_result.lines() {
        if scan_result.in_test[line] {
            continue;
        }
        let code = &scan_result.code[line];

        if has_word(code, "unsafe") && !annotated(scan_result, line, "SAFETY:") {
            findings.push(finding(
                "safety-comment",
                line,
                "`unsafe` without a `// SAFETY:` comment justifying the invariants".into(),
            ));
        }

        for ord in ["Relaxed", "Acquire", "Release", "AcqRel"] {
            if code.contains(&format!("Ordering::{ord}"))
                && !annotated(scan_result, line, "ORDERING:")
            {
                findings.push(finding(
                    "ordering-comment",
                    line,
                    format!(
                        "`Ordering::{ord}` without a `// ORDERING:` comment explaining why \
                         this strength suffices"
                    ),
                ));
                break; // one finding per line, not per ordering token
            }
        }

        if in_server_src {
            if code.contains(".unwrap()") {
                findings.push(finding(
                    "server-no-panic",
                    line,
                    "`.unwrap()` in the request path — return an error instead".into(),
                ));
            }
            // `.expect("` only: `self.expect(b'{', …)` (the JSON parser's
            // own method) takes a byte literal, not a string.
            if code.contains(".expect(\"") {
                findings.push(finding(
                    "server-no-panic",
                    line,
                    "`.expect(…)` in the request path — return an error instead".into(),
                ));
            }
        }

        if in_engine_src && code.contains("thread::sleep") {
            findings.push(finding(
                "engine-no-sleep",
                line,
                "`thread::sleep` in an engine hot path blocks a pool worker".into(),
            ));
        }

        let mut from = 0;
        while let Some(pos) = code[from..].find("WayMask::new(") {
            let at = from + pos + "WayMask::new(".len();
            if let Some(bits) = int_literal_after(code, at) {
                if !mask_is_contiguous(bits) {
                    findings.push(finding(
                        "contiguous-mask",
                        line,
                        format!(
                            "way-mask literal {bits:#x} is {} — CAT schemata masks must be \
                             one contiguous run of set bits",
                            if bits == 0 { "empty" } else { "non-contiguous" }
                        ),
                    ));
                }
            }
            from = at;
        }
        // `const PAPER_POLLUTER_MASK: u32 = 0x3;` style definitions.
        if let Some(pos) = code.find("const ") {
            let rest = &code[pos..];
            if let Some(eq) = rest.find('=') {
                let name = &rest[..eq];
                if name.contains("MASK") {
                    if let Some(bits) = int_literal_after(rest, eq + 1) {
                        if !mask_is_contiguous(bits) {
                            findings.push(finding(
                                "contiguous-mask",
                                line,
                                format!(
                                    "mask constant {bits:#x} is {} — CAT schemata masks must \
                                     be one contiguous run of set bits",
                                    if bits == 0 { "empty" } else { "non-contiguous" }
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    findings
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git", "tests", "benches"];

/// Collects every `.rs` file under `roots`, skipping [`SKIP_DIRS`].
pub fn collect_rs_files(roots: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack: Vec<PathBuf> = roots.to_vec();
    while let Some(p) = stack.pop() {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) && !roots.contains(&p) {
                // `crates/verify/tests` is lint scope (the
                // `verify-annotated` rule); every other tests/ tree —
                // and everything else in SKIP_DIRS — stays exempt.
                let under_verify = p
                    .parent()
                    .and_then(|d| d.file_name())
                    .and_then(|n| n.to_str())
                    == Some("verify");
                if !(name == "tests" && under_verify) {
                    continue;
                }
            }
            for entry in std::fs::read_dir(&p)? {
                stack.push(entry?.path());
            }
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    out.sort();
    Ok(out)
}

/// Lints every `.rs` file under `roots`; `Err` carries I/O problems, a
/// non-empty `Ok` carries the findings.
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in collect_rs_files(roots)? {
        let src = std::fs::read_to_string(&file)?;
        let scanned = scan(&src);
        findings.extend(lint_file(&file.display().to_string(), &scanned));
    }
    Ok(findings)
}

/// The workspace's default lint roots, relative to the repo root.
pub fn default_roots(repo_root: &Path) -> Vec<PathBuf> {
    vec![repo_root.join("crates"), repo_root.join("src")]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_src(path: &str, src: &str) -> Vec<Finding> {
        lint_file(path, &scan(src))
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let f = lint_src("crates/x/src/a.rs", "unsafe { do_it() }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "safety-comment");
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let f = lint_src(
            "crates/x/src/a.rs",
            "// SAFETY: the handler only calls async-signal-safe functions.\nunsafe { do_it() }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn forbid_unsafe_code_attribute_is_not_unsafe() {
        let f = lint_src("crates/x/src/a.rs", "#![forbid(unsafe_code)]\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn relaxed_ordering_needs_a_comment_but_seqcst_does_not() {
        let f = lint_src(
            "crates/x/src/a.rs",
            "x.load(Ordering::Relaxed);\ny.load(Ordering::SeqCst);\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-comment");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn ordering_comment_within_window_passes() {
        let f = lint_src(
            "crates/x/src/a.rs",
            "// ORDERING: monotone counter, no other state depends on it.\n\
             x.fetch_add(1, Ordering::Relaxed);\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_is_scoped_to_server_src() {
        let src = "let v = m.lock().unwrap();\n";
        assert_eq!(lint_src("crates/server/src/a.rs", src).len(), 1);
        assert!(lint_src("crates/engine/src/a.rs", src).is_empty());
    }

    #[test]
    fn reuse_src_inherits_the_no_panic_rule() {
        // The reuse cache runs inside the server's request path.
        let src = "let v = m.lock().unwrap();\n";
        let f = lint_src("crates/reuse/src/cache.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "server-no-panic");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let f = lint_src(
            "crates/server/src/a.rs",
            "let v = m.lock().unwrap_or_else(PoisonError::into_inner);\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn expect_method_with_byte_arg_is_not_flagged() {
        // The JSON parser has its own `expect(b'{', …)` — not a panic.
        let f = lint_src("crates/server/src/json.rs", "self.expect(b'{')?;\n");
        assert!(f.is_empty(), "{f:?}");
        let g = lint_src(
            "crates/server/src/json.rs",
            "let v = o.expect(\"present\");\n",
        );
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].rule, "server-no-panic");
    }

    #[test]
    fn sleep_is_scoped_to_engine_src() {
        let src = "std::thread::sleep(Duration::from_millis(1));\n";
        assert_eq!(lint_src("crates/engine/src/a.rs", src).len(), 1);
        assert!(lint_src("crates/server/src/a.rs", src).is_empty());
    }

    #[test]
    fn non_contiguous_and_empty_masks_are_flagged() {
        let f = lint_src("crates/x/src/a.rs", "WayMask::new(0x5)\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "contiguous-mask");
        let g = lint_src("crates/x/src/a.rs", "WayMask::new(0x0)\n");
        assert_eq!(g.len(), 1);
        let ok = lint_src(
            "crates/x/src/a.rs",
            "WayMask::new(0x3); WayMask::new(0xfff0); WayMask::new(bits)\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn mask_constants_are_validated() {
        let f = lint_src("crates/x/src/a.rs", "pub const BAD_MASK: u32 = 0b1010;\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "contiguous-mask");
        let ok = lint_src(
            "crates/x/src/a.rs",
            "pub const PAPER_POLLUTER_MASK: u32 = 0x3;\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn unannotated_signal_handler_is_flagged_in_flight_src_only() {
        let src = "extern \"C\" fn on_sig(sig: i32) {\n    count(sig);\n}\n";
        let f = lint_src("crates/flight/src/profiler.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "signal-safe");
        assert!(f[0].message.contains("ASYNC-SIGNAL-SAFE"));
        // The rule is scoped: the same code elsewhere is fine.
        assert!(lint_src("crates/engine/src/a.rs", src).is_empty());
    }

    #[test]
    fn annotated_clean_handler_passes() {
        let src = "// ASYNC-SIGNAL-SAFE: only atomic stores and TLS reads.\n\
                   extern \"C\" fn on_sig(sig: i32) {\n    HITS.fetch_add(1, SeqCst);\n}\n";
        let f = lint_src("crates/flight/src/profiler.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allocation_inside_handler_body_is_flagged() {
        let src = "// ASYNC-SIGNAL-SAFE: it is not, and the lint must say so.\n\
                   extern \"C\" fn on_sig(sig: i32) {\n\
                   \x20   let msg = format!(\"sig {sig}\");\n\
                   \x20   QUEUE.lock(msg);\n\
                   }\n\
                   fn after() { let ok = format!(\"outside\"); }\n";
        let f = lint_src("crates/flight/src/profiler.rs", src);
        // format! and .lock( inside the body fire; the format! *after*
        // the closing brace does not.
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|v| v.rule == "signal-safe"));
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); y.load(Ordering::Relaxed); }\n}\n";
        assert!(lint_src("crates/server/src/a.rs", src).is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_false_positive() {
        let src = "let s = \"unsafe Ordering::Relaxed .unwrap()\"; // unsafe in prose\n";
        assert!(lint_src("crates/server/src/a.rs", src).is_empty());
    }

    #[test]
    fn json_output_is_well_formed() {
        let f = Finding {
            rule: "safety-comment",
            file: "a \"b\".rs".into(),
            line: 3,
            message: "needs\n`// SAFETY:`".into(),
        };
        assert_eq!(
            f.to_json(),
            "{\"rule\":\"safety-comment\",\"file\":\"a \\\"b\\\".rs\",\"line\":3,\
             \"message\":\"needs\\n`// SAFETY:`\"}"
        );
    }

    #[test]
    fn bare_then_is_flagged_in_verify_tests_only() {
        let src = "let w = Actor::new(\"w\").then(|s: &mut u64| *s += 1);\n";
        let f = lint_src("crates/verify/tests/span_ring.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "verify-annotated");
        // Outside the harness tree the rule is silent (and `.then(` on
        // futures/options elsewhere is none of our business).
        assert!(lint_src("crates/server/src/a.rs", src).is_empty());
    }

    #[test]
    fn tagged_or_annotated_then_passes_and_hygiene_rules_stay_out() {
        let src = "// UNANNOTATED: drives a real background thread.\n\
                   let w = Actor::new(\"w\").then(step);\n\
                   let v = Actor::new(\"v\").then_accessing(step, &[Access::Write(\"x\")]);\n\
                   x.load(Ordering::Relaxed); y.unwrap();\n";
        // The Relaxed load and unwrap would trip the hygiene rules in
        // src scope; in a harness file only the annotation rule runs.
        let f = lint_src("crates/verify/tests/span_ring.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn verify_tests_are_walked_despite_the_tests_skip() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let files = collect_rs_files(&[root]).expect("fixtures readable");
        assert!(
            files
                .iter()
                .any(|p| p.to_string_lossy().contains("verify/tests")),
            "walker must descend into crates/verify/tests: {files:?}"
        );
    }

    #[test]
    fn fixtures_seeded_violations_all_fire() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let findings = lint_paths(&[root]).expect("fixtures readable");
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        for rule in [
            "safety-comment",
            "ordering-comment",
            "server-no-panic",
            "engine-no-sleep",
            "contiguous-mask",
            "signal-safe",
            "verify-annotated",
        ] {
            assert!(
                rules.contains(&rule),
                "seeded fixture must trip `{rule}`; got {rules:?}"
            );
        }
    }

    #[test]
    fn fixtures_clean_file_is_clean() {
        let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let findings = lint_paths(&[root.join("clean.rs")]).expect("fixture readable");
        assert!(findings.is_empty(), "{findings:?}");
        let harness = root.join("crates/verify/tests/clean_annotated.rs");
        let findings = lint_paths(&[harness]).expect("fixture readable");
        assert!(findings.is_empty(), "{findings:?}");
    }
}
