//! Workspace automation entry point, invoked as `cargo xtask <command>`
//! via the alias in `.cargo/config.toml`.
//!
//! Commands:
//!
//! * `lint [--format human|json] [paths…]` — run the static
//!   concurrency-hygiene checks (see `lint.rs`). Default paths are
//!   `crates/` and `src/` relative to the workspace root; pass explicit
//!   paths (e.g. `crates/xtask/fixtures`) to lint something else, such
//!   as the seeded-violation fixtures in CI. Exits `1` when findings
//!   exist, `2` on usage or I/O errors.

mod lint;
mod scan;

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--format human|json] [paths...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        _ => usage(),
    }
}

/// The workspace root: `cargo xtask` runs with the manifest dir of this
/// crate, two levels below the root; direct `cargo run -p xtask`
/// invocations from the root work identically.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn run_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("human") => json = false,
                _ => return usage(),
            },
            "--json" => json = true,
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag: {flag}");
                return usage();
            }
            p => paths.push(PathBuf::from(p)),
        }
    }
    if paths.is_empty() {
        paths = lint::default_roots(&repo_root());
    }
    let findings = match lint::lint_paths(&paths) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("[");
        for (i, f) in findings.iter().enumerate() {
            let sep = if i + 1 < findings.len() { "," } else { "" };
            println!("  {}{sep}", f.to_json());
        }
        println!("]");
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!(
            "lint: {} finding{} across {} path{}",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            paths.len(),
            if paths.len() == 1 { "" } else { "s" },
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
