//! A hand-rolled Rust token scanner: just enough lexing to separate
//! *code* from *comments* and blank out string/char contents, line by
//! line, without pulling in `syn` (the workspace vendors no proc-macro
//! stack and the lint only needs token-level facts).
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string/byte-string literals with escapes, raw strings (`r#"…"#`, any
//! hash depth), char and byte-char literals, and the lifetime-vs-char
//! ambiguity (`'a` vs `'a'`). String and char *contents* are removed
//! from the code stream but their delimiters are kept, so patterns like
//! `.expect("` remain matchable while `self.expect(b'{', …)` — a method
//! that merely shares the name — does not produce a false `"`.

/// Per-line views of one source file.
pub struct FileScan {
    /// Code with comments stripped and literal contents blanked.
    pub code: Vec<String>,
    /// Concatenated comment text per line (both `//…` and `/*…*/`).
    pub comments: Vec<String>,
    /// Lines inside a `#[cfg(test)] mod … { … }` region.
    pub in_test: Vec<bool>,
}

impl FileScan {
    /// Number of lines scanned.
    pub fn lines(&self) -> usize {
        self.code.len()
    }
}

/// Scans one file's source text.
pub fn scan(src: &str) -> FileScan {
    let chars: Vec<char> = src.chars().collect();
    let mut code: Vec<String> = vec![String::new()];
    let mut comments: Vec<String> = vec![String::new()];
    let newline = |code: &mut Vec<String>, comments: &mut Vec<String>| {
        code.push(String::new());
        comments.push(String::new());
    };

    #[derive(PartialEq)]
    enum St {
        Normal,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Chr,
    }
    let mut st = St::Normal;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Normal;
            }
            newline(&mut code, &mut comments);
            i += 1;
            continue;
        }
        let line = code.len() - 1;
        match st {
            St::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    // Plain or byte string; the `b`/`r` prefix, if any, was
                    // already emitted as code.
                    code[line].push('"');
                    // `r"` / `r#"` raw strings: look back over emitted code
                    // for the prefix to learn the hash count.
                    let mut hashes = 0;
                    let mut j = i;
                    while j > 0 && chars[j - 1] == '#' {
                        hashes += 1;
                        j -= 1;
                    }
                    let is_raw = (j > 0
                        && chars[j - 1] == 'r'
                        && !(j >= 2 && (chars[j - 2].is_alphanumeric() || chars[j - 2] == '_')))
                        || (j >= 2
                            && chars[j - 1] == 'r'
                            && chars[j - 2] == 'b'
                            && !(j >= 3
                                && (chars[j - 3].is_alphanumeric() || chars[j - 3] == '_')));
                    st = if is_raw { St::RawStr(hashes) } else { St::Str };
                    i += 1;
                    continue;
                }
                if c == '\'' {
                    // Char literal or lifetime? A char literal closes with a
                    // quote after one (possibly escaped) character.
                    if next == Some('\\') {
                        code[line].push('\'');
                        st = St::Chr;
                        i += 3; // skip quote, backslash, AND the escaped
                                // char, so `'\''` closes at the right quote
                        continue;
                    }
                    if next.is_some() && chars.get(i + 2).copied() == Some('\'') {
                        code[line].push_str("''");
                        i += 3;
                        continue;
                    }
                    // Lifetime (or `'static` etc.): emit and move on.
                    code[line].push('\'');
                    i += 1;
                    continue;
                }
                code[line].push(c);
                i += 1;
            }
            St::LineComment => {
                comments[line].push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Normal
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comments[line].push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    // A `\` before a physical newline is a line
                    // continuation; the skipped newline must still
                    // advance the line streams or every later finding
                    // points at the wrong line.
                    if chars.get(i + 1) == Some(&'\n') {
                        newline(&mut code, &mut comments);
                    }
                    i += 2; // skip the escaped char (even a quote)
                } else if c == '"' {
                    code[line].push('"');
                    st = St::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    code[line].push('"');
                    st = St::Normal;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            St::Chr => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    code[line].push('\'');
                    st = St::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }

    let in_test = mark_test_regions(&code);
    FileScan {
        code,
        comments,
        in_test,
    }
}

/// Marks the brace-matched body of every `#[cfg(test)] mod …` item (the
/// idiomatic unit-test module) so lint rules can skip test-only code.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut line = 0;
    while line < code.len() {
        if !code[line].contains("#[cfg(test)]") {
            line += 1;
            continue;
        }
        // The attribute must introduce a `mod` (same line or within the
        // next two); `#[cfg(test)]` on a `use` or `fn` is left alone.
        let mod_line = (line..code.len().min(line + 3)).find(|&l| {
            code[l]
                .split(|ch: char| !ch.is_alphanumeric() && ch != '_')
                .any(|w| w == "mod")
        });
        let Some(start) = mod_line else {
            line += 1;
            continue;
        };
        // Brace-match from the module's opening brace.
        let mut depth = 0i64;
        let mut opened = false;
        let mut l = start;
        while l < code.len() {
            for ch in code[l].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            in_test[l] = true;
            if opened && depth <= 0 {
                break;
            }
            l += 1;
        }
        in_test[line] = true;
        line = l + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_from_code() {
        let s = scan("let x = 1; // trailing note\n/* block */ let y = 2;\n");
        assert_eq!(s.code[0].trim(), "let x = 1;");
        assert!(s.comments[0].contains("trailing note"));
        assert_eq!(s.code[1].trim(), "let y = 2;");
        assert!(s.comments[1].contains("block"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let s = scan("/* a /* b */ c */ let z = 3;\n");
        assert_eq!(s.code[0].trim(), "let z = 3;");
    }

    #[test]
    fn string_contents_are_blanked_but_delimiters_kept() {
        let s = scan("call(\"// not a comment\", '\\n', b'{');\n");
        assert_eq!(s.code[0], "call(\"\", '', b'');");
        assert!(s.comments[0].is_empty());
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let s = scan("let r = r#\"has \" quote and // slashes\"#; done();\n");
        assert!(s.code[0].contains("done();"));
        assert!(!s.code[0].contains("slashes"));
        assert!(s.comments[0].is_empty());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(s.code[0].contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_derail() {
        let s = scan("let q = '\\''; after();\n");
        assert!(s.code[0].contains("after();"));
    }

    #[test]
    fn string_line_continuations_keep_line_numbers() {
        let s = scan("let m = \"a\\\n   b\\\n   c\";\nafter();\n");
        assert_eq!(s.lines(), 5); // 4 source lines + trailing empty
        assert!(s.code[3].contains("after();"));
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let s = scan(src);
        assert!(!s.in_test[0]);
        assert!(s.in_test[1] && s.in_test[2] && s.in_test[3] && s.in_test[4]);
        assert!(!s.in_test[5]);
    }

    #[test]
    fn cfg_test_on_a_use_is_not_a_region() {
        let s = scan("#[cfg(test)]\nuse std::fmt;\nfn prod() {}\n");
        assert!(!s.in_test[2]);
    }
}
