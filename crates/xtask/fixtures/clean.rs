// Negative-control fixture: exercises every rule's *annotated* form and
// known look-alikes; the lint must report zero findings here. Never
// compiled.
#![forbid(unsafe_code)] // the `unsafe_code` token is not the `unsafe` keyword

// SAFETY: the handler only calls async-signal-safe functions and the
// registration happens before any thread is spawned.
pub fn install() {
    unsafe { register() };
}

// ORDERING: monotone statistics counter; readers tolerate staleness and
// no other memory depends on its value.
pub fn bump(counter: &std::sync::atomic::AtomicU64) {
    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

pub fn strict(flag: &std::sync::atomic::AtomicBool) {
    // SeqCst needs no annotation: it is the conservative default.
    flag.store(true, std::sync::atomic::Ordering::SeqCst);
}

pub fn masks() {
    // Contiguous masks, in every radix the workspace uses.
    let _ = WayMask::new(0x3);
    let _ = WayMask::new(0xfff);
    let _ = WayMask::new(0b1110);
    let _ = WayMask::new(dynamic_bits()); // non-literal: out of scope
}

pub const GOOD_MASK: u32 = 0xfffff;

pub fn prose() {
    // Strings and comments may mention unsafe, .unwrap() and
    // Ordering::Relaxed freely — prose is not code.
    let _ = "unsafe { Ordering::Relaxed.unwrap() }";
    let _ = r#"thread::sleep in a raw string, with a stray " quote"#;
}

#[cfg(test)]
mod tests {
    // Test regions are exempt from every rule.
    #[test]
    fn tests_may_unwrap_and_sleep() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _ = x.load(std::sync::atomic::Ordering::Relaxed);
    }
}

fn register() {}
fn dynamic_bits() -> u32 {
    0x3
}
