// Seeded lint violations — this file is a test fixture, never compiled
// (the `fixtures/` directory is not part of any module tree and the
// default lint walk skips it). `cargo xtask lint crates/xtask/fixtures`
// must exit non-zero because of this tree; the xtask self-tests assert
// every rule fires at least once.

// Violation: `unsafe` with no SAFETY comment anywhere near it.
pub fn signal_install() {
    unsafe { libc_signal(2, handler as usize) };
}

// Violation: relaxed atomic ordering with no ORDERING comment.
pub fn bump(counter: &std::sync::atomic::AtomicU64) {
    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
}

// Violation: acquire/release pair, still unannotated.
pub fn publish(flag: &std::sync::atomic::AtomicBool) {
    flag.store(true, std::sync::atomic::Ordering::Release);
    let _ = flag.load(std::sync::atomic::Ordering::Acquire);
}

// Violation: a non-contiguous way-mask literal (CAT rejects 0b101).
pub fn bad_mask() {
    let _ = WayMask::new(0x5);
}

// Violation: an empty mask constant.
pub const BROKEN_MASK: u32 = 0x0;

fn libc_signal(_: i32, _: usize) {}
fn handler() {}
