//! Clean `verify-annotated` fixture: every step either declares its
//! access set or justifies the conflicts-with-everything default. The
//! self-test asserts this file produces no findings.

fn build() -> (u64, Vec<Actor<u64>>) {
    let writer = Actor::new("writer")
        .then_accessing(|s: &mut u64| *s += 1, &[Access::Write("counter")]);
    // UNANNOTATED: this step joins a real background thread; its effects
    // are not a declarable read/write set.
    let joiner = Actor::new("joiner").then(|_s: &mut u64| {});
    (0, vec![writer, joiner])
}
