//! Seeded `verify-annotated` violation: a bare `then(…)` carrying no
//! justification tag. The self-test asserts the rule fires on this
//! file.

fn build() -> (u64, Vec<Actor<u64>>) {
    let writer = Actor::new("writer").then(|s: &mut u64| *s += 1);
    (0, vec![writer])
}
