// Seeded `engine-no-sleep` violation: the path mirrors
// `crates/engine/src`, where blocking a pool worker is forbidden. Never
// compiled.

pub fn worker_loop() {
    loop {
        // Violation: sleeping on an executor worker stalls its pool.
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}
