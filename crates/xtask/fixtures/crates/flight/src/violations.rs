// Seeded `signal-safe` violations: the path of this fixture mirrors
// `crates/flight/src`, the scope where every `extern "C" fn` is held to
// async-signal-safety. Never compiled.

// Violation: no `// ASYNC-SIGNAL-SAFE:` annotation on the handler.
extern "C" fn on_signal_unannotated(sig: i32) {
    record(sig);
}

// ASYNC-SIGNAL-SAFE: it is not — the body allocates and locks, and the
// lint must catch each token.
extern "C" fn on_signal_allocating(sig: i32) {
    // Violation: format! allocates.
    let msg = format!("caught {sig}");
    // Violation: .lock( can deadlock against the interrupted thread.
    let guard = SAMPLES.lock();
    // Violation: .unwrap() can panic in signal context.
    guard.push(msg).unwrap();
}

fn after_the_handler_normal_code_is_fine() {
    // Same tokens outside a handler body are out of the rule's scope.
    let ok = format!("not a signal context");
    drop(ok);
}
