// Seeded `server-no-panic` violations: the path of this fixture mirrors
// `crates/server/src`, the scope where panicking in the request path is
// forbidden. Never compiled.

pub fn handle(req: Option<Request>) -> Response {
    // Violation: unwrap in a request handler.
    let req = req.unwrap();
    // Violation: expect with a string message.
    let body = req.body.expect("body must be present");
    Response { body }
}
