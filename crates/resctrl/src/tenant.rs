//! Tenant identities and tenant-aware resctrl group naming.
//!
//! Fleet-scale serving means many tenants sharing one resctrl tree, so
//! every group the tenant layer creates is named
//! `ccp-<tenant>-<class>` — prefix-owned (the reconciler may sweep any
//! `ccp-` group it does not desire), parseable (a crashed process's
//! leftovers can be attributed on the next start), and collision-free
//! with the engine's per-mask `ccp-<hex>` groups (those never contain a
//! second dash followed by a class word).
//!
//! Tenant identifiers are deliberately strict: lowercase ASCII
//! alphanumerics and underscores, 1–24 characters. No dashes (the
//! group-name separator), no path metacharacters (these become kernel
//! directory names), no uppercase (header values fold). Hostile names —
//! `..`, `a/b`, empty, overlong — never reach the filesystem.

use std::fmt;

/// The tenant attributed to requests that carry no `X-CCP-Tenant`
/// header.
pub const DEFAULT_TENANT: &str = "default";

/// Every group name the tenant layer owns starts with this.
pub const GROUP_PREFIX: &str = "ccp-";

/// Tenant identifiers reserved by the system: `probe` would collide
/// with the supervisor's scratch group, `shared` names the class-shared
/// fallback, `mon` guards against `mon_groups`/`mon_data` confusion.
pub const RESERVED: &[&str] = &["probe", "shared", "mon"];

/// Longest accepted tenant identifier.
pub const MAX_TENANT_LEN: usize = 24;

/// A validated tenant identifier (see the module docs for the
/// accepted alphabet).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(String);

/// Why a tenant identifier was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadTenant(pub String);

impl fmt::Display for BadTenant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid tenant id: {}", self.0)
    }
}

impl std::error::Error for BadTenant {}

impl TenantId {
    /// Validates and wraps a tenant identifier.
    ///
    /// # Errors
    /// [`BadTenant`] on empty/overlong input, characters outside
    /// `[a-z0-9_]`, or a reserved name.
    pub fn parse(s: &str) -> Result<TenantId, BadTenant> {
        if s.is_empty() {
            return Err(BadTenant("empty".into()));
        }
        if s.len() > MAX_TENANT_LEN {
            return Err(BadTenant(format!(
                "{s:?} longer than {MAX_TENANT_LEN} characters"
            )));
        }
        if !s
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Err(BadTenant(format!(
                "{s:?} contains characters outside [a-z0-9_]"
            )));
        }
        if RESERVED.contains(&s) {
            return Err(BadTenant(format!("{s:?} is reserved")));
        }
        Ok(TenantId(s.to_string()))
    }

    /// The `default` tenant (always valid).
    pub fn default_tenant() -> TenantId {
        TenantId(DEFAULT_TENANT.to_string())
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The resctrl control-group name for this tenant's `class` slice:
    /// `ccp-<tenant>-<class>`.
    pub fn group_name(&self, class: &str) -> String {
        format!("{GROUP_PREFIX}{}-{class}", self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The CUID class labels a tenant group name may end in (the server's
/// `class_label()` values).
pub const CLASS_LABELS: &[&str] = &["polluting", "sensitive", "mixed"];

/// Parses a group name minted by [`TenantId::group_name`] back into its
/// `(tenant, class)` pair. Returns `None` for anything else — the
/// engine's `ccp-<hex>` mask groups, the supervisor's `ccp-probe`, or
/// garbage — so sweep logic can attribute ownership without false
/// positives.
pub fn parse_group_name(name: &str) -> Option<(TenantId, &'static str)> {
    let rest = name.strip_prefix(GROUP_PREFIX)?;
    let (tenant, class) = rest.rsplit_once('-')?;
    let class = CLASS_LABELS.iter().find(|&&c| c == class)?;
    let tenant = TenantId::parse(tenant).ok()?;
    Some((tenant, class))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_ids_round_trip_through_group_names() {
        for id in ["a", "tenant_1", "x9", "default", &"t".repeat(24)] {
            let t = TenantId::parse(id).unwrap();
            for class in CLASS_LABELS {
                let name = t.group_name(class);
                let (back, back_class) = parse_group_name(&name).unwrap();
                assert_eq!(back, t, "{name}");
                assert_eq!(back_class, *class);
            }
        }
    }

    #[test]
    fn hostile_ids_rejected() {
        for bad in [
            "",
            "..",
            "a/b",
            "a-b",
            "UPPER",
            "with space",
            "tenant\n",
            &"x".repeat(25),
            "probe",
            "shared",
            "mon",
        ] {
            assert!(TenantId::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn non_tenant_group_names_do_not_parse() {
        for name in [
            "ccp-3",
            "ccp-fffff",
            "ccp-probe",
            "other-a-polluting",
            "ccp-a-unknownclass",
            "ccp--polluting",
            "ccp-A-polluting",
        ] {
            assert!(parse_group_name(name).is_none(), "{name:?} must not parse");
        }
    }
}
