//! Error type for resctrl operations.

use std::fmt;

/// Everything that can go wrong talking to the resctrl filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResctrlError {
    /// The CPU does not advertise CAT (`cat_l3` flag absent) or the kernel
    /// lacks resctrl support (pre-4.10, or `CONFIG_X86_CPU_RESCTRL` off).
    Unsupported(String),
    /// resctrl support exists but the filesystem is not mounted.
    NotMounted,
    /// An underlying filesystem operation failed.
    Io {
        path: String,
        op: &'static str,
        message: String,
    },
    /// A schemata line could not be parsed.
    InvalidSchemata(String),
    /// The kernel rejected a schemata write (bad mask, unknown domain, ...).
    RejectedSchemata(String),
    /// All hardware classes of service are in use (`num_closids` exhausted).
    TooManyGroups { limit: u32 },
    /// A capacity bitmask violated CAT constraints.
    BadMask(String),
    /// The named control group does not exist.
    NoSuchGroup(String),
}

impl fmt::Display for ResctrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResctrlError::Unsupported(why) => write!(f, "CAT/resctrl unsupported: {why}"),
            ResctrlError::NotMounted => {
                write!(f, "resctrl filesystem not mounted (try: mount -t resctrl resctrl /sys/fs/resctrl)")
            }
            ResctrlError::Io { path, op, message } => {
                write!(f, "resctrl {op} on {path} failed: {message}")
            }
            ResctrlError::InvalidSchemata(s) => write!(f, "cannot parse schemata: {s:?}"),
            ResctrlError::RejectedSchemata(s) => write!(f, "kernel rejected schemata: {s}"),
            ResctrlError::TooManyGroups { limit } => {
                write!(f, "no free class of service (hardware limit: {limit})")
            }
            ResctrlError::BadMask(s) => write!(f, "invalid capacity bitmask: {s}"),
            ResctrlError::NoSuchGroup(g) => write!(f, "no such resctrl group: {g}"),
        }
    }
}

impl std::error::Error for ResctrlError {}

impl ResctrlError {
    /// Builds an [`ResctrlError::Io`] from a `std::io::Error`.
    pub fn io(path: impl Into<String>, op: &'static str, err: &std::io::Error) -> Self {
        ResctrlError::Io {
            path: path.into(),
            op,
            message: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ResctrlError::TooManyGroups { limit: 16 };
        assert!(e.to_string().contains("16"));
        let e = ResctrlError::Io {
            path: "/x".into(),
            op: "write",
            message: "EACCES".into(),
        };
        assert!(e.to_string().contains("/x"));
        assert!(e.to_string().contains("write"));
    }

    #[test]
    fn io_constructor_captures_kind() {
        let ioe = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied");
        let e = ResctrlError::io("/sys/fs/resctrl/tasks", "write", &ioe);
        assert!(e.to_string().contains("denied"));
    }
}
