//! Parsing and rendering of resctrl `schemata` files.
//!
//! A schemata file has one line per resource; for L3 CAT the line looks like
//! `L3:0=fffff;1=3` — per cache domain (socket) a hex capacity bitmask.
//! This module round-trips that format with validation through
//! [`ccp_cachesim::WayMask`], so a mask that parses here is guaranteed to be
//! a legal CAT mask.

use crate::error::ResctrlError;
use ccp_cachesim::WayMask;
use std::collections::BTreeMap;
use std::fmt;

/// The parsed L3 section of a schemata file: domain id → capacity bitmask.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schemata {
    /// One entry per L3 cache domain (physical socket, usually).
    pub l3: BTreeMap<u32, WayMask>,
}

impl Schemata {
    /// A schemata assigning `mask` to every domain in `domains`.
    pub fn uniform(domains: &[u32], mask: WayMask) -> Self {
        Schemata {
            l3: domains.iter().map(|&d| (d, mask)).collect(),
        }
    }

    /// Parses the contents of a `schemata` file. Lines for resources other
    /// than `L3` (e.g. `MB:` bandwidth throttling) are ignored, matching
    /// what a CAT-focused controller needs.
    ///
    /// # Errors
    /// Returns [`ResctrlError::InvalidSchemata`] on malformed L3 entries and
    /// [`ResctrlError::BadMask`] on masks CAT would reject.
    pub fn parse(text: &str) -> Result<Self, ResctrlError> {
        let mut l3 = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("L3:") else {
                continue;
            };
            for part in rest.split(';') {
                let (dom, mask) = part
                    .split_once('=')
                    .ok_or_else(|| ResctrlError::InvalidSchemata(part.to_string()))?;
                let dom: u32 = dom
                    .trim()
                    .parse()
                    .map_err(|_| ResctrlError::InvalidSchemata(part.to_string()))?;
                let bits = u32::from_str_radix(mask.trim(), 16)
                    .map_err(|_| ResctrlError::InvalidSchemata(part.to_string()))?;
                let mask = WayMask::new(bits).map_err(|e| ResctrlError::BadMask(e.to_string()))?;
                l3.insert(dom, mask);
            }
        }
        Ok(Schemata { l3 })
    }

    /// Mask of a particular domain, if present.
    pub fn mask_of(&self, domain: u32) -> Option<WayMask> {
        self.l3.get(&domain).copied()
    }
}

/// Renders in the exact format the kernel accepts for writing.
impl fmt::Display for Schemata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .l3
            .iter()
            .map(|(d, m)| format!("{d}={:x}", m.bits()))
            .collect();
        writeln!(f, "L3:{}", parts.join(";"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_single_domain() {
        let s = Schemata::parse("L3:0=fffff\n").unwrap();
        assert_eq!(s.mask_of(0).unwrap().bits(), 0xfffff);
        assert_eq!(s.mask_of(1), None);
    }

    #[test]
    fn parse_multi_domain() {
        let s = Schemata::parse("L3:0=fffff;1=3\n").unwrap();
        assert_eq!(s.mask_of(0).unwrap().bits(), 0xfffff);
        assert_eq!(s.mask_of(1).unwrap().bits(), 0x3);
    }

    #[test]
    fn ignores_other_resources() {
        let s = Schemata::parse("MB:0=100\nL3:0=ff\nL2:0=f\n").unwrap();
        assert_eq!(s.l3.len(), 1);
        assert_eq!(s.mask_of(0).unwrap().bits(), 0xff);
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(matches!(
            Schemata::parse("L3:0"),
            Err(ResctrlError::InvalidSchemata(_))
        ));
        assert!(matches!(
            Schemata::parse("L3:x=ff"),
            Err(ResctrlError::InvalidSchemata(_))
        ));
        assert!(matches!(
            Schemata::parse("L3:0=zz"),
            Err(ResctrlError::InvalidSchemata(_))
        ));
    }

    #[test]
    fn rejects_illegal_masks() {
        assert!(matches!(
            Schemata::parse("L3:0=0"),
            Err(ResctrlError::BadMask(_))
        ));
        assert!(matches!(
            Schemata::parse("L3:0=5"),
            Err(ResctrlError::BadMask(_))
        ));
    }

    #[test]
    fn roundtrip_display_parse() {
        let s = Schemata::parse("L3:0=fffff;1=3").unwrap();
        let rendered = s.to_string();
        assert_eq!(rendered, "L3:0=fffff;1=3\n");
        assert_eq!(Schemata::parse(&rendered).unwrap(), s);
    }

    #[test]
    fn uniform_builder() {
        let s = Schemata::uniform(&[0, 1], WayMask::new(0x3).unwrap());
        assert_eq!(s.to_string(), "L3:0=3;1=3\n");
    }
}
