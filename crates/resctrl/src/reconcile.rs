//! Group-lifecycle reconciler: desired-vs-actual diffing over every
//! `ccp-`-prefixed control group.
//!
//! One process owning the whole resctrl tree (the paper's setting) can
//! get away with creating groups on demand and never cleaning up. A
//! fleet cannot: CLOSIDs are scarce (16 on the paper's Broadwell, often
//! 4 elsewhere), crashed processes leave orphaned groups behind, and
//! group creation fails with `ENOSPC` exactly when the machine is
//! busiest. The [`Reconciler`] makes group lifecycle a supervised,
//! convergent loop:
//!
//! * **Startup sweep** — every `ccp-` group left over from a previous
//!   process is deleted before this one creates anything (nested
//!   monitoring groups are torn down by `remove_group` itself).
//! * **Desired-vs-actual diffing** — each pass lists the tree, removes
//!   tenant groups no longer desired, creates missing desired groups
//!   and re-asserts their schemata (free when unchanged, via the
//!   old-vs-new skip cache).
//! * **Capacity-aware retry** — `ENOSPC`/CLOSID exhaustion
//!   ([`ResctrlError::TooManyGroups`]) is not a transient fault: the
//!   pass stops creating, the affected groups enter
//!   [`GroupState::Fallback`] (the tenant layer serves them from the
//!   shared per-class masks), and further creation attempts back off
//!   exponentially in passes — retrying forever would burn kernel
//!   round-trips on a full tree.
//! * **Supervision** — every kernel operation goes through the
//!   [`SupervisedController`], so transient errors retry with backoff
//!   and repeated failure trips the shared circuit breaker. While the
//!   breaker is tripped the reconciler stands down entirely
//!   ([`ReconcileOutcome::degraded`]): tenants degrade to the shared
//!   static masks instead of queries failing.
//!
//! Ownership contract: at startup and shutdown the reconciler owns
//! *all* `ccp-` groups. Mid-run it only removes groups it can attribute
//! via [`crate::tenant::parse_group_name`] — the engine allocator's
//! `ccp-<hex>` mask groups and the supervisor's `ccp-probe` are left
//! alone while the process lives.

use crate::error::ResctrlError;
use crate::faults;
use crate::supervisor::{ResctrlHealth, SupervisedController};
use crate::tenant::{parse_group_name, GROUP_PREFIX};
use ccp_cachesim::WayMask;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Passes to skip after the first consecutive exhaustion; doubles up to
/// [`MAX_BACKOFF_PASSES`].
const BASE_BACKOFF_PASSES: u32 = 1;

/// Upper bound on the creation backoff, in reconcile passes. Kept low
/// so a freed CLOSID is noticed within a few passes.
const MAX_BACKOFF_PASSES: u32 = 4;

/// One group the caller wants to exist: a `ccp-`-prefixed name plus the
/// L3 mask to program on every domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesiredGroup {
    pub name: String,
    pub mask: WayMask,
}

/// Where a desired group currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupState {
    /// Not yet attempted (fresh desired entry).
    Pending,
    /// Created and programmed; the tenant may bind into it.
    Satisfied,
    /// CLOSID/RMID exhaustion: the group cannot exist right now, the
    /// tenant is served from the shared per-class mask. Upgraded back
    /// to `Satisfied` when capacity frees.
    Fallback,
    /// A non-capacity failure (I/O error, sweep fault); retried next
    /// pass. `failed` in the stats gauge counts exactly these.
    Failed,
}

/// Shared, lock-free counters of the reconciler's work, in the same
/// style as [`ResctrlHealth`]: producers on the reconcile loop, readers
/// on the metrics scrape path.
#[derive(Debug, Default)]
pub struct ReconcileStats {
    // ORDERING: all relaxed — monotone event counters plus advisory
    // gauges; no other memory depends on their ordering and readers
    // tolerate values a pass stale.
    reconciled: AtomicU64,
    retried: AtomicU64,
    orphans_removed: AtomicU64,
    failed_total: AtomicU64,
    sweeps: AtomicU64,
    /// Desired groups in [`GroupState::Failed`] after the latest pass —
    /// the convergence gauge: 0 once every non-capacity failure healed.
    last_failed: AtomicU64,
    /// Desired groups in [`GroupState::Fallback`] after the latest pass.
    last_fallback: AtomicU64,
    /// Whether the latest pass observed CLOSID exhaustion.
    exhausted: AtomicBool,
}

impl ReconcileStats {
    /// Groups brought into their desired state (created + programmed).
    pub fn reconciled(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent read (struct doc).
        self.reconciled.load(Ordering::Relaxed)
    }

    /// Creation re-attempts after an earlier failed or exhausted pass.
    pub fn retried(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent read (struct doc).
        self.retried.load(Ordering::Relaxed)
    }

    /// Orphaned `ccp-` groups deleted by sweeps.
    pub fn orphans_removed(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent read (struct doc).
        self.orphans_removed.load(Ordering::Relaxed)
    }

    /// Cumulative non-capacity reconcile failures.
    pub fn failed_total(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent read (struct doc).
        self.failed_total.load(Ordering::Relaxed)
    }

    /// Sweep passes completed.
    pub fn sweeps(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent read (struct doc).
        self.sweeps.load(Ordering::Relaxed)
    }

    /// Desired groups still failing after the latest pass (gauge).
    pub fn failed(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent read (struct doc).
        self.last_failed.load(Ordering::Relaxed)
    }

    /// Desired groups degraded to the shared class mask (gauge).
    pub fn fallback(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent read (struct doc).
        self.last_fallback.load(Ordering::Relaxed)
    }

    /// Whether the latest pass hit CLOSID exhaustion.
    pub fn is_exhausted(&self) -> bool {
        // ORDERING: relaxed — advisory gauge (struct doc).
        self.exhausted.load(Ordering::Relaxed)
    }

    // Producers, public in the [`ResctrlHealth`] style so metric sinks
    // and their tests can drive a stats instance without a reconciler.

    /// Counts one sweep pass.
    pub fn note_sweep(&self) {
        // ORDERING: relaxed — monotone event counter (struct doc).
        self.sweeps.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one group brought to its desired state.
    pub fn note_reconciled(&self) {
        // ORDERING: relaxed — monotone event counter (struct doc).
        self.reconciled.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one creation re-attempt.
    pub fn note_retried(&self) {
        // ORDERING: relaxed — monotone event counter (struct doc).
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one orphaned group removed.
    pub fn note_orphan_removed(&self) {
        // ORDERING: relaxed — monotone event counter (struct doc).
        self.orphans_removed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one failed reconcile operation.
    pub fn note_failure(&self) {
        // ORDERING: relaxed — monotone event counter (struct doc).
        self.failed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the post-pass Failed-group gauge.
    pub fn set_failed(&self, failed: u64) {
        // ORDERING: relaxed — advisory gauge (struct doc).
        self.last_failed.store(failed, Ordering::Relaxed);
    }

    /// Publishes the post-pass Fallback-group gauge.
    pub fn set_fallback(&self, fallback: u64) {
        // ORDERING: relaxed — advisory gauge (struct doc).
        self.last_fallback.store(fallback, Ordering::Relaxed);
    }

    /// Publishes whether the latest pass saw CLOSID exhaustion.
    pub fn set_exhausted(&self, exhausted: bool) {
        // ORDERING: relaxed — advisory gauge (struct doc).
        self.exhausted.store(exhausted, Ordering::Relaxed);
    }
}

/// What one [`Reconciler::reconcile`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReconcileOutcome {
    /// Groups created (and programmed) this pass.
    pub created: usize,
    /// Orphaned tenant groups removed this pass.
    pub orphans_removed: usize,
    /// Desired groups left in [`GroupState::Failed`].
    pub failed: usize,
    /// Desired groups left in [`GroupState::Fallback`].
    pub fallback: usize,
    /// The supervisor's breaker is tripped: the pass stood down and
    /// every tenant should be served from the shared static masks.
    pub degraded: bool,
    /// The orphan sweep failed this pass (listing error or the
    /// `reconcile.sweep` failpoint); orphans survive until next pass.
    pub sweep_failed: bool,
}

/// The group-lifecycle reconciler. See the module docs.
pub struct Reconciler {
    ctl: SupervisedController,
    domains: Vec<u32>,
    desired: Vec<DesiredGroup>,
    states: HashMap<String, GroupState>,
    stats: Arc<ReconcileStats>,
    /// Passes left to skip before creation is attempted again.
    backoff_left: u32,
    /// Next backoff window (doubles per consecutive exhaustion).
    backoff_next: u32,
    /// Sticky exhaustion condition: set when a creating pass hits
    /// CLOSID capacity, held through the backoff passes it causes, and
    /// cleared only by the next creating pass that does not. Keeps the
    /// `exhausted` gauge stable instead of flickering 0 on every
    /// backoff pass while the scarcity persists.
    capacity_exhausted: bool,
}

impl std::fmt::Debug for Reconciler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reconciler")
            .field("desired", &self.desired.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Reconciler {
    /// Wraps a supervised controller programming the given L3 `domains`.
    pub fn new(ctl: SupervisedController, domains: Vec<u32>) -> Self {
        Reconciler {
            ctl,
            domains,
            desired: Vec::new(),
            states: HashMap::new(),
            stats: Arc::new(ReconcileStats::default()),
            backoff_left: 0,
            backoff_next: BASE_BACKOFF_PASSES,
            capacity_exhausted: false,
        }
    }

    /// The shared stats handle (for `/metrics` and `/stats`).
    pub fn stats(&self) -> Arc<ReconcileStats> {
        Arc::clone(&self.stats)
    }

    /// The supervisor's shared health handle.
    pub fn health(&self) -> Arc<ResctrlHealth> {
        self.ctl.health()
    }

    /// Replaces the desired set. Newly-desired groups start
    /// [`GroupState::Pending`]; states of groups no longer desired are
    /// dropped (their directories go in the next sweep).
    pub fn set_desired(&mut self, desired: Vec<DesiredGroup>) {
        self.states
            .retain(|name, _| desired.iter().any(|d| &d.name == name));
        for d in &desired {
            self.states
                .entry(d.name.clone())
                .or_insert(GroupState::Pending);
        }
        self.desired = desired;
    }

    /// Current state of every desired group (copied snapshot, safe to
    /// hand across threads).
    pub fn group_states(&self) -> HashMap<String, GroupState> {
        self.states.clone()
    }

    /// Startup sweep: deletes **every** `ccp-` group in the tree —
    /// leftovers of a previous process, including `ccp-probe` and the
    /// old engine's mask groups. Call once, before the engine creates
    /// its own groups.
    ///
    /// # Errors
    /// Propagates a listing failure; individual remove failures are
    /// counted into `failed_total` but do not abort the sweep.
    pub fn startup_sweep(&mut self) -> Result<usize, ResctrlError> {
        self.sweep(|name| name.starts_with(GROUP_PREFIX))
    }

    /// Shutdown sweep: same scope as the startup sweep (all `ccp-`
    /// groups, so nothing this process created survives it). Returns
    /// `(removed, remaining)` where `remaining` counts `ccp-` groups
    /// that could not be removed — 0 is the clean-exit criterion.
    pub fn shutdown_sweep(&mut self) -> (usize, usize) {
        // Nothing is desired after shutdown: drop the desired set first
        // so the sweep also removes the groups this process satisfied.
        self.desired.clear();
        self.states.clear();
        let removed = self
            .sweep(|name| name.starts_with(GROUP_PREFIX))
            .unwrap_or(0);
        let remaining = self
            .ctl
            .groups()
            .map(|gs| gs.iter().filter(|g| g.starts_with(GROUP_PREFIX)).count())
            .unwrap_or(usize::MAX);
        (removed, remaining)
    }

    /// One sweep over the tree removing groups selected by `victim`
    /// that are not currently desired.
    fn sweep(&mut self, victim: impl Fn(&str) -> bool) -> Result<usize, ResctrlError> {
        if ccp_fault::should_fail(faults::RECONCILE_SWEEP) {
            return Err(ResctrlError::Io {
                path: "reconcile.sweep".into(),
                op: "readdir",
                message: "Input/output error (os error 5)".into(),
            });
        }
        self.stats.note_sweep();
        let mut removed = 0;
        for name in self.ctl.groups()? {
            if !victim(&name) || self.desired.iter().any(|d| d.name == name) {
                continue;
            }
            let Ok(handle) = self.ctl.existing_group(&name) else {
                continue;
            };
            match self.ctl.remove_group(handle) {
                Ok(()) => {
                    removed += 1;
                    self.stats.note_orphan_removed();
                }
                Err(_) => {
                    self.stats.note_failure();
                }
            }
        }
        Ok(removed)
    }

    /// Evaluates the `tenant.create_group` failpoint, mapping its typed
    /// errno the same way the controller maps a real kernel error.
    fn fault_create(&self, name: &str) -> Result<(), ResctrlError> {
        match ccp_fault::check(faults::TENANT_CREATE_GROUP) {
            None => Ok(()),
            Some(ccp_fault::Failure::Errno(ccp_fault::Errno::Enospc)) => {
                Err(ResctrlError::TooManyGroups {
                    limit: self.ctl.info().num_closids,
                })
            }
            Some(ccp_fault::Failure::Errno(e)) => Err(ResctrlError::Io {
                path: name.to_string(),
                op: "mkdir",
                message: format!("{} (os error {})", e.message(), e.code()),
            }),
            Some(ccp_fault::Failure::Generic) => Err(ResctrlError::Io {
                path: name.to_string(),
                op: "mkdir",
                message: "Input/output error (os error 5)".into(),
            }),
        }
    }

    /// One reconcile pass: sweep orphaned tenant groups, create missing
    /// desired groups (capacity-aware), re-assert schemata. Stands down
    /// while the supervisor's breaker is tripped.
    pub fn reconcile(&mut self) -> ReconcileOutcome {
        let mut out = ReconcileOutcome::default();
        if self.health().is_degraded() {
            out.degraded = true;
            // Every tenant is served from the shared static masks until
            // the breaker heals; states are left as-is so the next
            // healthy pass resumes where it stood.
            self.publish_gauges(&out);
            return out;
        }

        // Mid-run sweeps only touch groups the tenant layer owns by
        // name; the engine's mask groups and ccp-probe stay.
        match self.sweep(|name| parse_group_name(name).is_some()) {
            Ok(n) => out.orphans_removed = n,
            Err(_) => out.sweep_failed = true,
        }

        let can_create = if self.backoff_left > 0 {
            self.backoff_left -= 1;
            false
        } else {
            true
        };
        let mut exhausted_this_pass = false;
        let desired = self.desired.clone();
        for d in &desired {
            let state = *self.states.get(&d.name).unwrap_or(&GroupState::Pending);
            let exists = self.ctl.existing_group(&d.name).is_ok();
            if exists {
                // Re-assert the mask; the skip cache makes the repeat
                // case free, and a drifted kernel state surfaces here.
                match self.assert_mask(d) {
                    Ok(()) => {
                        if state != GroupState::Satisfied {
                            self.stats.note_reconciled();
                            out.created += usize::from(state == GroupState::Pending);
                        }
                        self.states.insert(d.name.clone(), GroupState::Satisfied);
                    }
                    Err(_) => {
                        self.stats.note_failure();
                        self.states.insert(d.name.clone(), GroupState::Failed);
                    }
                }
                continue;
            }
            if !can_create || exhausted_this_pass {
                // Capacity backoff: leave the state as it stands
                // (Fallback keeps serving from the shared mask).
                if state == GroupState::Satisfied {
                    // The directory vanished under us; next eligible
                    // pass recreates it.
                    self.states.insert(d.name.clone(), GroupState::Failed);
                }
                continue;
            }
            if matches!(state, GroupState::Fallback | GroupState::Failed) {
                self.stats.note_retried();
            }
            let created = self
                .fault_create(&d.name)
                .and_then(|()| self.ctl.create_group(&d.name));
            match created {
                Ok(handle) => match self.program_mask(&handle, d.mask) {
                    Ok(()) => {
                        out.created += 1;
                        self.stats.note_reconciled();
                        self.states.insert(d.name.clone(), GroupState::Satisfied);
                    }
                    Err(_) => {
                        // Give the CLOSID back rather than leak a
                        // half-programmed group.
                        if let Ok(h) = self.ctl.existing_group(&d.name) {
                            let _ = self.ctl.remove_group(h);
                        }
                        self.stats.note_failure();
                        self.states.insert(d.name.clone(), GroupState::Failed);
                    }
                },
                Err(ResctrlError::TooManyGroups { .. }) => {
                    // Exhaustion is a capacity condition, not a fault:
                    // this group (and the rest of the pass) degrades to
                    // the shared class mask and creation backs off.
                    exhausted_this_pass = true;
                    self.states.insert(d.name.clone(), GroupState::Fallback);
                }
                Err(_) => {
                    self.stats.note_failure();
                    self.states.insert(d.name.clone(), GroupState::Failed);
                }
            }
        }

        if exhausted_this_pass {
            // Mark every still-missing desired group as fallback so the
            // tenant layer serves all of them from shared masks rather
            // than leaving later entries Pending forever.
            for d in &desired {
                let st = self.states.get_mut(&d.name).expect("state seeded");
                if *st == GroupState::Pending {
                    *st = GroupState::Fallback;
                }
            }
            self.backoff_left = self.backoff_next;
            self.backoff_next = (self.backoff_next * 2).min(MAX_BACKOFF_PASSES);
            self.capacity_exhausted = true;
        } else if can_create {
            self.backoff_next = BASE_BACKOFF_PASSES;
            self.capacity_exhausted = false;
        }

        out.failed = self.count(GroupState::Failed);
        out.fallback = self.count(GroupState::Fallback);
        self.stats.set_exhausted(self.capacity_exhausted);
        self.publish_gauges(&out);
        out
    }

    fn publish_gauges(&self, out: &ReconcileOutcome) {
        self.stats.set_failed(out.failed as u64);
        self.stats.set_fallback(out.fallback as u64);
    }

    fn count(&self, which: GroupState) -> usize {
        self.states.values().filter(|s| **s == which).count()
    }

    fn assert_mask(&mut self, d: &DesiredGroup) -> Result<(), ResctrlError> {
        let handle = self.ctl.existing_group(&d.name)?;
        self.program_mask(&handle, d.mask)
    }

    fn program_mask(
        &mut self,
        handle: &crate::controller::GroupHandle,
        mask: WayMask,
    ) -> Result<(), ResctrlError> {
        for &domain in &self.domains.clone() {
            self.ctl.set_l3_mask(handle, domain, mask)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::CacheController;
    use crate::fs::FakeFs;
    use crate::supervisor::RetryPolicy;
    use std::sync::{Mutex, PoisonError};
    use std::time::Duration;

    /// Fault plans are process-global; serialize the tests that arm them.
    static FAULT_GATE: Mutex<()> = Mutex::new(());

    struct PlanGuard;
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            ccp_fault::clear();
        }
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(200),
            jitter_seed: 7,
        }
    }

    fn reconciler_on(fs: FakeFs) -> Reconciler {
        let ctl = CacheController::open_with(Box::new(fs), "/sys/fs/resctrl").unwrap();
        let sup = SupervisedController::new(ctl, fast_policy(), Arc::new(ResctrlHealth::new(3)));
        Reconciler::new(sup, vec![0])
    }

    fn desired(name: &str, mask: u32) -> DesiredGroup {
        DesiredGroup {
            name: name.to_string(),
            mask: WayMask::new(mask).unwrap(),
        }
    }

    #[test]
    fn startup_sweep_removes_all_ccp_groups_with_nested_mon_groups() {
        let fs = FakeFs::broadwell();
        {
            let mut prev =
                CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl").unwrap();
            let g = prev.create_group("ccp-a-polluting").unwrap();
            prev.create_mon_group(Some(&g), "q1").unwrap();
            prev.create_group("ccp-fffff").unwrap();
            prev.create_group("ccp-probe").unwrap();
            prev.create_group("other").unwrap(); // not ours: survives
        }
        let mut r = reconciler_on(fs.clone());
        assert_eq!(r.startup_sweep().unwrap(), 3);
        assert_eq!(r.stats().orphans_removed(), 3);
        assert_eq!(fs.group_count(), 1);
    }

    #[test]
    fn reconcile_creates_desired_groups_and_programs_masks() {
        let fs = FakeFs::broadwell();
        let mut r = reconciler_on(fs.clone());
        r.set_desired(vec![
            desired("ccp-a-polluting", 0x3),
            desired("ccp-a-sensitive", 0xfffff),
        ]);
        let out = r.reconcile();
        assert_eq!(out.created, 2);
        assert_eq!(out.failed, 0);
        assert_eq!(r.stats().reconciled(), 2);
        use crate::fs::ResctrlFs;
        assert_eq!(
            fs.read(std::path::Path::new(
                "/sys/fs/resctrl/ccp-a-polluting/schemata"
            ))
            .unwrap(),
            "L3:0=3\n"
        );
        // A second pass is a no-op: nothing new created or failed.
        let out = r.reconcile();
        assert_eq!(out.created, 0);
        assert_eq!(r.stats().reconciled(), 2);
        assert!(r
            .group_states()
            .values()
            .all(|s| *s == GroupState::Satisfied));
    }

    #[test]
    fn undesired_tenant_groups_are_swept_but_mask_groups_survive_midrun() {
        let fs = FakeFs::broadwell();
        let mut r = reconciler_on(fs.clone());
        r.set_desired(vec![desired("ccp-a-polluting", 0x3)]);
        r.reconcile();
        // Another component's mask group plus a stale tenant group.
        {
            let mut other =
                CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl").unwrap();
            other.create_group("ccp-fff").unwrap();
            other.create_group("ccp-gone-sensitive").unwrap();
        }
        let out = r.reconcile();
        assert_eq!(out.orphans_removed, 1, "only the stale tenant group");
        assert_eq!(fs.group_count(), 2); // ccp-a-polluting + ccp-fff
    }

    #[test]
    fn exhaustion_degrades_to_fallback_and_upgrades_when_capacity_frees() {
        // 4 CLOSIDs: root + 3 groups. Two slots taken by another owner.
        let fs = FakeFs::new("/sys/fs/resctrl", 0xfffff, 2, 4, &[0]);
        let mut other =
            CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl").unwrap();
        let o1 = other.create_group("held-1").unwrap();
        let _o2 = other.create_group("held-2").unwrap();

        let mut r = reconciler_on(fs.clone());
        r.set_desired(vec![
            desired("ccp-a-polluting", 0x3),
            desired("ccp-b-polluting", 0x3),
        ]);
        let out = r.reconcile();
        assert_eq!(out.created, 1, "one slot was left");
        assert_eq!(out.fallback, 1, "the other degrades to the shared mask");
        assert_eq!(out.failed, 0, "exhaustion is not a failure");
        assert!(r.stats().is_exhausted());

        // Capacity frees; backoff (1 pass after first exhaustion) then
        // the retry upgrades the fallback group to satisfied.
        other.remove_group(o1).unwrap();
        let skipped = r.reconcile();
        assert_eq!(skipped.created, 0, "backoff pass skips creation");
        let healed = r.reconcile();
        assert_eq!(healed.created, 1);
        assert_eq!(healed.fallback, 0);
        assert!(r.stats().retried() >= 1);
        assert!(!r.stats().is_exhausted());
    }

    #[test]
    fn typed_enospc_failpoint_forces_fallback_then_heals() {
        let _gate = FAULT_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let fs = FakeFs::broadwell();
        let mut r = reconciler_on(fs.clone());
        r.set_desired(vec![desired("ccp-a-sensitive", 0xfffff)]);
        let _plan = PlanGuard;
        ccp_fault::install_str("tenant.create_group=err:enospc@1+2").unwrap();
        let out = r.reconcile();
        assert_eq!(out.fallback, 1);
        assert_eq!(out.failed, 0);
        // Pass 2 is the backoff pass, pass 3 burns the second fault hit,
        // then backoff again; the window exhausted, creation succeeds.
        let mut healed = false;
        for _ in 0..8 {
            if r.reconcile().fallback == 0 {
                healed = true;
                break;
            }
        }
        assert!(healed, "reconciler must converge after the fault window");
        assert_eq!(r.stats().failed(), 0);
        assert!(r.stats().retried() >= 1);
    }

    #[test]
    fn eio_failpoint_counts_failed_and_retries_without_backoff() {
        let _gate = FAULT_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let fs = FakeFs::broadwell();
        let mut r = reconciler_on(fs.clone());
        r.set_desired(vec![desired("ccp-a-mixed", 0xfff)]);
        let _plan = PlanGuard;
        ccp_fault::install_str("tenant.create_group=err:eio@1").unwrap();
        let out = r.reconcile();
        assert_eq!(out.failed, 1);
        assert_eq!(out.fallback, 0);
        assert_eq!(r.stats().failed(), 1);
        // EIO is transient: the very next pass retries and succeeds.
        let out = r.reconcile();
        assert_eq!(out.failed, 0);
        assert_eq!(r.stats().failed(), 0);
        assert!(r.stats().retried() >= 1);
    }

    #[test]
    fn sweep_failpoint_skips_one_pass_then_orphans_are_removed() {
        let _gate = FAULT_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let fs = FakeFs::broadwell();
        {
            let mut prev =
                CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl").unwrap();
            prev.create_group("ccp-stale-mixed").unwrap();
        }
        let mut r = reconciler_on(fs.clone());
        let _plan = PlanGuard;
        ccp_fault::install_str("reconcile.sweep=err@1").unwrap();
        let out = r.reconcile();
        assert!(out.sweep_failed);
        assert_eq!(fs.group_count(), 1, "orphan survives the failed sweep");
        let out = r.reconcile();
        assert!(!out.sweep_failed);
        assert_eq!(out.orphans_removed, 1);
        assert_eq!(fs.group_count(), 0);
    }

    #[test]
    fn degraded_breaker_stands_the_reconciler_down() {
        let fs = FakeFs::broadwell();
        let mut r = reconciler_on(fs.clone());
        r.set_desired(vec![desired("ccp-a-polluting", 0x3)]);
        for _ in 0..3 {
            r.health().record_failure();
        }
        assert!(r.health().is_degraded());
        let out = r.reconcile();
        assert!(out.degraded);
        assert_eq!(fs.group_count(), 0, "no kernel writes while degraded");
        r.health().restore();
        let out = r.reconcile();
        assert_eq!(out.created, 1);
    }

    #[test]
    fn shutdown_sweep_leaves_zero_ccp_groups() {
        let fs = FakeFs::broadwell();
        let mut r = reconciler_on(fs.clone());
        r.set_desired(vec![
            desired("ccp-a-polluting", 0x3),
            desired("ccp-b-sensitive", 0xfffff),
        ]);
        r.reconcile();
        {
            let mut other =
                CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl").unwrap();
            other.create_group("ccp-fff").unwrap();
        }
        // Desired set deliberately left populated: the shutdown sweep
        // must remove this process's own satisfied groups too.
        let (removed, remaining) = r.shutdown_sweep();
        assert_eq!(removed, 3);
        assert_eq!(remaining, 0);
        assert_eq!(fs.group_count(), 0);
    }
}
