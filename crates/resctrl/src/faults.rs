//! Named failpoints this crate exposes (see the `ccp-fault` crate).
//!
//! Arm them with a plan such as
//! `CCP_FAULTS=resctrl.write_schemata=err@1+40` to make schemata writes
//! fail with `EBUSY` for a 40-write window. Every constant here is a
//! site compiled into production code paths; disarmed, each costs one
//! relaxed atomic load and a branch.

/// `schemata` write fails with an `EBUSY`-style I/O error.
pub const WRITE_SCHEMATA: &str = "resctrl.write_schemata";

/// `tasks` write (thread binding) fails with an `EBUSY`-style I/O error.
pub const ASSIGN_TASK: &str = "resctrl.assign_task";

/// Group creation fails with an `ENOSPC`-style I/O error, which the
/// controller maps to [`crate::ResctrlError::TooManyGroups`] exactly
/// like a real CLOS exhaustion.
pub const CREATE_GROUP: &str = "resctrl.create_group";

/// Schemata / monitoring-counter reads fail with an `EIO`-style error.
pub const READ: &str = "resctrl.read";

/// The whole mount vanishes: any controller operation reports
/// [`crate::ResctrlError::NotMounted`].
pub const MOUNT_LOST: &str = "resctrl.mount_lost";

/// The occupancy sampler's probe fails for one tick (gauges keep their
/// previous values, like a transient CMT read error).
pub const SAMPLER_PROBE: &str = "resctrl.sampler_probe";

/// Low-level fake-filesystem write fails (below the controller, so the
/// error travels the same path a real kernel `write(2)` failure would).
pub const FS_WRITE: &str = "resctrl.fs.write";

/// The reconciler's creation of a tenant group fails. Supports typed
/// errnos: `err:enospc` surfaces as CLOSID exhaustion (class-sharing
/// fallback), `err:eio`/bare `err` as a transient I/O failure (retried
/// on the next pass).
pub const TENANT_CREATE_GROUP: &str = "tenant.create_group";

/// The reconciler's orphan sweep fails for one pass (orphans survive
/// until the next pass, exactly like a transient listing error).
pub const RECONCILE_SWEEP: &str = "reconcile.sweep";

/// Low-level fake-filesystem read fails.
pub const FS_READ: &str = "resctrl.fs.read";
