//! Background cache-occupancy sampling per CUID class.
//!
//! The paper's scheduler *acts* on cache usage identifiers; this module
//! makes their footprint *visible*. An [`OccupancySampler`] thread
//! periodically asks an [`OccupancyProbe`] for per-class LLC occupancy
//! and publishes it as `ccp_llc_occupancy_bytes{class=...}` gauges (plus
//! `ccp_mbm_total_bytes{class=...}` for bandwidth), ready for one
//! `/metrics` scrape next to the scheduler's own instruments.
//!
//! Two probes are provided:
//!
//! * [`ResctrlMonitor`] — reads real CMT counters from the control groups
//!   the allocator created (one `ccp-<mask>` group per distinct way
//!   mask), for hosts with RDT monitoring;
//! * [`SimulatedMonitor`] — a model-backed stand-in for everywhere else
//!   (containers, non-Intel hosts, CI): each class's occupancy decays
//!   exponentially toward `share_of_llc × load`, where load comes from a
//!   caller-supplied pressure function (e.g. how many queries of that
//!   class are currently running).

use crate::controller::CacheController;
use crate::error::ResctrlError;
use ccp_obs::Registry;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One probe reading: the occupancy of a single CUID class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSample {
    /// CUID class label (`polluting`, `sensitive`, `mixed`, ...).
    pub class: String,
    /// Bytes of LLC the class currently occupies.
    pub llc_occupancy_bytes: u64,
    /// Cumulative memory-bandwidth bytes attributed to the class.
    pub mbm_total_bytes: u64,
}

/// Source of per-class occupancy readings, polled by the sampler.
pub trait OccupancyProbe: Send {
    /// Takes one reading per class. Classes that cannot be read (e.g. a
    /// control group not created yet) are simply omitted.
    fn sample(&mut self) -> Vec<ClassSample>;
}

/// Probe backed by real CMT counters: reads `llc_occupancy` of the named
/// control groups through a [`CacheController`].
pub struct ResctrlMonitor {
    ctl: CacheController,
    /// `(class label, control group name)` pairs to read.
    classes: Vec<(String, String)>,
    domain: u32,
}

impl ResctrlMonitor {
    /// Builds a probe reading `classes` (label → group name) on cache
    /// `domain` through `ctl`.
    pub fn new(ctl: CacheController, classes: Vec<(String, String)>, domain: u32) -> Self {
        ResctrlMonitor {
            ctl,
            classes,
            domain,
        }
    }
}

impl OccupancyProbe for ResctrlMonitor {
    fn sample(&mut self) -> Vec<ClassSample> {
        let mut out = Vec::with_capacity(self.classes.len());
        for (label, group) in &self.classes {
            let Ok(handle) = self.ctl.existing_group(group) else {
                continue; // allocator has not materialized this class yet
            };
            let Ok(m) = self.ctl.monitoring(&handle, self.domain) else {
                continue;
            };
            out.push(ClassSample {
                class: label.clone(),
                llc_occupancy_bytes: m.llc_occupancy_bytes,
                mbm_total_bytes: m.mbm_total_bytes,
            });
        }
        out
    }
}

/// A class in the simulated probe: its label and the fraction of the LLC
/// its way mask covers.
#[derive(Debug, Clone)]
pub struct SimClass {
    /// CUID class label.
    pub label: String,
    /// Fraction of the LLC reachable under the class's mask (0.0–1.0).
    pub llc_share: f64,
}

/// Model-backed probe for hosts without CMT hardware.
///
/// Each tick, class occupancy moves half the distance toward
/// `llc_share × min(load, 1) × llc_bytes` — the steady state a
/// mask-confined working set converges to — so the published gauges rise
/// under load and drain when a class goes idle, like real CMT readings.
pub struct SimulatedMonitor {
    llc_bytes: u64,
    classes: Vec<SimClass>,
    pressure: Box<dyn FnMut() -> Vec<(String, f64)> + Send>,
    occupancy: Vec<f64>,
    traffic: Vec<f64>,
}

impl SimulatedMonitor {
    /// Builds the simulator for an `llc_bytes`-sized cache. `pressure`
    /// reports current load per class label (e.g. running query count);
    /// labels it omits are treated as idle.
    pub fn new(
        llc_bytes: u64,
        classes: Vec<SimClass>,
        pressure: Box<dyn FnMut() -> Vec<(String, f64)> + Send>,
    ) -> Self {
        let n = classes.len();
        SimulatedMonitor {
            llc_bytes,
            classes,
            pressure,
            occupancy: vec![0.0; n],
            traffic: vec![0.0; n],
        }
    }
}

impl OccupancyProbe for SimulatedMonitor {
    fn sample(&mut self) -> Vec<ClassSample> {
        let loads = (self.pressure)();
        let mut out = Vec::with_capacity(self.classes.len());
        for (i, class) in self.classes.iter().enumerate() {
            let load = loads
                .iter()
                .find(|(l, _)| l == &class.label)
                .map_or(0.0, |&(_, v)| v)
                .clamp(0.0, 1.0);
            let target = class.llc_share * load * self.llc_bytes as f64;
            let before = self.occupancy[i];
            self.occupancy[i] += (target - before) * 0.5;
            // MBM counters are cumulative. Modeled bandwidth is the fill
            // traffic (occupancy movement = cold/capacity misses) plus a
            // small steady-state miss stream while the class is loaded —
            // a converged, reuse-heavy class mostly hits in cache, so
            // its MBM slope flattens instead of streaming its whole
            // share every tick.
            self.traffic[i] += (self.occupancy[i] - before).abs() + 0.05 * target;
            out.push(ClassSample {
                class: class.label.clone(),
                llc_occupancy_bytes: self.occupancy[i] as u64,
                mbm_total_bytes: self.traffic[i] as u64,
            });
        }
        out
    }
}

/// Shared mailbox between the sampler thread and consumers of raw
/// readings (the adaptive controller, primarily).
///
/// The sampler publishes each *successful* probe here with a
/// monotonically increasing sequence number; a consumer that sees the
/// sequence stop advancing knows its readings have gone stale (probe
/// failpoints, hung backend) and can clamp to a safe configuration.
#[derive(Debug, Default)]
pub struct ReadingsHub {
    inner: Mutex<HubInner>,
}

#[derive(Debug, Default)]
struct HubInner {
    seq: u64,
    samples: Vec<ClassSample>,
}

impl ReadingsHub {
    /// An empty hub: sequence 0, no samples.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes one probe's worth of samples, bumping the sequence.
    pub fn publish(&self, samples: Vec<ClassSample>) {
        let mut inner = self.inner.lock();
        inner.seq += 1;
        inner.samples = samples;
    }

    /// The latest `(sequence, samples)` pair. Sequence 0 means nothing
    /// has been published yet.
    pub fn snapshot(&self) -> (u64, Vec<ClassSample>) {
        let inner = self.inner.lock();
        (inner.seq, inner.samples.clone())
    }
}

/// Background thread that polls a probe and publishes
/// `ccp_llc_occupancy_bytes{class=...}` / `ccp_mbm_total_bytes{class=...}`
/// gauges into a [`Registry`].
pub struct OccupancySampler {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for OccupancySampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OccupancySampler")
            .field("running", &self.thread.is_some())
            .finish()
    }
}

impl OccupancySampler {
    /// Spawns the sampling thread, ticking every `interval`. The first
    /// sample is taken immediately so gauges exist before the first
    /// scrape.
    ///
    /// # Errors
    /// Propagates thread-spawn failure.
    pub fn start(
        probe: Box<dyn OccupancyProbe>,
        registry: &Registry,
        interval: Duration,
    ) -> Result<Self, ResctrlError> {
        Self::start_with_hub(probe, registry, interval, None)
    }

    /// Like [`start`](Self::start), additionally publishing every
    /// successful probe into `hub` for raw-reading consumers. Failed or
    /// fault-skipped probes do not touch the hub, so its sequence number
    /// doubles as a staleness signal.
    ///
    /// # Errors
    /// Propagates thread-spawn failure.
    pub fn start_with_hub(
        mut probe: Box<dyn OccupancyProbe>,
        registry: &Registry,
        interval: Duration,
        hub: Option<Arc<ReadingsHub>>,
    ) -> Result<Self, ResctrlError> {
        let registry = registry.clone();
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("ccp-occupancy".into())
            .spawn(move || {
                let occ = registry.gauge_family(
                    "ccp_llc_occupancy_bytes",
                    "LLC bytes occupied per CUID class (CMT; simulated when hardware \
                     monitoring is unavailable)",
                );
                let mbm = registry.gauge_family(
                    "ccp_mbm_total_bytes",
                    "Cumulative memory-bandwidth bytes per CUID class (MBM; simulated \
                     when hardware monitoring is unavailable)",
                );
                loop {
                    // A fired probe failpoint models a transient CMT read
                    // error: nothing publishes this tick, gauges keep
                    // their previous values.
                    if !ccp_fault::should_fail(crate::faults::SAMPLER_PROBE) {
                        let samples = probe.sample();
                        for s in &samples {
                            let labels = [("class", s.class.as_str())];
                            occ.get_or_create(&labels).set(s.llc_occupancy_bytes as f64);
                            mbm.get_or_create(&labels).set(s.mbm_total_bytes as f64);
                        }
                        if let Some(hub) = &hub {
                            hub.publish(samples);
                        }
                    }
                    let (lock, cv) = &*stop2;
                    let mut stopped = lock.lock();
                    if *stopped {
                        break;
                    }
                    cv.wait_for(&mut stopped, interval);
                    if *stopped {
                        break;
                    }
                }
            })
            .map_err(|e| ResctrlError::io("<thread>", "spawn", &e))?;
        Ok(OccupancySampler {
            stop,
            thread: Some(thread),
        })
    }

    /// Stops the sampling thread promptly (no waiting out the interval)
    /// and joins it. Idempotent.
    pub fn stop(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock() = true;
        cv.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for OccupancySampler {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FakeFs;
    use std::path::Path;

    #[test]
    fn resctrl_probe_reads_allocator_groups() {
        let fs = FakeFs::broadwell();
        let mut ctl = CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl").unwrap();
        ctl.create_group("ccp-3").unwrap();
        fs.set_mon_counter(Path::new("/sys/fs/resctrl/ccp-3"), "llc_occupancy", 4096);
        let ctl2 = CacheController::open_with(Box::new(fs), "/sys/fs/resctrl").unwrap();
        let mut probe = ResctrlMonitor::new(
            ctl2,
            vec![
                ("polluting".into(), "ccp-3".into()),
                ("sensitive".into(), "ccp-fffff".into()), // not created yet
            ],
            0,
        );
        let samples = probe.sample();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].class, "polluting");
        assert_eq!(samples[0].llc_occupancy_bytes, 4096);
    }

    #[test]
    fn simulated_probe_tracks_load() {
        let llc = 55 * 1024 * 1024_u64;
        let load = Arc::new(Mutex::new(vec![("polluting".to_string(), 1.0)]));
        let load2 = Arc::clone(&load);
        let mut probe = SimulatedMonitor::new(
            llc,
            vec![
                SimClass {
                    label: "polluting".into(),
                    llc_share: 0.1,
                },
                SimClass {
                    label: "sensitive".into(),
                    llc_share: 1.0,
                },
            ],
            Box::new(move || load2.lock().clone()),
        );
        for _ in 0..20 {
            probe.sample();
        }
        let s = probe.sample();
        // Converged near 10% of the LLC for the loaded class...
        let polluting = s.iter().find(|c| c.class == "polluting").unwrap();
        assert!(polluting.llc_occupancy_bytes > (llc as f64 * 0.09) as u64);
        assert!(polluting.llc_occupancy_bytes <= (llc as f64 * 0.1) as u64 + 1);
        // ...while the idle class stays empty and traffic accumulates.
        let sensitive = s.iter().find(|c| c.class == "sensitive").unwrap();
        assert_eq!(sensitive.llc_occupancy_bytes, 0);
        assert!(polluting.mbm_total_bytes > polluting.llc_occupancy_bytes);

        // Load removed: occupancy drains.
        load.lock().clear();
        for _ in 0..20 {
            probe.sample();
        }
        let drained = probe.sample();
        assert!(drained[0].llc_occupancy_bytes < 1024);
    }

    #[test]
    fn hub_sequences_publishes_and_snapshots() {
        let hub = ReadingsHub::new();
        assert_eq!(hub.snapshot(), (0, vec![]));
        hub.publish(vec![ClassSample {
            class: "sensitive".into(),
            llc_occupancy_bytes: 7,
            mbm_total_bytes: 9,
        }]);
        let (seq, samples) = hub.snapshot();
        assert_eq!(seq, 1);
        assert_eq!(samples.len(), 1);
        hub.publish(vec![]);
        assert_eq!(hub.snapshot().0, 2);
    }

    #[test]
    fn sampler_feeds_hub_on_successful_probes() {
        let registry = Registry::new();
        struct Fixed;
        impl OccupancyProbe for Fixed {
            fn sample(&mut self) -> Vec<ClassSample> {
                vec![ClassSample {
                    class: "polluting".into(),
                    llc_occupancy_bytes: 55,
                    mbm_total_bytes: 1,
                }]
            }
        }
        let hub = Arc::new(ReadingsHub::new());
        let mut sampler = OccupancySampler::start_with_hub(
            Box::new(Fixed),
            &registry,
            Duration::from_millis(5),
            Some(Arc::clone(&hub)),
        )
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (seq, samples) = hub.snapshot();
            if seq >= 2 {
                assert_eq!(samples[0].llc_occupancy_bytes, 55);
                break;
            }
            assert!(std::time::Instant::now() < deadline, "hub never advanced");
            std::thread::sleep(Duration::from_millis(2));
        }
        sampler.stop();
    }

    #[test]
    fn sampler_publishes_class_gauges() {
        let registry = Registry::new();
        struct Fixed;
        impl OccupancyProbe for Fixed {
            fn sample(&mut self) -> Vec<ClassSample> {
                vec![ClassSample {
                    class: "mixed".into(),
                    llc_occupancy_bytes: 1234,
                    mbm_total_bytes: 99,
                }]
            }
        }
        let mut sampler =
            OccupancySampler::start(Box::new(Fixed), &registry, Duration::from_secs(3600)).unwrap();
        // First sample is immediate; wait for it to land.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let text = registry.render_prometheus();
            if text.contains("ccp_llc_occupancy_bytes{class=\"mixed\"} 1234.0") {
                assert!(text.contains("ccp_mbm_total_bytes{class=\"mixed\"} 99.0"));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "gauge never appeared");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Stop returns promptly despite the 1h interval.
        let started = std::time::Instant::now();
        sampler.stop();
        assert!(started.elapsed() < Duration::from_secs(2));
    }
}
