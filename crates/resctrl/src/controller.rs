//! High-level CAT controller over a mounted resctrl tree.
//!
//! [`CacheController`] manages *control groups* (classes of service): it
//! creates them, programs their L3 capacity bitmasks, and binds threads to
//! them. It also implements the paper's Section V-C optimization: a write
//! to the kernel is skipped when the requested mask equals the mask a group
//! already has ("our implementation always compares old and new bitmasks and
//! only associates a TID with a new bitmask if really necessary").

use crate::error::ResctrlError;
use crate::faults;
use crate::fs::{RealFs, ResctrlFs};
use crate::metrics::ResctrlMetrics;
use crate::schemata::Schemata;
use ccp_cachesim::WayMask;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Evaluates the mount-vanished failpoint shared by every operation.
fn fault_mount_lost() -> Result<(), ResctrlError> {
    if ccp_fault::should_fail(faults::MOUNT_LOST) {
        return Err(ResctrlError::NotMounted);
    }
    Ok(())
}

/// Evaluates an I/O failpoint, fabricating the errno-style message a
/// real kernel failure on `path` would produce.
fn fault_io(name: &str, path: &Path, op: &'static str, message: &str) -> Result<(), ResctrlError> {
    if ccp_fault::should_fail(name) {
        return Err(ResctrlError::Io {
            path: path.display().to_string(),
            op,
            message: message.to_string(),
        });
    }
    Ok(())
}

/// Static CAT parameters read from `info/L3` at open time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatInfo {
    /// The full capacity bitmask (e.g. `0xfffff` on a 20-way Broadwell LLC).
    pub cbm_mask: u32,
    /// Minimum number of contiguous bits a mask must have.
    pub min_cbm_bits: u32,
    /// Number of hardware classes of service (16 on the paper's CPU).
    pub num_closids: u32,
}

impl CatInfo {
    /// Number of ways the CBM covers.
    pub fn ways(&self) -> u32 {
        self.cbm_mask.count_ones()
    }
}

/// Opaque handle to a control group created by this controller.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupHandle {
    name: String,
    dir: PathBuf,
}

impl GroupHandle {
    /// The group's directory name under the resctrl root.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Opaque handle to a *monitoring group*: an RMID-backed CMT/MBM counter
/// set under a `mon_groups` directory. Unlike a [`GroupHandle`] it has no
/// schemata and consumes no CLOS — the kernel only assigns it a resource
/// monitoring ID, so per-query occupancy can be tracked without spending
/// one of the 16 classes of service.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MonGroupHandle {
    name: String,
    dir: PathBuf,
}

impl MonGroupHandle {
    /// The monitoring group's directory name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Manages CAT classes of service through a resctrl mount.
pub struct CacheController {
    fs: Box<dyn ResctrlFs>,
    root: PathBuf,
    info: CatInfo,
    /// Cache of each group's last-written mask per domain: lets us skip
    /// redundant kernel round-trips (paper Section V-C).
    mask_cache: HashMap<(String, u32), WayMask>,
    /// Cache of task -> group assignments, same purpose.
    task_cache: HashMap<u64, String>,
    metrics: ResctrlMetrics,
}

impl std::fmt::Debug for CacheController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheController")
            .field("root", &self.root)
            .field("info", &self.info)
            .field("skipped_writes", &self.metrics.skipped_writes())
            .finish_non_exhaustive()
    }
}

impl CacheController {
    /// Opens the controller against the real host filesystem at the
    /// conventional mount point.
    ///
    /// # Errors
    /// [`ResctrlError::NotMounted`] when the tree is absent, plus any
    /// parse/IO failure reading `info/L3`.
    pub fn open() -> Result<Self, ResctrlError> {
        Self::open_with(Box::new(RealFs), crate::DEFAULT_MOUNT)
    }

    /// Opens against an arbitrary [`ResctrlFs`] (e.g. [`crate::fs::FakeFs`])
    /// rooted at `mount`.
    ///
    /// # Errors
    /// See [`CacheController::open`].
    pub fn open_with(fs: Box<dyn ResctrlFs>, mount: &str) -> Result<Self, ResctrlError> {
        let root = PathBuf::from(mount);
        let info_dir = root.join("info/L3");
        if !fs.exists(&info_dir) {
            return Err(ResctrlError::NotMounted);
        }
        let read_u32 = |file: &str, radix: u32| -> Result<u32, ResctrlError> {
            let path = info_dir.join(file);
            let text = fs.read(&path)?;
            u32::from_str_radix(text.trim(), radix)
                .map_err(|_| ResctrlError::InvalidSchemata(format!("{file}: {text:?}")))
        };
        let info = CatInfo {
            cbm_mask: read_u32("cbm_mask", 16)?,
            min_cbm_bits: read_u32("min_cbm_bits", 10)?,
            num_closids: read_u32("num_closids", 10)?,
        };
        Ok(CacheController {
            fs,
            root,
            info,
            mask_cache: HashMap::new(),
            task_cache: HashMap::new(),
            metrics: ResctrlMetrics::new(),
        })
    }

    /// The CAT parameters of the opened mount.
    pub fn info(&self) -> CatInfo {
        self.info
    }

    /// Names of existing control groups (excluding the root and `info`).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn groups(&self) -> Result<Vec<String>, ResctrlError> {
        Ok(self
            .fs
            .list_dirs(&self.root)?
            .into_iter()
            .filter(|d| d != "info" && d != "mon_groups" && d != "mon_data")
            .collect())
    }

    /// Creates a control group (one hardware class of service).
    ///
    /// # Errors
    /// Maps the kernel's `ENOSPC` to [`ResctrlError::TooManyGroups`].
    pub fn create_group(&mut self, name: &str) -> Result<GroupHandle, ResctrlError> {
        let dir = self.root.join(name);
        fault_mount_lost()?;
        let started = Instant::now();
        // The injected ENOSPC takes the same mapping path below as a
        // real kernel CLOS exhaustion.
        let created = fault_io(
            faults::CREATE_GROUP,
            &dir,
            "mkdir",
            "No space left on device (os error 28)",
        )
        .and_then(|()| self.fs.create_dir(&dir));
        match created {
            Ok(()) => {
                self.metrics
                    .record_group_create(started.elapsed().as_secs_f64());
                Ok(GroupHandle {
                    name: name.to_string(),
                    dir,
                })
            }
            Err(ResctrlError::Io { message, .. }) if message.contains("No space left") => {
                Err(ResctrlError::TooManyGroups {
                    limit: self.info.num_closids,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Opens a handle to an already existing group.
    ///
    /// # Errors
    /// [`ResctrlError::NoSuchGroup`] when absent.
    pub fn existing_group(&self, name: &str) -> Result<GroupHandle, ResctrlError> {
        let dir = self.root.join(name);
        if self.fs.exists(&dir.join("schemata")) {
            Ok(GroupHandle {
                name: name.to_string(),
                dir,
            })
        } else {
            Err(ResctrlError::NoSuchGroup(name.to_string()))
        }
    }

    /// Deletes a group; its tasks fall back to the root class. Nested
    /// monitoring groups are torn down first — real resctrl refuses to
    /// rmdir a group whose `mon_groups/` is non-empty, so removing them
    /// in one call is what makes group teardown a single operation for
    /// callers like the reconciler's orphan sweep.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn remove_group(&mut self, group: GroupHandle) -> Result<(), ResctrlError> {
        let mon_root = group.dir.join("mon_groups");
        if self.fs.exists(&mon_root) {
            for name in self.fs.list_dirs(&mon_root)? {
                self.fs.remove_dir(&mon_root.join(name))?;
            }
        }
        self.fs.remove_dir(&group.dir)?;
        self.mask_cache.retain(|(g, _), _| g != &group.name);
        self.task_cache.retain(|_, g| g != &group.name);
        Ok(())
    }

    /// Programs `group`'s L3 mask for cache `domain`, validating the mask
    /// against the hardware's `cbm_mask`/`min_cbm_bits` first. Writes are
    /// skipped when the cached last-written mask is identical.
    ///
    /// # Errors
    /// [`ResctrlError::BadMask`] on local validation failure, or the
    /// kernel's rejection.
    pub fn set_l3_mask(
        &mut self,
        group: &GroupHandle,
        domain: u32,
        mask: WayMask,
    ) -> Result<(), ResctrlError> {
        if (mask.bits() & !self.info.cbm_mask) != 0 {
            return Err(ResctrlError::BadMask(format!(
                "mask {mask} exceeds hardware cbm_mask {:#x}",
                self.info.cbm_mask
            )));
        }
        if mask.way_count() < self.info.min_cbm_bits {
            return Err(ResctrlError::BadMask(format!(
                "mask {mask} has fewer than min_cbm_bits={} ways",
                self.info.min_cbm_bits
            )));
        }
        let key = (group.name.clone(), domain);
        if self.mask_cache.get(&key) == Some(&mask) {
            self.metrics.record_skipped_write();
            return Ok(());
        }
        self.write_schemata(group, domain, mask)
    }

    /// Like [`set_l3_mask`](Self::set_l3_mask) but always performs the
    /// kernel write, even when the cached mask is identical. This is the
    /// supervisor's health probe: after a degradation it must observe a
    /// *real* write succeeding before declaring resctrl healed, and the
    /// skip cache would otherwise fake that success.
    ///
    /// # Errors
    /// Same surface as [`set_l3_mask`](Self::set_l3_mask).
    pub fn rewrite_l3_mask(
        &mut self,
        group: &GroupHandle,
        domain: u32,
        mask: WayMask,
    ) -> Result<(), ResctrlError> {
        if (mask.bits() & !self.info.cbm_mask) != 0 {
            return Err(ResctrlError::BadMask(format!(
                "mask {mask} exceeds hardware cbm_mask {:#x}",
                self.info.cbm_mask
            )));
        }
        if mask.way_count() < self.info.min_cbm_bits {
            return Err(ResctrlError::BadMask(format!(
                "mask {mask} has fewer than min_cbm_bits={} ways",
                self.info.min_cbm_bits
            )));
        }
        self.write_schemata(group, domain, mask)
    }

    fn write_schemata(
        &mut self,
        group: &GroupHandle,
        domain: u32,
        mask: WayMask,
    ) -> Result<(), ResctrlError> {
        fault_mount_lost()?;
        fault_io(
            faults::WRITE_SCHEMATA,
            &group.dir.join("schemata"),
            "write",
            "Device or resource busy (os error 16)",
        )?;
        let line = format!("L3:{domain}={:x}\n", mask.bits());
        let started = Instant::now();
        self.fs.write(&group.dir.join("schemata"), &line)?;
        self.metrics
            .record_schemata_write(started.elapsed().as_secs_f64());
        self.mask_cache.insert((group.name.clone(), domain), mask);
        Ok(())
    }

    /// Reads back `group`'s current schemata from the kernel.
    ///
    /// # Errors
    /// Propagates filesystem and parse errors.
    pub fn schemata(&self, group: &GroupHandle) -> Result<Schemata, ResctrlError> {
        fault_mount_lost()?;
        fault_io(
            faults::READ,
            &group.dir.join("schemata"),
            "read",
            "Input/output error (os error 5)",
        )?;
        Schemata::parse(&self.fs.read(&group.dir.join("schemata"))?)
    }

    /// Binds thread `tid` to `group`. Subsequent identical assignments are
    /// skipped via the task cache (the paper's fast path: re-binding a job
    /// worker that already has the right class costs nothing).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn assign_task(&mut self, group: &GroupHandle, tid: u64) -> Result<(), ResctrlError> {
        if self.task_cache.get(&tid) == Some(&group.name) {
            self.metrics.record_skipped_write();
            return Ok(());
        }
        fault_mount_lost()?;
        fault_io(
            faults::ASSIGN_TASK,
            &group.dir.join("tasks"),
            "write",
            "Device or resource busy (os error 16)",
        )?;
        let started = Instant::now();
        self.fs.write(&group.dir.join("tasks"), &tid.to_string())?;
        self.metrics
            .record_task_assign(started.elapsed().as_secs_f64());
        self.task_cache.insert(tid, group.name.clone());
        Ok(())
    }

    /// Number of kernel writes avoided by the old-vs-new fast path.
    pub fn skipped_writes(&self) -> u64 {
        self.metrics.skipped_writes()
    }

    /// This controller's instruments (kernel round-trip counts and
    /// latency, skipped writes). Attach them to a registry with
    /// [`ResctrlMetrics::register_into`]; once attached, every
    /// [`monitoring`](Self::monitoring) read also publishes per-group
    /// CMT/MBM gauges.
    pub fn metrics(&self) -> ResctrlMetrics {
        self.metrics.clone()
    }

    /// Reads a group's CMT/MBM monitoring counters for L3 domain `domain`
    /// (Intel Cache Monitoring Technology / Memory Bandwidth Monitoring).
    ///
    /// # Errors
    /// [`ResctrlError::Unsupported`] when the kernel exposes no monitoring
    /// files for the group (no CMT hardware or `cqm` disabled).
    pub fn monitoring(
        &self,
        group: &GroupHandle,
        domain: u32,
    ) -> Result<MonitoringData, ResctrlError> {
        self.read_mon_data(&group.dir, &group.name, domain)
    }

    fn read_mon_data(
        &self,
        group_dir: &Path,
        label: &str,
        domain: u32,
    ) -> Result<MonitoringData, ResctrlError> {
        let dir = group_dir
            .join("mon_data")
            .join(format!("mon_L3_{domain:02}"));
        fault_mount_lost()?;
        fault_io(
            faults::READ,
            &dir.join("llc_occupancy"),
            "read",
            "Input/output error (os error 5)",
        )?;
        if !self.fs.exists(&dir.join("llc_occupancy")) {
            return Err(ResctrlError::Unsupported(
                "no mon_data for this group (CMT/MBM unavailable)".into(),
            ));
        }
        let read_u64 = |file: &str| -> Result<u64, ResctrlError> {
            let text = self.fs.read(&dir.join(file))?;
            text.trim()
                .parse()
                .map_err(|_| ResctrlError::InvalidSchemata(format!("{file}: {text:?}")))
        };
        let data = MonitoringData {
            llc_occupancy_bytes: read_u64("llc_occupancy")?,
            mbm_total_bytes: read_u64("mbm_total_bytes")?,
            mbm_local_bytes: read_u64("mbm_local_bytes")?,
        };
        self.metrics.record_monitoring(label, domain, &data);
        Ok(data)
    }

    /// Creates a monitoring group under `parent` (or under the root when
    /// `None`). Costs an RMID but no CLOS, so it never fails with
    /// [`ResctrlError::TooManyGroups`].
    ///
    /// # Errors
    /// [`ResctrlError::Unsupported`] when the kernel exposes no
    /// `mon_groups` directory (RDT monitoring absent), otherwise
    /// filesystem errors.
    pub fn create_mon_group(
        &mut self,
        parent: Option<&GroupHandle>,
        name: &str,
    ) -> Result<MonGroupHandle, ResctrlError> {
        let base = parent.map_or(self.root.as_path(), |g| g.dir.as_path());
        let mon_root = base.join("mon_groups");
        if !self.fs.exists(&mon_root) {
            return Err(ResctrlError::Unsupported(
                "no mon_groups directory (RDT monitoring unavailable)".into(),
            ));
        }
        let dir = mon_root.join(name);
        let started = Instant::now();
        self.fs.create_dir(&dir)?;
        self.metrics
            .record_group_create(started.elapsed().as_secs_f64());
        Ok(MonGroupHandle {
            name: name.to_string(),
            dir,
        })
    }

    /// Names of existing monitoring groups under `parent` (root when
    /// `None`).
    ///
    /// # Errors
    /// Propagates filesystem errors; an absent `mon_groups` directory
    /// yields an empty list.
    pub fn mon_groups(&self, parent: Option<&GroupHandle>) -> Result<Vec<String>, ResctrlError> {
        let base = parent.map_or(self.root.as_path(), |g| g.dir.as_path());
        let mon_root = base.join("mon_groups");
        if !self.fs.exists(&mon_root) {
            return Ok(Vec::new());
        }
        self.fs.list_dirs(&mon_root)
    }

    /// Deletes a monitoring group, releasing its RMID.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn remove_mon_group(&mut self, group: MonGroupHandle) -> Result<(), ResctrlError> {
        self.fs.remove_dir(&group.dir)
    }

    /// Binds thread `tid` to a monitoring group (CMT/MBM attribution only
    /// — the thread keeps its control group's cache mask).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn assign_task_mon(
        &mut self,
        group: &MonGroupHandle,
        tid: u64,
    ) -> Result<(), ResctrlError> {
        let started = Instant::now();
        self.fs.write(&group.dir.join("tasks"), &tid.to_string())?;
        self.metrics
            .record_task_assign(started.elapsed().as_secs_f64());
        Ok(())
    }

    /// Reads a monitoring group's CMT/MBM counters for L3 `domain`.
    ///
    /// # Errors
    /// Same surface as [`CacheController::monitoring`].
    pub fn mon_group_monitoring(
        &self,
        group: &MonGroupHandle,
        domain: u32,
    ) -> Result<MonitoringData, ResctrlError> {
        self.read_mon_data(&group.dir, &group.name, domain)
    }
}

/// CMT/MBM counters of one control group on one cache domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonitoringData {
    /// Bytes of LLC currently occupied by the group's tasks (CMT).
    pub llc_occupancy_bytes: u64,
    /// Total memory bandwidth consumed, cumulative bytes (MBM).
    pub mbm_total_bytes: u64,
    /// Local-socket share of `mbm_total_bytes`.
    pub mbm_local_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FakeFs;

    fn ctl() -> (FakeFs, CacheController) {
        let fs = FakeFs::broadwell();
        let ctl = CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl").unwrap();
        (fs, ctl)
    }

    #[test]
    fn open_reads_cat_info() {
        let (_, ctl) = ctl();
        assert_eq!(
            ctl.info(),
            CatInfo {
                cbm_mask: 0xfffff,
                min_cbm_bits: 2,
                num_closids: 16
            }
        );
        assert_eq!(ctl.info().ways(), 20);
    }

    #[test]
    fn open_fails_when_not_mounted() {
        let fs = FakeFs::broadwell();
        let err = CacheController::open_with(Box::new(fs), "/not/mounted").unwrap_err();
        assert_eq!(err, ResctrlError::NotMounted);
    }

    #[test]
    fn group_lifecycle() {
        let (_, mut ctl) = ctl();
        assert!(ctl.groups().unwrap().is_empty());
        let g = ctl.create_group("olap").unwrap();
        assert_eq!(ctl.groups().unwrap(), vec!["olap"]);
        assert_eq!(ctl.existing_group("olap").unwrap(), g);
        ctl.remove_group(g).unwrap();
        assert!(ctl.groups().unwrap().is_empty());
        assert!(matches!(
            ctl.existing_group("olap"),
            Err(ResctrlError::NoSuchGroup(_))
        ));
    }

    #[test]
    fn set_mask_programs_schemata() {
        let (_, mut ctl) = ctl();
        let g = ctl.create_group("scan").unwrap();
        ctl.set_l3_mask(&g, 0, WayMask::new(0x3).unwrap()).unwrap();
        let s = ctl.schemata(&g).unwrap();
        assert_eq!(s.mask_of(0).unwrap().bits(), 0x3);
    }

    #[test]
    fn set_mask_validates_against_hardware() {
        let (_, mut ctl) = ctl();
        let g = ctl.create_group("g").unwrap();
        // 1 way < min_cbm_bits (2): locally rejected.
        assert!(matches!(
            ctl.set_l3_mask(&g, 0, WayMask::new(0x1).unwrap()),
            Err(ResctrlError::BadMask(_))
        ));
        // 24 ways > the 20-bit cbm_mask: locally rejected.
        assert!(matches!(
            ctl.set_l3_mask(&g, 0, WayMask::from_ways(24).unwrap()),
            Err(ResctrlError::BadMask(_))
        ));
    }

    #[test]
    fn redundant_mask_writes_are_skipped() {
        let (_, mut ctl) = ctl();
        let g = ctl.create_group("g").unwrap();
        let m = WayMask::new(0xfff).unwrap();
        ctl.set_l3_mask(&g, 0, m).unwrap();
        assert_eq!(ctl.skipped_writes(), 0);
        for _ in 0..5 {
            ctl.set_l3_mask(&g, 0, m).unwrap();
        }
        assert_eq!(ctl.skipped_writes(), 5);
        // A different mask goes through again.
        ctl.set_l3_mask(&g, 0, WayMask::new(0x3).unwrap()).unwrap();
        assert_eq!(ctl.schemata(&g).unwrap().mask_of(0).unwrap().bits(), 0x3);
    }

    #[test]
    fn task_assignment_appends_and_caches() {
        let (fs, mut ctl) = ctl();
        let g = ctl.create_group("g").unwrap();
        ctl.assign_task(&g, 111).unwrap();
        ctl.assign_task(&g, 222).unwrap();
        ctl.assign_task(&g, 111).unwrap(); // cached, skipped
        assert_eq!(
            fs.tasks_of(std::path::Path::new("/sys/fs/resctrl/g")),
            vec![111, 222]
        );
        assert_eq!(ctl.skipped_writes(), 1);
    }

    #[test]
    fn moving_task_between_groups_rewrites() {
        let (fs, mut ctl) = ctl();
        let a = ctl.create_group("a").unwrap();
        let b = ctl.create_group("b").unwrap();
        ctl.assign_task(&a, 7).unwrap();
        ctl.assign_task(&b, 7).unwrap();
        // The fake appends to both files (the real kernel moves the task);
        // what matters here is that the second write was not skipped.
        assert_eq!(
            fs.tasks_of(std::path::Path::new("/sys/fs/resctrl/b")),
            vec![7]
        );
        assert_eq!(ctl.skipped_writes(), 0);
    }

    #[test]
    fn closid_exhaustion_maps_to_too_many_groups() {
        let fs = FakeFs::new("/r", 0xfffff, 2, 3, &[0]);
        let mut ctl = CacheController::open_with(Box::new(fs), "/r").unwrap();
        ctl.create_group("g1").unwrap();
        ctl.create_group("g2").unwrap();
        assert!(matches!(
            ctl.create_group("g3"),
            Err(ResctrlError::TooManyGroups { limit: 3 })
        ));
    }

    #[test]
    fn monitoring_reads_cmt_and_mbm_counters() {
        let (fs, mut ctl) = ctl();
        let g = ctl.create_group("olap").unwrap();
        // Kernel-side counters tick (emulated by the fake).
        fs.set_mon_counter(
            std::path::Path::new("/sys/fs/resctrl/olap"),
            "llc_occupancy",
            5_767_168,
        );
        fs.set_mon_counter(
            std::path::Path::new("/sys/fs/resctrl/olap"),
            "mbm_total_bytes",
            123_456_789,
        );
        let m = ctl.monitoring(&g, 0).unwrap();
        assert_eq!(m.llc_occupancy_bytes, 5_767_168);
        assert_eq!(m.mbm_total_bytes, 123_456_789);
        assert_eq!(m.mbm_local_bytes, 0);
        // Unknown domain -> Unsupported, like a kernel without that socket.
        assert!(matches!(
            ctl.monitoring(&g, 7),
            Err(ResctrlError::Unsupported(_))
        ));
    }

    #[test]
    fn metrics_count_kernel_round_trips_and_skips() {
        let (fs, mut ctl) = ctl();
        let g = ctl.create_group("g").unwrap();
        let m = WayMask::new(0xfff).unwrap();
        ctl.set_l3_mask(&g, 0, m).unwrap();
        ctl.set_l3_mask(&g, 0, m).unwrap(); // skipped
        ctl.assign_task(&g, 7).unwrap();
        ctl.assign_task(&g, 7).unwrap(); // skipped
        let metrics = ctl.metrics();
        assert_eq!(metrics.group_creates(), 1);
        assert_eq!(metrics.schemata_writes(), 1);
        assert_eq!(metrics.task_assigns(), 1);
        assert_eq!(metrics.skipped_writes(), 2);
        assert_eq!(metrics.skipped_writes(), ctl.skipped_writes());
        // Three real fs operations, each timed.
        assert_eq!(metrics.fs_op_seconds().count(), 3);

        // Once attached to a registry, a monitoring read publishes gauges.
        let registry = ccp_obs::Registry::new();
        metrics.register_into(&registry);
        fs.set_mon_counter(
            std::path::Path::new("/sys/fs/resctrl/g"),
            "llc_occupancy",
            4096,
        );
        ctl.monitoring(&g, 0).unwrap();
        let text = registry.render_prometheus();
        assert!(text.contains("ccp_resctrl_schemata_writes_total 1"));
        assert!(text.contains("ccp_resctrl_llc_occupancy_bytes{domain=\"0\",group=\"g\"} 4096.0"));
    }

    #[test]
    fn mon_group_lifecycle_and_counters() {
        let (fs, mut ctl) = ctl();
        let g = ctl.create_group("olap").unwrap();
        let at_root = ctl.create_mon_group(None, "q1").unwrap();
        let nested = ctl.create_mon_group(Some(&g), "q2").unwrap();
        assert_eq!(ctl.mon_groups(None).unwrap(), vec!["q1"]);
        assert_eq!(ctl.mon_groups(Some(&g)).unwrap(), vec!["q2"]);
        // Mon groups never show up as control groups.
        assert_eq!(ctl.groups().unwrap(), vec!["olap"]);

        ctl.assign_task_mon(&nested, 42).unwrap();
        assert_eq!(
            fs.tasks_of(Path::new("/sys/fs/resctrl/olap/mon_groups/q2")),
            vec![42]
        );
        fs.set_mon_counter(
            Path::new("/sys/fs/resctrl/olap/mon_groups/q2"),
            "llc_occupancy",
            8192,
        );
        let m = ctl.mon_group_monitoring(&nested, 0).unwrap();
        assert_eq!(m.llc_occupancy_bytes, 8192);

        ctl.remove_mon_group(nested).unwrap();
        assert!(ctl.mon_groups(Some(&g)).unwrap().is_empty());
        ctl.remove_mon_group(at_root).unwrap();
    }

    #[test]
    fn remove_group_tears_down_nested_mon_groups_first() {
        // Regression: under strict-rmdir semantics (real resctrl refuses
        // to remove a group whose mon_groups/ is non-empty) a one-shot
        // remove_group used to fail with ENOTEMPTY and leak the group.
        let (fs, mut ctl) = ctl();
        let g = ctl.create_group("olap").unwrap();
        ctl.create_mon_group(Some(&g), "q1").unwrap();
        ctl.create_mon_group(Some(&g), "q2").unwrap();
        // The raw rmdir the old implementation issued is refused.
        use crate::fs::ResctrlFs;
        let err = fs
            .remove_dir(Path::new("/sys/fs/resctrl/olap"))
            .unwrap_err();
        assert!(err.to_string().contains("Directory not empty"), "{err}");
        // remove_group removes the monitoring children, then the group.
        ctl.remove_group(g).unwrap();
        assert!(ctl.groups().unwrap().is_empty());
        assert!(!fs.exists(Path::new("/sys/fs/resctrl/olap")));
    }

    #[test]
    fn paper_partitioning_scenario_end_to_end() {
        // Reproduce the exact configuration of Section V-B: scans confined
        // to 0x3, aggregations at 0xfffff, joins at 0xfff.
        let (_, mut ctl) = ctl();
        let scan = ctl.create_group("cuid_polluting").unwrap();
        let agg = ctl.create_group("cuid_sensitive").unwrap();
        let join = ctl.create_group("cuid_mixed").unwrap();
        ctl.set_l3_mask(&scan, 0, WayMask::new(0x3).unwrap())
            .unwrap();
        ctl.set_l3_mask(&agg, 0, WayMask::new(0xfffff).unwrap())
            .unwrap();
        ctl.set_l3_mask(&join, 0, WayMask::new(0xfff).unwrap())
            .unwrap();
        for (g, tid) in [(&scan, 100), (&agg, 200), (&join, 300)] {
            ctl.assign_task(g, tid).unwrap();
        }
        assert_eq!(ctl.schemata(&scan).unwrap().mask_of(0).unwrap().bits(), 0x3);
        assert_eq!(
            ctl.schemata(&agg).unwrap().mask_of(0).unwrap().bits(),
            0xfffff
        );
        assert_eq!(
            ctl.schemata(&join).unwrap().mask_of(0).unwrap().bits(),
            0xfff
        );
    }
}
