//! Detection of CAT hardware support and resctrl availability.
//!
//! Mirrors the checks an operator would do by hand:
//! 1. `/proc/cpuinfo` advertises `rdt_a` (allocation) and `cat_l3`;
//! 2. `/proc/filesystems` lists `resctrl` (kernel ≥ 4.10 with
//!    `CONFIG_X86_CPU_RESCTRL`);
//! 3. the filesystem is mounted (the `info/L3` directory exists).

use std::path::Path;

/// Result of probing the host for CAT support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatSupport {
    /// CAT hardware present and resctrl mounted at the contained path —
    /// [`crate::CacheController::open`] will work.
    Available { mount: String },
    /// Hardware and kernel support exist, but nothing is mounted at the
    /// conventional mount point.
    NotMounted,
    /// The kernel has no resctrl filesystem (too old or not configured).
    KernelMissing { kernel_hint: String },
    /// The CPU does not advertise L3 CAT.
    HardwareMissing { missing_flags: Vec<String> },
}

impl CatSupport {
    /// Whether a controller can be opened right now.
    pub fn is_available(&self) -> bool {
        matches!(self, CatSupport::Available { .. })
    }
}

/// Probes the current host. Never fails: any read error is folded into the
/// appropriate "missing" variant, because an unreadable `/proc` means the
/// feature is unusable either way.
pub fn detect() -> CatSupport {
    detect_at(
        Path::new("/proc/cpuinfo"),
        Path::new("/proc/filesystems"),
        Path::new(crate::DEFAULT_MOUNT),
    )
}

/// Testable core of [`detect`] with injectable paths.
pub fn detect_at(cpuinfo: &Path, filesystems: &Path, mount: &Path) -> CatSupport {
    let cpuinfo_text = std::fs::read_to_string(cpuinfo).unwrap_or_default();
    let missing = missing_cpu_flags(&cpuinfo_text);
    if !missing.is_empty() {
        return CatSupport::HardwareMissing {
            missing_flags: missing,
        };
    }
    let fs_text = std::fs::read_to_string(filesystems).unwrap_or_default();
    if !fs_text
        .lines()
        .any(|l| l.trim_start().trim_start_matches("nodev").trim() == "resctrl")
    {
        let kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease").unwrap_or_default();
        return CatSupport::KernelMissing {
            kernel_hint: format!("kernel {} lacks resctrl (need >= 4.10)", kernel.trim()),
        };
    }
    if mount.join("info").join("L3").is_dir() {
        CatSupport::Available {
            mount: mount.display().to_string(),
        }
    } else {
        CatSupport::NotMounted
    }
}

/// Returns which required CPU flags are absent from a cpuinfo dump.
pub fn missing_cpu_flags(cpuinfo: &str) -> Vec<String> {
    let flags_line = cpuinfo
        .lines()
        .find(|l| l.starts_with("flags"))
        .and_then(|l| l.split_once(':'))
        .map(|(_, v)| v)
        .unwrap_or("");
    let present: std::collections::HashSet<&str> = flags_line.split_whitespace().collect();
    ["rdt_a", "cat_l3"]
        .iter()
        .filter(|f| !present.contains(**f))
        .map(|f| f.to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAT_CPUINFO: &str = "processor\t: 0\nflags\t\t: fpu vme sse sse2 rdt_a cat_l3 cdp_l3\n";
    const PLAIN_CPUINFO: &str = "processor\t: 0\nflags\t\t: fpu vme sse sse2 avx2\n";

    #[test]
    fn flags_detected() {
        assert!(missing_cpu_flags(CAT_CPUINFO).is_empty());
        let missing = missing_cpu_flags(PLAIN_CPUINFO);
        assert_eq!(missing, vec!["rdt_a".to_string(), "cat_l3".to_string()]);
    }

    #[test]
    fn empty_cpuinfo_reports_all_missing() {
        assert_eq!(missing_cpu_flags("").len(), 2);
    }

    #[test]
    fn detect_handles_missing_hardware() {
        let dir = std::env::temp_dir().join(format!("ccp-detect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cpuinfo = dir.join("cpuinfo");
        std::fs::write(&cpuinfo, PLAIN_CPUINFO).unwrap();
        let fs = dir.join("filesystems");
        std::fs::write(&fs, "nodev\tresctrl\n").unwrap();
        let got = detect_at(&cpuinfo, &fs, &dir.join("resctrl"));
        assert!(matches!(got, CatSupport::HardwareMissing { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detect_walks_through_to_not_mounted() {
        let dir = std::env::temp_dir().join(format!("ccp-detect2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cpuinfo = dir.join("cpuinfo");
        std::fs::write(&cpuinfo, CAT_CPUINFO).unwrap();
        let fs = dir.join("filesystems");
        std::fs::write(&fs, "nodev\tsysfs\nnodev\tresctrl\n").unwrap();
        let got = detect_at(&cpuinfo, &fs, &dir.join("resctrl"));
        assert_eq!(got, CatSupport::NotMounted);
        // Once the info/L3 dir exists it flips to Available.
        std::fs::create_dir_all(dir.join("resctrl/info/L3")).unwrap();
        let got = detect_at(&cpuinfo, &fs, &dir.join("resctrl"));
        assert!(got.is_available());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn detect_reports_kernel_missing() {
        let dir = std::env::temp_dir().join(format!("ccp-detect3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cpuinfo = dir.join("cpuinfo");
        std::fs::write(&cpuinfo, CAT_CPUINFO).unwrap();
        let fs = dir.join("filesystems");
        std::fs::write(&fs, "nodev\tsysfs\n").unwrap();
        let got = detect_at(&cpuinfo, &fs, &dir.join("resctrl"));
        assert!(matches!(got, CatSupport::KernelMissing { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
