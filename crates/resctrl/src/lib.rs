//! # ccp-resctrl
//!
//! A typed driver for the Linux **resctrl** filesystem — the kernel
//! interface to Intel Cache Allocation Technology (CAT) that the paper uses
//! to partition the last-level cache (Sections V-A and V-C).
//!
//! resctrl is a pseudo filesystem (usually mounted at `/sys/fs/resctrl`):
//! each directory under the root is a *class of service* (CLOS); its
//! `schemata` file holds the L3 capacity bitmask per cache domain, and
//! writing a thread id into its `tasks` file binds that thread to the
//! class. On a context switch the kernel programs the core's CLOS register,
//! so masks follow threads across cores — exactly the property the paper's
//! engine integration relies on (it tags *job worker* threads, not cores).
//!
//! The driver is built over a small filesystem abstraction ([`fs::ResctrlFs`])
//! with two implementations:
//!
//! * [`fs::RealFs`] — the actual `/sys/fs/resctrl` tree, for CAT hardware;
//! * [`fs::FakeFs`] — an in-memory emulation of the kernel's behaviour
//!   (schemata normalization, CLOS limits, task files), used by the test
//!   suite and by any host without CAT, such as a container on an old
//!   kernel.
//!
//! Beyond allocation, the crate also drives RDT **monitoring**: typed
//! `mon_groups` handles ([`MonGroupHandle`]) for RMID-backed per-query
//! counters, CMT/MBM reads, and a background [`OccupancySampler`] that
//! publishes per-CUID-class `ccp_llc_occupancy_bytes` gauges — backed by
//! real counters ([`ResctrlMonitor`]) or by a load-driven model
//! ([`SimulatedMonitor`]) where the hardware has none.
//!
//! ```
//! use ccp_resctrl::{fs::FakeFs, CacheController};
//! use ccp_cachesim::WayMask;
//!
//! let fs = FakeFs::broadwell();
//! let mut ctl = CacheController::open_with(Box::new(fs), "/sys/fs/resctrl").unwrap();
//! let group = ctl.create_group("scan_polluters").unwrap();
//! // The paper's 10% mask for cache-polluting scans.
//! ctl.set_l3_mask(&group, 0, WayMask::new(0x3).unwrap()).unwrap();
//! ctl.assign_task(&group, 4242).unwrap();
//! ```

pub mod controller;
pub mod detect;
pub mod error;
pub mod faults;
pub mod fs;
pub mod metrics;
pub mod monitor;
pub mod reconcile;
pub mod schemata;
pub mod supervisor;
pub mod tenant;

pub use controller::{CacheController, CatInfo, GroupHandle, MonGroupHandle, MonitoringData};
pub use detect::{detect, CatSupport};
pub use error::ResctrlError;
pub use metrics::ResctrlMetrics;
pub use monitor::{
    ClassSample, OccupancyProbe, OccupancySampler, ReadingsHub, ResctrlMonitor, SimClass,
    SimulatedMonitor,
};
pub use reconcile::{DesiredGroup, GroupState, ReconcileOutcome, ReconcileStats, Reconciler};
pub use schemata::Schemata;
pub use supervisor::{ResctrlHealth, RetryPolicy, SupervisedController};
pub use tenant::{parse_group_name, TenantId, DEFAULT_TENANT};

/// Conventional mount point of the resctrl filesystem.
pub const DEFAULT_MOUNT: &str = "/sys/fs/resctrl";
