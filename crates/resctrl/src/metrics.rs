//! Instruments for the resctrl driver, built on [`ccp_obs`].
//!
//! Every [`CacheController`](crate::CacheController) owns a private
//! [`ResctrlMetrics`]: kernel round-trip counts (schemata writes, task
//! assignments, group creation), the writes the Section V-C old-vs-new
//! comparison skipped, and a latency histogram over the actual resctrl
//! filesystem operations — the paper's "< 100 µs even when the kernel
//! is involved" claim, as a measured distribution.
//!
//! Attaching the bundle to a [`Registry`] with
//! [`ResctrlMetrics::register_into`] additionally turns every subsequent
//! [`monitoring`](crate::CacheController::monitoring) read into CMT/MBM
//! gauges labeled by group and domain, so a scrape shows per-class LLC
//! occupancy the same way the paper's Figure 6 does.

use ccp_obs::{unit, Counter, Histogram, Registry};
use std::sync::{Arc, Mutex};

use crate::controller::MonitoringData;

#[derive(Debug)]
struct Inner {
    schemata_writes: Counter,
    task_assigns: Counter,
    group_creates: Counter,
    skipped_writes: Counter,
    fs_op_seconds: Histogram,
    /// Registry attached by `register_into`; monitoring reads publish
    /// per-group gauges through it (labels are dynamic, so the gauges
    /// cannot be pre-built handles).
    exposition: Mutex<Option<Registry>>,
}

/// Per-controller resctrl instruments. Cloning shares the state.
#[derive(Debug, Clone)]
pub struct ResctrlMetrics {
    inner: Arc<Inner>,
}

impl Default for ResctrlMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ResctrlMetrics {
    /// Creates a fresh (zeroed, unregistered) instrument bundle.
    pub fn new() -> Self {
        ResctrlMetrics {
            inner: Arc::new(Inner {
                schemata_writes: Counter::new(),
                task_assigns: Counter::new(),
                group_creates: Counter::new(),
                skipped_writes: Counter::new(),
                fs_op_seconds: Histogram::new(unit::latency_seconds()),
                exposition: Mutex::new(None),
            }),
        }
    }

    /// Records a schemata write that actually reached the kernel.
    pub fn record_schemata_write(&self, seconds: f64) {
        self.inner.schemata_writes.inc();
        self.inner.fs_op_seconds.observe(seconds);
    }

    /// Records a task assignment that actually reached the kernel.
    pub fn record_task_assign(&self, seconds: f64) {
        self.inner.task_assigns.inc();
        self.inner.fs_op_seconds.observe(seconds);
    }

    /// Records a control-group creation.
    pub fn record_group_create(&self, seconds: f64) {
        self.inner.group_creates.inc();
        self.inner.fs_op_seconds.observe(seconds);
    }

    /// Records a kernel write skipped by the old-vs-new fast path.
    pub fn record_skipped_write(&self) {
        self.inner.skipped_writes.inc();
    }

    /// Publishes one group's CMT/MBM sample as gauges, when a registry
    /// is attached (no-op otherwise).
    pub fn record_monitoring(&self, group: &str, domain: u32, data: &MonitoringData) {
        let registry = {
            let guard = self
                .inner
                .exposition
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            guard.clone()
        };
        let Some(registry) = registry else { return };
        let domain = domain.to_string();
        let labels = [("group", group), ("domain", domain.as_str())];
        let set = |name: &str, help: &str, value: u64| {
            registry
                .gauge_family(name, help)
                .get_or_create(&labels)
                .set(value as f64);
        };
        set(
            "ccp_resctrl_llc_occupancy_bytes",
            "LLC bytes occupied by the group's tasks (CMT)",
            data.llc_occupancy_bytes,
        );
        set(
            "ccp_resctrl_mbm_total_bytes",
            "Cumulative memory bandwidth consumed by the group (MBM)",
            data.mbm_total_bytes,
        );
        set(
            "ccp_resctrl_mbm_local_bytes",
            "Local-socket share of mbm_total_bytes",
            data.mbm_local_bytes,
        );
    }

    /// Schemata writes that reached the kernel.
    pub fn schemata_writes(&self) -> u64 {
        self.inner.schemata_writes.get()
    }

    /// Task assignments that reached the kernel.
    pub fn task_assigns(&self) -> u64 {
        self.inner.task_assigns.get()
    }

    /// Control groups created.
    pub fn group_creates(&self) -> u64 {
        self.inner.group_creates.get()
    }

    /// Kernel writes avoided by the old-vs-new fast path.
    pub fn skipped_writes(&self) -> u64 {
        self.inner.skipped_writes.get()
    }

    /// Latency histogram over actual resctrl filesystem operations
    /// (shared handle).
    pub fn fs_op_seconds(&self) -> Histogram {
        self.inner.fs_op_seconds.clone()
    }

    /// Attaches the live handles to `registry` and remembers it, so
    /// later monitoring reads publish per-group CMT/MBM gauges too.
    pub fn register_into(&self, registry: &Registry) {
        registry
            .counter_family(
                "ccp_resctrl_schemata_writes_total",
                "Schemata (L3 mask) writes that reached the kernel",
            )
            .register(&[], self.inner.schemata_writes.clone());
        registry
            .counter_family(
                "ccp_resctrl_task_assigns_total",
                "Task-to-group assignments that reached the kernel",
            )
            .register(&[], self.inner.task_assigns.clone());
        registry
            .counter_family("ccp_resctrl_group_creates_total", "Control groups created")
            .register(&[], self.inner.group_creates.clone());
        registry
            .counter_family(
                "ccp_resctrl_skipped_writes_total",
                "Kernel writes avoided by the old-vs-new mask/task comparison",
            )
            .register(&[], self.inner.skipped_writes.clone());
        registry
            .histogram_family_with(
                "ccp_resctrl_fs_op_seconds",
                "Latency of resctrl filesystem operations (schemata/tasks/mkdir)",
                unit::latency_seconds(),
            )
            .register(&[], self.inner.fs_op_seconds.clone());
        let mut guard = self
            .inner
            .exposition
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *guard = Some(registry.clone());
    }

    /// Dummy gauge accessor used in tests to confirm monitoring gauges
    /// land in the attached registry.
    #[cfg(test)]
    fn attached(&self) -> bool {
        self.inner.exposition.lock().unwrap().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histogram_accumulate() {
        let m = ResctrlMetrics::new();
        m.record_schemata_write(0.00005);
        m.record_schemata_write(0.00007);
        m.record_task_assign(0.00002);
        m.record_group_create(0.0001);
        m.record_skipped_write();
        assert_eq!(m.schemata_writes(), 2);
        assert_eq!(m.task_assigns(), 1);
        assert_eq!(m.group_creates(), 1);
        assert_eq!(m.skipped_writes(), 1);
        assert_eq!(m.fs_op_seconds().count(), 4);
    }

    #[test]
    fn monitoring_without_registry_is_a_noop() {
        let m = ResctrlMetrics::new();
        assert!(!m.attached());
        // Must not panic or allocate families anywhere.
        m.record_monitoring(
            "olap",
            0,
            &MonitoringData {
                llc_occupancy_bytes: 1,
                mbm_total_bytes: 2,
                mbm_local_bytes: 3,
            },
        );
    }

    #[test]
    fn register_into_exposes_counters_and_mon_gauges() {
        let m = ResctrlMetrics::new();
        let r = Registry::new();
        m.register_into(&r);
        assert!(m.attached());
        m.record_schemata_write(0.0001);
        m.record_monitoring(
            "olap",
            0,
            &MonitoringData {
                llc_occupancy_bytes: 5_767_168,
                mbm_total_bytes: 99,
                mbm_local_bytes: 42,
            },
        );
        let text = r.render_prometheus();
        assert!(text.contains("ccp_resctrl_schemata_writes_total 1"));
        assert!(
            text.contains("ccp_resctrl_llc_occupancy_bytes{domain=\"0\",group=\"olap\"} 5767168.0"),
            "got: {text}"
        );
        assert!(text.contains("ccp_resctrl_mbm_local_bytes{domain=\"0\",group=\"olap\"} 42.0"));
    }
}
