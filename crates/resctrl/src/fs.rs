//! Filesystem abstraction: the real resctrl tree and an in-memory fake that
//! emulates the kernel's observable behaviour.

use crate::error::ResctrlError;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The subset of filesystem operations the resctrl protocol needs.
///
/// All paths are absolute. Implementations must behave like the kernel
/// tree: reads return whole-file contents, writes are whole-buffer writes
/// (the kernel parses each `write(2)` independently).
pub trait ResctrlFs: Send + Sync {
    /// Reads the full contents of `path`.
    fn read(&self, path: &Path) -> Result<String, ResctrlError>;
    /// Writes `data` to `path` (single write syscall semantics).
    fn write(&self, path: &Path, data: &str) -> Result<(), ResctrlError>;
    /// Creates a directory (one level).
    fn create_dir(&self, path: &Path) -> Result<(), ResctrlError>;
    /// Removes a directory.
    fn remove_dir(&self, path: &Path) -> Result<(), ResctrlError>;
    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;
    /// Names of subdirectories of `path`.
    fn list_dirs(&self, path: &Path) -> Result<Vec<String>, ResctrlError>;
}

/// Passthrough to the host filesystem (`/sys/fs/resctrl` on CAT hardware).
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl ResctrlFs for RealFs {
    fn read(&self, path: &Path) -> Result<String, ResctrlError> {
        std::fs::read_to_string(path)
            .map_err(|e| ResctrlError::io(path.display().to_string(), "read", &e))
    }

    fn write(&self, path: &Path, data: &str) -> Result<(), ResctrlError> {
        std::fs::write(path, data)
            .map_err(|e| ResctrlError::io(path.display().to_string(), "write", &e))
    }

    fn create_dir(&self, path: &Path) -> Result<(), ResctrlError> {
        std::fs::create_dir(path)
            .map_err(|e| ResctrlError::io(path.display().to_string(), "mkdir", &e))
    }

    fn remove_dir(&self, path: &Path) -> Result<(), ResctrlError> {
        std::fs::remove_dir(path)
            .map_err(|e| ResctrlError::io(path.display().to_string(), "rmdir", &e))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn list_dirs(&self, path: &Path) -> Result<Vec<String>, ResctrlError> {
        let rd = std::fs::read_dir(path)
            .map_err(|e| ResctrlError::io(path.display().to_string(), "readdir", &e))?;
        let mut out = Vec::new();
        for entry in rd {
            let entry =
                entry.map_err(|e| ResctrlError::io(path.display().to_string(), "readdir", &e))?;
            if entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                out.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        out.sort();
        Ok(out)
    }
}

/// Shared mutable state of the fake resctrl tree.
#[derive(Debug, Default)]
struct FakeState {
    /// file path -> contents.
    files: BTreeMap<PathBuf, String>,
    /// directory paths (groups + root + info dirs).
    dirs: Vec<PathBuf>,
}

/// In-memory emulation of a mounted resctrl filesystem.
///
/// Mimics the kernel behaviours the driver depends on:
/// * the root pre-populated with `schemata`, `tasks`, `cpus` and
///   `info/L3/{cbm_mask,min_cbm_bits,num_closids}`;
/// * `mkdir` of a group auto-creates its `schemata` (full mask) and `tasks`
///   files, and fails with `ENOSPC` semantics once `num_closids - 1` groups
///   exist;
/// * `mkdir` under a `mon_groups` directory creates a *monitoring group*
///   (CMT/MBM counters + `tasks`, no `schemata`), which does **not**
///   consume a CLOS — as on RDT-monitoring kernels;
/// * writes to a `schemata` file are validated (hex mask, contiguity,
///   min_cbm_bits, known domain) and the file is re-rendered in the
///   kernel's canonical `L3:0=fffff` format;
/// * writes to a `tasks` file append one pid per line.
#[derive(Debug, Clone)]
pub struct FakeFs {
    state: Arc<Mutex<FakeState>>,
    root: PathBuf,
    cbm_mask: u32,
    min_cbm_bits: u32,
    num_closids: u32,
    domains: Vec<u32>,
}

impl FakeFs {
    /// A fake tree modeled on the paper's Xeon E5-2699 v4: 20-bit CBM,
    /// 16 classes of service, one L3 domain (single socket), mounted at
    /// `/sys/fs/resctrl`.
    pub fn broadwell() -> Self {
        FakeFs::new("/sys/fs/resctrl", 0xfffff, 2, 16, &[0])
    }

    /// Builds a fake tree with explicit CAT parameters.
    pub fn new(
        root: impl Into<PathBuf>,
        cbm_mask: u32,
        min_cbm_bits: u32,
        num_closids: u32,
        domains: &[u32],
    ) -> Self {
        let root = root.into();
        let mut st = FakeState::default();
        st.dirs.push(root.clone());
        st.dirs.push(root.join("info"));
        st.dirs.push(root.join("info/L3"));
        st.files
            .insert(root.join("info/L3/cbm_mask"), format!("{cbm_mask:x}\n"));
        st.files.insert(
            root.join("info/L3/min_cbm_bits"),
            format!("{min_cbm_bits}\n"),
        );
        st.files
            .insert(root.join("info/L3/num_closids"), format!("{num_closids}\n"));
        let schemata = Self::render_schemata(domains, cbm_mask);
        st.files.insert(root.join("schemata"), schemata);
        st.files.insert(root.join("tasks"), String::new());
        st.files.insert(root.join("cpus"), "ffffff\n".to_string());
        // Monitoring (CMT/MBM) files, as on kernels with RDT monitoring.
        st.dirs.push(root.join("mon_data"));
        st.dirs.push(root.join("mon_data/mon_L3_00"));
        st.files
            .insert(root.join("mon_data/mon_L3_00/llc_occupancy"), "0\n".into());
        st.files.insert(
            root.join("mon_data/mon_L3_00/mbm_total_bytes"),
            "0\n".into(),
        );
        st.files.insert(
            root.join("mon_data/mon_L3_00/mbm_local_bytes"),
            "0\n".into(),
        );
        // Per-task monitoring groups live under `mon_groups` and do not
        // consume a CLOS (they only allocate an RMID).
        st.dirs.push(root.join("mon_groups"));
        FakeFs {
            state: Arc::new(Mutex::new(st)),
            root,
            cbm_mask,
            min_cbm_bits,
            num_closids,
            domains: domains.to_vec(),
        }
    }

    fn render_schemata(domains: &[u32], mask: u32) -> String {
        let parts: Vec<String> = domains.iter().map(|d| format!("{d}={mask:x}")).collect();
        format!("L3:{}\n", parts.join(";"))
    }

    /// Sets a monitoring counter of a group (test helper emulating the
    /// kernel updating CMT/MBM values).
    pub fn set_mon_counter(&self, group_dir: &Path, file: &str, value: u64) {
        let mut st = self.state.lock();
        st.files.insert(
            group_dir.join("mon_data/mon_L3_00").join(file),
            format!("{value}\n"),
        );
    }

    /// Lists the tasks assigned to a group (test helper).
    pub fn tasks_of(&self, group_dir: &Path) -> Vec<u64> {
        let st = self.state.lock();
        st.files
            .get(&group_dir.join("tasks"))
            .map(|s| s.lines().filter_map(|l| l.trim().parse().ok()).collect())
            .unwrap_or_default()
    }

    /// Whether a root-level directory name is reserved by the kernel (not
    /// a control group).
    fn is_reserved(name: &Path) -> bool {
        name.ends_with("info") || name.ends_with("mon_data") || name.ends_with("mon_groups")
    }

    /// Number of group directories currently present (excluding the root
    /// and the kernel's reserved directories).
    pub fn group_count(&self) -> usize {
        let st = self.state.lock();
        st.dirs
            .iter()
            .filter(|d| d.parent() == Some(&self.root) && !Self::is_reserved(d))
            .count()
    }

    fn is_group_dir(&self, path: &Path) -> bool {
        path.parent() == Some(self.root.as_path()) && !Self::is_reserved(path)
    }

    /// Whether `path` names a monitoring group: a child of an *existing*
    /// `mon_groups` directory (the root's, or a control group's).
    fn is_mon_group_dir(&self, path: &Path) -> bool {
        let Some(parent) = path.parent() else {
            return false;
        };
        if !parent.ends_with("mon_groups") {
            return false;
        }
        let st = self.state.lock();
        st.dirs.iter().any(|d| d == parent)
    }

    /// Validates a schemata write the way the kernel does and returns the
    /// canonical re-rendered content. `current` is the file's existing
    /// canonical content: domains not mentioned in the write keep their
    /// previous mask, as in the kernel.
    fn validate_schemata(&self, current: &str, data: &str) -> Result<String, ResctrlError> {
        let mut masks: BTreeMap<u32, u32> =
            self.domains.iter().map(|&d| (d, self.cbm_mask)).collect();
        if let Some(rest) = current.trim().strip_prefix("L3:") {
            for part in rest.split(';') {
                if let Some((dom, mask)) = part.split_once('=') {
                    if let (Ok(d), Ok(m)) = (
                        dom.trim().parse::<u32>(),
                        u32::from_str_radix(mask.trim(), 16),
                    ) {
                        masks.insert(d, m);
                    }
                }
            }
        }
        for line in data.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let rest = line.strip_prefix("L3:").ok_or_else(|| {
                ResctrlError::RejectedSchemata(format!("unknown resource: {line}"))
            })?;
            for part in rest.split(';') {
                let (dom, mask) = part.split_once('=').ok_or_else(|| {
                    ResctrlError::RejectedSchemata(format!("malformed entry: {part}"))
                })?;
                let dom: u32 = dom
                    .trim()
                    .parse()
                    .map_err(|_| ResctrlError::RejectedSchemata(format!("bad domain id: {dom}")))?;
                if !self.domains.contains(&dom) {
                    return Err(ResctrlError::RejectedSchemata(format!(
                        "unknown domain {dom}"
                    )));
                }
                let mask = u32::from_str_radix(mask.trim(), 16)
                    .map_err(|_| ResctrlError::RejectedSchemata(format!("bad mask: {mask}")))?;
                if mask == 0 || (mask & !self.cbm_mask) != 0 {
                    return Err(ResctrlError::RejectedSchemata(format!(
                        "mask {mask:#x} outside cbm_mask {:#x}",
                        self.cbm_mask
                    )));
                }
                let shifted = mask >> mask.trailing_zeros();
                if (shifted & shifted.wrapping_add(1)) != 0 {
                    return Err(ResctrlError::RejectedSchemata(format!(
                        "mask {mask:#x} not contiguous"
                    )));
                }
                if mask.count_ones() < self.min_cbm_bits {
                    return Err(ResctrlError::RejectedSchemata(format!(
                        "mask {mask:#x} below min_cbm_bits {}",
                        self.min_cbm_bits
                    )));
                }
                masks.insert(dom, mask);
            }
        }
        let parts: Vec<String> = masks.iter().map(|(d, m)| format!("{d}={m:x}")).collect();
        Ok(format!("L3:{}\n", parts.join(";")))
    }
}

impl ResctrlFs for FakeFs {
    fn read(&self, path: &Path) -> Result<String, ResctrlError> {
        if ccp_fault::should_fail(crate::faults::FS_READ) {
            return Err(ResctrlError::Io {
                path: path.display().to_string(),
                op: "read",
                message: "Input/output error (os error 5)".into(),
            });
        }
        let st = self.state.lock();
        st.files.get(path).cloned().ok_or_else(|| ResctrlError::Io {
            path: path.display().to_string(),
            op: "read",
            message: "No such file or directory".into(),
        })
    }

    fn write(&self, path: &Path, data: &str) -> Result<(), ResctrlError> {
        if ccp_fault::should_fail(crate::faults::FS_WRITE) {
            return Err(ResctrlError::Io {
                path: path.display().to_string(),
                op: "write",
                message: "Input/output error (os error 5)".into(),
            });
        }
        // Emulate kernel-side validation before taking the lock on state.
        let is_schemata = path.file_name().is_some_and(|n| n == "schemata");
        let canonical = if is_schemata {
            let current = self.read(path)?;
            Some(self.validate_schemata(&current, data)?)
        } else {
            None
        };
        let mut st = self.state.lock();
        if !st.files.contains_key(path) {
            return Err(ResctrlError::Io {
                path: path.display().to_string(),
                op: "write",
                message: "No such file or directory".into(),
            });
        }
        let entry = st.files.get_mut(path).expect("checked above");
        if let Some(canonical) = canonical {
            *entry = canonical;
        } else if path.file_name().is_some_and(|n| n == "tasks") {
            // The kernel accepts one pid per write and appends it.
            let pid = data.trim();
            if pid.parse::<u64>().is_err() {
                return Err(ResctrlError::Io {
                    path: path.display().to_string(),
                    op: "write",
                    message: format!("Invalid argument: {pid:?}"),
                });
            }
            entry.push_str(pid);
            entry.push('\n');
        } else {
            *entry = data.to_string();
        }
        Ok(())
    }

    fn create_dir(&self, path: &Path) -> Result<(), ResctrlError> {
        if self.is_mon_group_dir(path) {
            // Monitoring groups allocate an RMID, not a CLOS: no schemata
            // file, no closid budget.
            let mut st = self.state.lock();
            if st.dirs.contains(&path.to_path_buf()) {
                return Err(ResctrlError::Io {
                    path: path.display().to_string(),
                    op: "mkdir",
                    message: "File exists".into(),
                });
            }
            st.dirs.push(path.to_path_buf());
            st.dirs.push(path.join("mon_data"));
            st.dirs.push(path.join("mon_data/mon_L3_00"));
            st.files.insert(path.join("tasks"), String::new());
            for f in ["llc_occupancy", "mbm_total_bytes", "mbm_local_bytes"] {
                st.files
                    .insert(path.join("mon_data/mon_L3_00").join(f), "0\n".into());
            }
            return Ok(());
        }
        if !self.is_group_dir(path) {
            return Err(ResctrlError::Io {
                path: path.display().to_string(),
                op: "mkdir",
                message: "Permission denied".into(),
            });
        }
        // Count existing groups *before* locking mutably; the root CLOS
        // occupies one closid, hence the `- 1`.
        if self.group_count() as u32 >= self.num_closids - 1 {
            return Err(ResctrlError::Io {
                path: path.display().to_string(),
                op: "mkdir",
                message: "No space left on device".into(),
            });
        }
        let mut st = self.state.lock();
        if st.dirs.contains(&path.to_path_buf()) {
            return Err(ResctrlError::Io {
                path: path.display().to_string(),
                op: "mkdir",
                message: "File exists".into(),
            });
        }
        st.dirs.push(path.to_path_buf());
        let schemata = Self::render_schemata(&self.domains, self.cbm_mask);
        st.files.insert(path.join("schemata"), schemata);
        st.files.insert(path.join("tasks"), String::new());
        st.files.insert(path.join("cpus"), "ffffff\n".to_string());
        st.dirs.push(path.join("mon_data"));
        st.dirs.push(path.join("mon_data/mon_L3_00"));
        st.files
            .insert(path.join("mon_data/mon_L3_00/llc_occupancy"), "0\n".into());
        st.files.insert(
            path.join("mon_data/mon_L3_00/mbm_total_bytes"),
            "0\n".into(),
        );
        st.files.insert(
            path.join("mon_data/mon_L3_00/mbm_local_bytes"),
            "0\n".into(),
        );
        st.dirs.push(path.join("mon_groups"));
        Ok(())
    }

    fn remove_dir(&self, path: &Path) -> Result<(), ResctrlError> {
        let mut st = self.state.lock();
        if !st.dirs.iter().any(|d| d == path) {
            return Err(ResctrlError::Io {
                path: path.display().to_string(),
                op: "rmdir",
                message: "No such file or directory".into(),
            });
        }
        // Strict rmdir, as on real resctrl: a control group whose
        // `mon_groups/` still holds monitoring groups is non-empty and
        // the kernel refuses to remove it; callers must tear the
        // monitoring groups down first.
        let nested = path.join("mon_groups");
        if st.dirs.iter().any(|d| d.parent() == Some(nested.as_path())) {
            return Err(ResctrlError::Io {
                path: path.display().to_string(),
                op: "rmdir",
                message: "Directory not empty".into(),
            });
        }
        // The group's own scaffolding (mon_data, the empty mon_groups)
        // goes with it, exactly like the kernel's rmdir.
        st.dirs.retain(|d| !d.starts_with(path));
        st.files.retain(|p, _| !p.starts_with(path));
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.state.lock();
        st.dirs.iter().any(|d| d == path) || st.files.contains_key(path)
    }

    fn list_dirs(&self, path: &Path) -> Result<Vec<String>, ResctrlError> {
        let st = self.state.lock();
        let mut out: Vec<String> = st
            .dirs
            .iter()
            .filter(|d| d.parent() == Some(path))
            .map(|d| {
                d.file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_root_is_prepopulated() {
        let fs = FakeFs::broadwell();
        let root = Path::new("/sys/fs/resctrl");
        assert!(fs.exists(root));
        assert_eq!(
            fs.read(&root.join("info/L3/cbm_mask")).unwrap().trim(),
            "fffff"
        );
        assert_eq!(fs.read(&root.join("schemata")).unwrap(), "L3:0=fffff\n");
    }

    #[test]
    fn mkdir_creates_group_files() {
        let fs = FakeFs::broadwell();
        let g = Path::new("/sys/fs/resctrl/olap");
        fs.create_dir(g).unwrap();
        assert_eq!(fs.read(&g.join("schemata")).unwrap(), "L3:0=fffff\n");
        assert_eq!(fs.read(&g.join("tasks")).unwrap(), "");
        // Monitoring files come with the group, as on CMT-capable kernels.
        assert_eq!(
            fs.read(&g.join("mon_data/mon_L3_00/llc_occupancy"))
                .unwrap(),
            "0\n"
        );
    }

    #[test]
    fn mon_counters_are_settable_and_readable() {
        let fs = FakeFs::broadwell();
        let g = Path::new("/sys/fs/resctrl/olap");
        fs.create_dir(g).unwrap();
        fs.set_mon_counter(g, "llc_occupancy", 5_767_168);
        assert_eq!(
            fs.read(&g.join("mon_data/mon_L3_00/llc_occupancy"))
                .unwrap(),
            "5767168\n"
        );
    }

    #[test]
    fn schemata_write_is_validated_and_normalized() {
        let fs = FakeFs::broadwell();
        let g = Path::new("/sys/fs/resctrl/scan");
        fs.create_dir(g).unwrap();
        fs.write(&g.join("schemata"), "L3:0=3\n").unwrap();
        assert_eq!(fs.read(&g.join("schemata")).unwrap(), "L3:0=3\n");
        // Non-contiguous mask rejected.
        let err = fs.write(&g.join("schemata"), "L3:0=5\n").unwrap_err();
        assert!(matches!(err, ResctrlError::RejectedSchemata(_)));
        // Zero mask rejected.
        assert!(fs.write(&g.join("schemata"), "L3:0=0\n").is_err());
        // Below min_cbm_bits (2 on Broadwell) rejected.
        assert!(fs.write(&g.join("schemata"), "L3:0=1\n").is_err());
        // Unknown domain rejected.
        assert!(fs.write(&g.join("schemata"), "L3:7=3\n").is_err());
    }

    #[test]
    fn tasks_writes_append() {
        let fs = FakeFs::broadwell();
        let t = Path::new("/sys/fs/resctrl/tasks");
        fs.write(t, "100").unwrap();
        fs.write(t, "200\n").unwrap();
        assert_eq!(fs.tasks_of(Path::new("/sys/fs/resctrl")), vec![100, 200]);
        assert!(fs.write(t, "not-a-pid").is_err());
    }

    #[test]
    fn closid_limit_enforced() {
        let fs = FakeFs::new("/r", 0xf, 1, 3, &[0]); // 3 closids: root + 2 groups
        fs.create_dir(Path::new("/r/g1")).unwrap();
        fs.create_dir(Path::new("/r/g2")).unwrap();
        let err = fs.create_dir(Path::new("/r/g3")).unwrap_err();
        assert!(err.to_string().contains("No space left"));
    }

    #[test]
    fn rmdir_frees_a_closid() {
        let fs = FakeFs::new("/r", 0xf, 1, 2, &[0]); // room for exactly 1 group
        fs.create_dir(Path::new("/r/g1")).unwrap();
        assert!(fs.create_dir(Path::new("/r/g2")).is_err());
        fs.remove_dir(Path::new("/r/g1")).unwrap();
        fs.create_dir(Path::new("/r/g2")).unwrap();
        assert!(!fs.exists(Path::new("/r/g1/tasks")));
    }

    #[test]
    fn list_dirs_shows_groups() {
        let fs = FakeFs::broadwell();
        fs.create_dir(Path::new("/sys/fs/resctrl/b")).unwrap();
        fs.create_dir(Path::new("/sys/fs/resctrl/a")).unwrap();
        let dirs = fs.list_dirs(Path::new("/sys/fs/resctrl")).unwrap();
        assert_eq!(dirs, vec!["a", "b", "info", "mon_data", "mon_groups"]);
    }

    #[test]
    fn mon_group_mkdir_creates_counters_without_schemata() {
        let fs = FakeFs::broadwell();
        let m = Path::new("/sys/fs/resctrl/mon_groups/q17");
        fs.create_dir(m).unwrap();
        assert_eq!(fs.read(&m.join("tasks")).unwrap(), "");
        assert_eq!(
            fs.read(&m.join("mon_data/mon_L3_00/llc_occupancy"))
                .unwrap(),
            "0\n"
        );
        // Monitoring groups have no schemata file.
        assert!(fs.read(&m.join("schemata")).is_err());
        // Duplicate mkdir fails like the kernel.
        assert!(fs.create_dir(m).is_err());
    }

    #[test]
    fn mon_groups_do_not_consume_closids() {
        let fs = FakeFs::new("/r", 0xf, 1, 2, &[0]); // room for exactly 1 group
        fs.create_dir(Path::new("/r/g1")).unwrap();
        // CLOS budget exhausted, but monitoring groups still allocate.
        fs.create_dir(Path::new("/r/mon_groups/m1")).unwrap();
        fs.create_dir(Path::new("/r/g1/mon_groups/m2")).unwrap();
        assert_eq!(fs.group_count(), 1);
        fs.set_mon_counter(Path::new("/r/g1/mon_groups/m2"), "llc_occupancy", 42);
        assert_eq!(
            fs.read(Path::new(
                "/r/g1/mon_groups/m2/mon_data/mon_L3_00/llc_occupancy"
            ))
            .unwrap(),
            "42\n"
        );
    }

    #[test]
    fn rmdir_refuses_group_with_live_mon_groups() {
        let fs = FakeFs::broadwell();
        let g = Path::new("/sys/fs/resctrl/g1");
        fs.create_dir(g).unwrap();
        fs.create_dir(&g.join("mon_groups/m1")).unwrap();
        let err = fs.remove_dir(g).unwrap_err();
        assert!(err.to_string().contains("Directory not empty"), "{err}");
        // Tearing the monitoring group down first unblocks the rmdir,
        // and the group's scaffolding directories go with it.
        fs.remove_dir(&g.join("mon_groups/m1")).unwrap();
        fs.remove_dir(g).unwrap();
        assert!(!fs.exists(g));
        assert!(!fs.exists(&g.join("mon_groups")));
        assert!(!fs.exists(&g.join("mon_data/mon_L3_00")));
        assert_eq!(fs.group_count(), 0);
    }

    #[test]
    fn mkdir_outside_root_denied() {
        let fs = FakeFs::broadwell();
        assert!(fs.create_dir(Path::new("/sys/fs/resctrl/a/b")).is_err());
    }

    #[test]
    fn multi_domain_schemata() {
        let fs = FakeFs::new("/r", 0xfffff, 2, 16, &[0, 1]);
        assert_eq!(
            fs.read(Path::new("/r/schemata")).unwrap(),
            "L3:0=fffff;1=fffff\n"
        );
        fs.create_dir(Path::new("/r/g")).unwrap();
        // Partial update keeps the other domain at its previous value.
        fs.write(Path::new("/r/g/schemata"), "L3:1=3\n").unwrap();
        assert_eq!(
            fs.read(Path::new("/r/g/schemata")).unwrap(),
            "L3:0=fffff;1=3\n"
        );
        // A later partial write to domain 0 must not reset domain 1.
        fs.write(Path::new("/r/g/schemata"), "L3:0=ff\n").unwrap();
        assert_eq!(
            fs.read(Path::new("/r/g/schemata")).unwrap(),
            "L3:0=ff;1=3\n"
        );
    }
}
