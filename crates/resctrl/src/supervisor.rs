//! Supervised controller: retry with backoff, a circuit breaker, and
//! the shared health state behind **degraded unpartitioned mode**.
//!
//! The paper's contract is that partitioning must never make a workload
//! *worse* than the unpartitioned baseline. A resctrl tree that starts
//! failing mid-flight (transient `EBUSY` on schemata writes, the mount
//! vanishing, CMT read errors) must therefore never take queries down
//! with it. [`SupervisedController`] wraps every [`CacheController`]
//! operation with:
//!
//! 1. **Retry** — transient errors are retried up to
//!    [`RetryPolicy::max_attempts`] times with bounded exponential
//!    backoff plus deterministic jitter (half the delay is fixed, half
//!    drawn from a seeded SplitMix64 stream, so runs replay exactly).
//! 2. **Circuit breaker** — [`ResctrlHealth`] counts *consecutive*
//!    exhausted operations; at [`ResctrlHealth::trip_after`] it flips
//!    the shared `degraded` flag. The engine observes the flag and
//!    falls back to full-mask (unpartitioned) execution: queries keep
//!    succeeding, partitioning is sacrificed.
//! 3. **Re-probe** — while degraded, a caller-driven [`probe`]
//!    (`SupervisedController::probe`) replays the last schemata write
//!    *bypassing* the old-vs-new skip cache; only a real kernel write
//!    succeeding clears the flag ([`ResctrlHealth::restore`]).
//!
//! Deterministic errors — [`ResctrlError::BadMask`],
//! [`ResctrlError::TooManyGroups`], [`ResctrlError::NoSuchGroup`] — are
//! neither retried nor counted against the breaker: they indicate a
//! caller bug or a real resource limit, not a sick resctrl tree.

use crate::controller::{CacheController, CatInfo, GroupHandle};
use crate::error::ResctrlError;
use crate::metrics::ResctrlMetrics;
use crate::schemata::Schemata;
use ccp_cachesim::WayMask;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Group name used by the health probe when no schemata write has
/// succeeded yet (created, written, and removed again).
pub const PROBE_GROUP: &str = "ccp-probe";

/// Retry schedule for transient resctrl failures.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retry). Default 3.
    pub max_attempts: u32,
    /// Delay before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Upper bound on the exponential delay.
    pub max_delay: Duration,
    /// Seed of the jitter stream (deterministic across runs).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            jitter_seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (used where latency matters more
    /// than resilience, and by tests).
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }
}

/// SplitMix64 step, the jitter source (same mixer the failpoint layer
/// uses; deterministic, no global RNG state).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Shared health of the resctrl backend: the circuit breaker's state
/// plus counters for observability. One instance is shared between the
/// supervised controller (producer), the engine/server supervision loop
/// (consumer), and `/metrics`.
#[derive(Debug)]
pub struct ResctrlHealth {
    // ORDERING: all counters and the degraded flag use relaxed loads and
    // stores. They are monotonic event counts and a single advisory
    // flag; no other memory depends on their ordering, and the
    // supervision loop that consumes them tolerates reading values a
    // few events stale.
    degraded: AtomicBool,
    consecutive_failures: AtomicU32,
    trip_after: u32,
    retries: AtomicU64,
    failures: AtomicU64,
    trips: AtomicU64,
    reprobes: AtomicU64,
    restores: AtomicU64,
}

impl ResctrlHealth {
    /// Breaker tripping after `trip_after` consecutive exhausted
    /// operations (minimum 1).
    pub fn new(trip_after: u32) -> Self {
        ResctrlHealth {
            degraded: AtomicBool::new(false),
            consecutive_failures: AtomicU32::new(0),
            trip_after: trip_after.max(1),
            retries: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            reprobes: AtomicU64::new(0),
            restores: AtomicU64::new(0),
        }
    }

    /// Whether the breaker is currently tripped (engine should run
    /// unpartitioned).
    pub fn is_degraded(&self) -> bool {
        // ORDERING: relaxed — advisory flag; see the struct comment.
        self.degraded.load(Ordering::Relaxed)
    }

    /// Consecutive failures needed to trip the breaker.
    pub fn trip_after(&self) -> u32 {
        self.trip_after
    }

    /// An operation succeeded: the consecutive-failure streak resets.
    /// Does *not* clear the degraded flag — only a [`restore`]
    /// (driven by an explicit re-probe) does that, so a lucky write
    /// while degraded cannot flap the engine back early.
    pub fn record_success(&self) {
        // ORDERING: relaxed — single-writer streak reset; see the struct
        // comment.
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// One retry attempt was scheduled.
    pub fn record_retry(&self) {
        // ORDERING: relaxed — monotone event counter; see the struct
        // comment.
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// An operation exhausted its retries. Returns `true` when this
    /// failure tripped the breaker (degraded mode begins now).
    pub fn record_failure(&self) -> bool {
        // ORDERING: relaxed throughout — monotone counters plus the
        // advisory degraded flag (see the struct comment); the `swap`
        // is atomic, which alone guarantees exactly one caller counts
        // each trip.
        self.failures.fetch_add(1, Ordering::Relaxed);
        let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.trip_after && !self.degraded.swap(true, Ordering::Relaxed) {
            self.trips.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// A health re-probe ran (successful or not).
    pub fn record_reprobe(&self) {
        // ORDERING: relaxed — monotone event counter; see the struct
        // comment.
        self.reprobes.fetch_add(1, Ordering::Relaxed);
    }

    /// A re-probe observed resctrl healthy again. Returns `true` when
    /// this call cleared a tripped breaker.
    pub fn restore(&self) -> bool {
        // ORDERING: relaxed throughout — see the struct comment; the
        // `swap` is atomic, so exactly one caller counts each restore.
        self.consecutive_failures.store(0, Ordering::Relaxed);
        if self.degraded.swap(false, Ordering::Relaxed) {
            self.restores.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Retry attempts scheduled so far.
    pub fn retries(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent counter read; see
        // the struct comment.
        self.retries.load(Ordering::Relaxed)
    }

    /// Operations that exhausted their retries.
    pub fn failures(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent counter read; see
        // the struct comment.
        self.failures.load(Ordering::Relaxed)
    }

    /// Times the breaker tripped (Partitioned → Degraded transitions).
    pub fn trips(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent counter read; see
        // the struct comment.
        self.trips.load(Ordering::Relaxed)
    }

    /// Health probes attempted while degraded.
    pub fn reprobes(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent counter read; see
        // the struct comment.
        self.reprobes.load(Ordering::Relaxed)
    }

    /// Times a probe healed the breaker (Degraded → Partitioned).
    pub fn restores(&self) -> u64 {
        // ORDERING: relaxed — eventually-consistent counter read; see
        // the struct comment.
        self.restores.load(Ordering::Relaxed)
    }

    /// Current consecutive-failure streak.
    pub fn consecutive_failures(&self) -> u32 {
        // ORDERING: relaxed — eventually-consistent counter read; see
        // the struct comment.
        self.consecutive_failures.load(Ordering::Relaxed)
    }
}

/// Is this error plausibly transient (worth retrying and counting
/// against the breaker)?
fn transient(e: &ResctrlError) -> bool {
    matches!(
        e,
        ResctrlError::Io { .. } | ResctrlError::NotMounted | ResctrlError::RejectedSchemata(_)
    )
}

/// A [`CacheController`] wrapped with per-operation retry/backoff and
/// breaker accounting. See the module docs for the full state machine.
pub struct SupervisedController {
    inner: CacheController,
    policy: RetryPolicy,
    health: Arc<ResctrlHealth>,
    jitter: u64,
    /// Last successfully written `(group, domain, mask)`; the probe
    /// replays it with the skip cache bypassed.
    last_write: Option<(GroupHandle, u32, WayMask)>,
}

impl std::fmt::Debug for SupervisedController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedController")
            .field("degraded", &self.health.is_degraded())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl SupervisedController {
    /// Wraps `inner`, reporting into `health`.
    pub fn new(inner: CacheController, policy: RetryPolicy, health: Arc<ResctrlHealth>) -> Self {
        let jitter = policy.jitter_seed;
        SupervisedController {
            inner,
            policy,
            health,
            jitter,
            last_write: None,
        }
    }

    /// The shared health handle.
    pub fn health(&self) -> Arc<ResctrlHealth> {
        Arc::clone(&self.health)
    }

    /// CAT parameters of the underlying mount.
    pub fn info(&self) -> CatInfo {
        self.inner.info()
    }

    /// The wrapped controller's instruments.
    pub fn metrics(&self) -> ResctrlMetrics {
        self.inner.metrics()
    }

    /// Kernel writes skipped by the old-vs-new fast path.
    pub fn skipped_writes(&self) -> u64 {
        self.inner.skipped_writes()
    }

    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let base = self.policy.base_delay.as_micros().max(1) as u64;
        let cap = self.policy.max_delay.as_micros().max(1) as u64;
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let capped = exp.min(cap);
        // Half fixed, half jitter: delay ∈ [capped/2, capped].
        let jitter = splitmix64(&mut self.jitter) % (capped / 2 + 1);
        Duration::from_micros(capped / 2 + jitter)
    }

    fn retry<T>(
        &mut self,
        mut op: impl FnMut(&mut CacheController) -> Result<T, ResctrlError>,
    ) -> Result<T, ResctrlError> {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            match op(&mut self.inner) {
                Ok(v) => {
                    self.health.record_success();
                    return Ok(v);
                }
                Err(e) if !transient(&e) => return Err(e),
                Err(e) if attempt >= max_attempts => {
                    self.health.record_failure();
                    return Err(e);
                }
                Err(_) => {
                    self.health.record_retry();
                    let delay = self.backoff_delay(attempt);
                    thread::sleep(delay);
                    attempt += 1;
                }
            }
        }
    }

    /// [`CacheController::create_group`] with retry/breaker accounting.
    ///
    /// # Errors
    /// Same surface as the wrapped call.
    pub fn create_group(&mut self, name: &str) -> Result<GroupHandle, ResctrlError> {
        self.retry(|ctl| ctl.create_group(name))
    }

    /// [`CacheController::existing_group`] (read-only, not retried).
    ///
    /// # Errors
    /// Same surface as the wrapped call.
    pub fn existing_group(&self, name: &str) -> Result<GroupHandle, ResctrlError> {
        self.inner.existing_group(name)
    }

    /// [`CacheController::groups`] (read-only, not retried).
    ///
    /// # Errors
    /// Same surface as the wrapped call.
    pub fn groups(&self) -> Result<Vec<String>, ResctrlError> {
        self.inner.groups()
    }

    /// [`CacheController::remove_group`] with retry/breaker accounting.
    ///
    /// # Errors
    /// Same surface as the wrapped call.
    pub fn remove_group(&mut self, group: GroupHandle) -> Result<(), ResctrlError> {
        self.retry(|ctl| ctl.remove_group(group.clone()))
    }

    /// [`CacheController::set_l3_mask`] with retry/breaker accounting.
    ///
    /// # Errors
    /// Same surface as the wrapped call.
    pub fn set_l3_mask(
        &mut self,
        group: &GroupHandle,
        domain: u32,
        mask: WayMask,
    ) -> Result<(), ResctrlError> {
        self.retry(|ctl| ctl.set_l3_mask(group, domain, mask))?;
        self.last_write = Some((group.clone(), domain, mask));
        Ok(())
    }

    /// [`CacheController::schemata`] with retry/breaker accounting.
    ///
    /// # Errors
    /// Same surface as the wrapped call.
    pub fn schemata(&mut self, group: &GroupHandle) -> Result<Schemata, ResctrlError> {
        self.retry(|ctl| ctl.schemata(group))
    }

    /// [`CacheController::assign_task`] with retry/breaker accounting.
    ///
    /// # Errors
    /// Same surface as the wrapped call.
    pub fn assign_task(&mut self, group: &GroupHandle, tid: u64) -> Result<(), ResctrlError> {
        self.retry(|ctl| ctl.assign_task(group, tid))
    }

    /// Health probe for degraded mode: performs one *real* schemata
    /// write (the last successful one replayed with the skip cache
    /// bypassed, or a scratch `ccp-probe` group when none happened yet)
    /// and, if it succeeds, clears the breaker.
    ///
    /// Returns `true` when resctrl is healthy after this probe.
    pub fn probe(&mut self) -> bool {
        self.health.record_reprobe();
        let outcome = match self.last_write.clone() {
            Some((group, domain, mask)) => {
                self.retry(|ctl| ctl.rewrite_l3_mask(&group, domain, mask))
            }
            None => self.probe_via_scratch_group(),
        };
        if outcome.is_ok() {
            self.health.restore();
            true
        } else {
            false
        }
    }

    fn probe_via_scratch_group(&mut self) -> Result<(), ResctrlError> {
        let full = WayMask::new(self.inner.info().cbm_mask)
            .map_err(|e| ResctrlError::BadMask(e.to_string()))?;
        let group = match self.existing_group(PROBE_GROUP) {
            Ok(g) => g,
            Err(_) => self.retry(|ctl| ctl.create_group(PROBE_GROUP))?,
        };
        let write = self.retry(|ctl| ctl.rewrite_l3_mask(&group, 0, full));
        // Always try to give the CLOS back, but a cleanup failure does
        // not veto a successful probe write.
        let _ = self.retry(|ctl| ctl.remove_group(group.clone()));
        write
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::FakeFs;
    use std::sync::{Mutex, PoisonError};

    /// Fault plans are process-global; serialize the tests that arm them.
    static FAULT_GATE: Mutex<()> = Mutex::new(());

    /// Clears the installed plan even when the test panics, so one
    /// failing test cannot leak an armed failpoint into the next.
    struct PlanGuard;
    impl Drop for PlanGuard {
        fn drop(&mut self) {
            ccp_fault::clear();
        }
    }

    fn supervised(policy: RetryPolicy) -> (Arc<ResctrlHealth>, SupervisedController) {
        let fs = FakeFs::broadwell();
        let ctl = CacheController::open_with(Box::new(fs), "/sys/fs/resctrl").unwrap();
        let health = Arc::new(ResctrlHealth::new(3));
        let sup = SupervisedController::new(ctl, policy, Arc::clone(&health));
        (health, sup)
    }

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(200),
            jitter_seed: 7,
        }
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let _gate = FAULT_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let (health, mut sup) = supervised(fast_policy());
        let g = sup.create_group("g").unwrap();
        // First two writes fail, third (last allowed attempt) succeeds.
        let _plan = PlanGuard;
        ccp_fault::install_str("resctrl.write_schemata=err@1+2").unwrap();
        sup.set_l3_mask(&g, 0, WayMask::new(0x3).unwrap()).unwrap();
        assert_eq!(health.retries(), 2);
        assert_eq!(health.failures(), 0);
        assert!(!health.is_degraded());
    }

    #[test]
    fn breaker_trips_after_consecutive_exhausted_ops_and_probe_heals() {
        let _gate = FAULT_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let (health, mut sup) = supervised(fast_policy());
        let g = sup.create_group("g").unwrap();
        let mask = WayMask::new(0x3).unwrap();
        sup.set_l3_mask(&g, 0, mask).unwrap();

        // 3 ops × 3 attempts: all nine writes fail → breaker trips on
        // the third exhausted operation. Each op uses a fresh mask so
        // the old-vs-new skip cache cannot short-circuit the write.
        let _plan = PlanGuard;
        ccp_fault::install_str("resctrl.write_schemata=err@1+9").unwrap();
        for mask in [0x7, 0xf, 0x1f] {
            let other = WayMask::new(mask).unwrap();
            assert!(sup.set_l3_mask(&g, 0, other).is_err());
        }
        assert!(health.is_degraded(), "breaker must be tripped");
        assert_eq!(health.trips(), 1);

        // Faults exhausted: the next probe performs a real write and heals.
        assert!(sup.probe());
        assert!(!health.is_degraded());
        assert_eq!(health.restores(), 1);
        assert!(health.reprobes() >= 1);
    }

    #[test]
    fn probe_fails_while_fault_active() {
        let _gate = FAULT_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let (health, mut sup) = supervised(RetryPolicy {
            max_attempts: 1,
            ..fast_policy()
        });
        let g = sup.create_group("g").unwrap();
        sup.set_l3_mask(&g, 0, WayMask::new(0x3).unwrap()).unwrap();
        for _ in 0..3 {
            health.record_failure();
        }
        assert!(health.is_degraded());
        {
            let _plan = PlanGuard;
            ccp_fault::install_str("resctrl.write_schemata=err").unwrap();
            assert!(!sup.probe(), "probe must not heal while writes still fail");
        }
        assert!(health.is_degraded());
        assert!(sup.probe());
        assert!(!health.is_degraded());
    }

    #[test]
    fn probe_without_prior_write_uses_scratch_group() {
        let _gate = FAULT_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let fs = FakeFs::broadwell();
        let ctl = CacheController::open_with(Box::new(fs.clone()), "/sys/fs/resctrl").unwrap();
        let health = Arc::new(ResctrlHealth::new(1));
        let mut sup = SupervisedController::new(ctl, fast_policy(), Arc::clone(&health));
        health.record_failure();
        assert!(health.is_degraded());
        assert!(sup.probe());
        assert!(!health.is_degraded());
        // The scratch group was cleaned up.
        assert_eq!(fs.group_count(), 0);
    }

    #[test]
    fn deterministic_errors_bypass_retry_and_breaker() {
        let _gate = FAULT_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        let (health, mut sup) = supervised(fast_policy());
        let g = sup.create_group("g").unwrap();
        // 1 way < min_cbm_bits: BadMask, deterministic.
        assert!(matches!(
            sup.set_l3_mask(&g, 0, WayMask::new(0x1).unwrap()),
            Err(ResctrlError::BadMask(_))
        ));
        assert_eq!(health.retries(), 0);
        assert_eq!(health.failures(), 0);
        assert!(!health.is_degraded());
    }

    #[test]
    fn success_resets_streak_but_not_degraded_flag() {
        let health = ResctrlHealth::new(2);
        assert!(!health.record_failure());
        assert!(health.record_failure(), "second failure trips");
        assert!(health.is_degraded());
        health.record_success();
        assert_eq!(health.consecutive_failures(), 0);
        assert!(
            health.is_degraded(),
            "only an explicit restore clears degraded"
        );
        assert!(health.restore());
        assert!(!health.is_degraded());
        assert!(!health.restore(), "restore is idempotent");
    }

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let (_, mut a) = supervised(fast_policy());
        let (_, mut b) = supervised(fast_policy());
        for attempt in 1..6 {
            let da = a.backoff_delay(attempt);
            let db = b.backoff_delay(attempt);
            assert_eq!(da, db, "same seed, same delays");
            assert!(da <= Duration::from_micros(200));
            assert!(da >= Duration::from_micros(25));
        }
    }
}
