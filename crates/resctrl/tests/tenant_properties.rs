//! Property tests for tenant identifiers and group naming: every valid
//! id round-trips through `group_name` → `parse_group_name` for every
//! class label, and hostile inputs (bad characters, over-length,
//! reserved words, foreign group names) are rejected rather than
//! aliased onto some other tenant's groups.

use ccp_resctrl::tenant::{CLASS_LABELS, GROUP_PREFIX, MAX_TENANT_LEN, RESERVED};
use ccp_resctrl::{parse_group_name, TenantId};
use proptest::prelude::*;

/// The full legal tenant alphabet: lowercase alphanumerics plus
/// underscore.
const TENANT_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";

/// Characters that must never appear in a tenant id — including `-`,
/// which is the group-name separator and the classic aliasing vector
/// (`a-b` must not mint groups that parse back as tenant `a`).
const HOSTILE_CHARS: &[u8] = b"-./ :A@!~\\";

fn tenant_name() -> BoxedStrategy<String> {
    proptest::collection::vec(0usize..TENANT_ALPHABET.len(), 1..MAX_TENANT_LEN + 1)
        .prop_map(|ix| ix.iter().map(|&i| TENANT_ALPHABET[i] as char).collect())
        .boxed()
}

proptest! {
    /// parse ∘ format = identity: a valid id names a group per class,
    /// and parsing that group name recovers exactly the id and class.
    #[test]
    fn valid_ids_round_trip_for_every_class(name in tenant_name()) {
        match TenantId::parse(&name) {
            Ok(id) => {
                prop_assert_eq!(id.as_str(), name.as_str());
                for class in CLASS_LABELS {
                    let group = id.group_name(class);
                    prop_assert!(
                        group.starts_with(GROUP_PREFIX),
                        "group {} carries the ccp- prefix", group
                    );
                    let (back, back_class) = parse_group_name(&group)
                        .unwrap_or_else(|| panic!("{group} must parse back"));
                    prop_assert_eq!(back.as_str(), name.as_str());
                    prop_assert_eq!(&back_class, class);
                }
            }
            // The alphabet only produces legal characters and lengths,
            // so the sole legitimate rejection is a reserved word.
            Err(_) => prop_assert!(
                RESERVED.contains(&name.as_str()),
                "{} rejected but not reserved", name
            ),
        }
    }

    /// A single hostile character anywhere in the id is fatal: parse
    /// rejects it, so no group name can ever be minted for it.
    #[test]
    fn hostile_characters_are_rejected_wherever_they_hide(
        prefix in proptest::collection::vec(0usize..TENANT_ALPHABET.len(), 0..10),
        bad in 0usize..HOSTILE_CHARS.len(),
        suffix in proptest::collection::vec(0usize..TENANT_ALPHABET.len(), 0..10),
    ) {
        let mut name: String = prefix.iter().map(|&i| TENANT_ALPHABET[i] as char).collect();
        name.push(HOSTILE_CHARS[bad] as char);
        name.extend(suffix.iter().map(|&i| TENANT_ALPHABET[i] as char));
        prop_assert!(
            TenantId::parse(&name).is_err(),
            "hostile id {:?} must not parse", name
        );
    }

    /// Over-length ids are rejected even when every character is legal.
    #[test]
    fn over_length_ids_are_rejected(
        ix in proptest::collection::vec(
            0usize..TENANT_ALPHABET.len(), MAX_TENANT_LEN + 1..MAX_TENANT_LEN + 20),
    ) {
        let name: String = ix.iter().map(|&i| TENANT_ALPHABET[i] as char).collect();
        prop_assert!(
            TenantId::parse(&name).is_err(),
            "{} chars must exceed the {} limit", name.len(), MAX_TENANT_LEN
        );
    }

    /// Group names that are not `ccp-<tenant>-<class>` never parse:
    /// a wrong prefix or an unknown class label yields `None`, so the
    /// reconciler can never adopt a foreign group as tenant-owned.
    #[test]
    fn foreign_group_names_do_not_parse(
        name in tenant_name(),
        class_ix in 0usize..CLASS_LABELS.len(),
    ) {
        let class = CLASS_LABELS[class_ix];
        // Wrong prefix.
        prop_assert_eq!(parse_group_name(&format!("xcp-{name}-{class}")).map(|(t, _)| t.as_str().to_string()), None);
        // Unknown class label.
        prop_assert!(parse_group_name(&format!("ccp-{name}-warm")).is_none());
        // Missing class entirely.
        prop_assert!(parse_group_name(&format!("ccp-{name}")).is_none());
    }
}
