//! Concurrency hammer: many writer threads fill their rings while
//! reader threads snapshot continuously. No torn events may surface
//! (every decoded record must be internally consistent) and the drop
//! counter must account exactly for everything that fell out of a ring.
//!
//! Lives in its own integration binary so it owns the process-global
//! tracer.

use ccp_trace::{self as trace, TraceCat, TraceConfig, TraceEventKind};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;

const WRITERS: usize = 8;
const SPANS_PER_WRITER: u64 = 20_000;
const RING_CAPACITY: usize = 256;

#[test]
fn hammered_rings_stay_consistent_and_account_for_drops() {
    trace::enable(TraceConfig {
        ring_capacity: RING_CAPACITY,
        sample_one_in: 1,
    });

    let stop = Arc::new(AtomicBool::new(false));
    // Readers snapshot as fast as they can while writers are running,
    // checking every decoded event for internal consistency.
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = trace::snapshot();
                    for e in &snap.events {
                        // A torn slot would decode to a mashup of two
                        // records; every field here is derived from the
                        // name, so any mixture is detectable.
                        if e.kind == TraceEventKind::Span {
                            assert_eq!(e.name, format!("w{}", e.id % 1000), "torn record: {e:?}");
                            assert_eq!(e.cat, TraceCat::Op, "category mismatch: {e:?}");
                        }
                    }
                    snapshots += 1;
                }
                snapshots
            })
        })
        .collect();

    // No writer may exit before the others finish: an exited writer's
    // ring would be recycled by a later-registering thread, which is
    // exactly the behavior the churn test covers — here it would make
    // the exact retained/dropped accounting below nondeterministic.
    let all_done = Arc::new(Barrier::new(WRITERS));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let all_done = Arc::clone(&all_done);
            thread::Builder::new()
                .name(format!("hammer-{w}"))
                .spawn(move || {
                    for i in 0..SPANS_PER_WRITER {
                        // id encodes the writer so readers can re-derive
                        // the expected name; spans drop immediately so
                        // dur stays 0 µs (sub-microsecond lifetime).
                        let id = (i * 1000) + w as u64;
                        let _s = trace::span_id(TraceCat::Op, &format!("w{w}"), id);
                    }
                    all_done.wait();
                })
                .unwrap()
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let snapshots = r.join().unwrap();
        assert!(snapshots > 0, "reader made progress");
    }

    // Quiescent accounting: every span was either retained or counted
    // as dropped. (The main thread never recorded, so its ring — if
    // any — is empty.)
    let snap = trace::snapshot();
    let retained = snap
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Span)
        .count() as u64;
    assert_eq!(
        retained + snap.dropped,
        WRITERS as u64 * SPANS_PER_WRITER,
        "retained {retained} + dropped {} must equal total written",
        snap.dropped
    );
    // Each ring retains exactly its capacity once it has wrapped.
    assert_eq!(retained, (WRITERS * RING_CAPACITY) as u64);
    // Writer threads registered under their builder names.
    for w in 0..WRITERS {
        assert!(
            snap.threads.iter().any(|t| t.name == format!("hammer-{w}")),
            "thread hammer-{w} registered"
        );
    }
    trace::disable();
}
