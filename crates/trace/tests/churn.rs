//! Thread-churn regression: a server handles every connection on a
//! fresh short-lived thread, so the tracer must not grow a new ring per
//! thread forever — rings of exited threads are recycled by the next
//! thread that starts tracing. Lives in its own integration binary so
//! it owns the process-global tracer.

use ccp_trace::{self as trace, TraceCat, TraceConfig};
use std::thread;

const GENERATIONS: u64 = 64;
const SPANS_PER_THREAD: u64 = 3;

#[test]
fn sequential_thread_churn_recycles_rings() {
    trace::enable(TraceConfig {
        ring_capacity: 64,
        sample_one_in: 1,
    });

    // One short-lived traced thread at a time, like a `Connection: close`
    // client hammering a server that spawns a thread per connection.
    for g in 0..GENERATIONS {
        thread::Builder::new()
            .name(format!("conn-{g}"))
            .spawn(move || {
                for _ in 0..SPANS_PER_THREAD {
                    let _s = trace::span_id(TraceCat::Server, "request", g);
                }
                trace::instant(TraceCat::Admission, "done");
            })
            .unwrap()
            .join()
            .unwrap();
    }

    let snap = trace::snapshot();
    // Once the dead-ring retention budget fills, every further
    // generation recycles the longest-dead ring, so the registry stays
    // at budget size instead of holding one ring per thread ever
    // created. (Slack over the budget of 8 tolerates a platform
    // delaying thread-local destructors past `join`.)
    assert!(
        snap.threads.len() <= 12,
        "expected recycled rings, found {} registered threads",
        snap.threads.len()
    );
    // Recent generations stay snapshottable; recycled generations'
    // records were discarded but accounted for as drops.
    let visible = snap.events.len() as u64;
    assert_eq!(
        visible + snap.dropped,
        GENERATIONS * (SPANS_PER_THREAD + 1),
        "recycling must not lose events from the accounting"
    );
    assert!(
        snap.threads
            .iter()
            .any(|t| t.name == format!("conn-{}", GENERATIONS - 1)),
        "the last thread owns a registered ring: {:?}",
        snap.threads
    );
    trace::disable();
}
