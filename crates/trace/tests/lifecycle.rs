//! Whole-tracer lifecycle in one process: disabled recording is inert,
//! enabling captures nested spans, sampling thins spans, `clear` resets
//! the window. A single `#[test]` keeps the ordering deterministic —
//! the tracer is process-global.

use ccp_trace::{self as trace, TraceCat, TraceConfig, TraceEventKind};

#[test]
fn lifecycle_disabled_enabled_sampled_cleared() {
    // Disabled: nothing is recorded, guards are inert.
    assert!(!trace::enabled());
    {
        let g = trace::span(TraceCat::Op, "ignored");
        assert!(!g.is_recording());
    }
    trace::instant(TraceCat::Admission, "ignored");
    assert!(trace::snapshot().events.is_empty());

    // Enabled: nested spans and instants are captured with ids.
    trace::enable(TraceConfig::default());
    assert!(trace::enabled());
    {
        let _outer = trace::span_id(TraceCat::Query, "query", 7);
        {
            let inner = trace::span_id(TraceCat::Op, "column_scan", 7);
            assert!(inner.is_recording());
        }
        trace::instant_id(TraceCat::Admission, "bypass", 7);
    }
    let snap = trace::snapshot();
    assert_eq!(snap.events.len(), 3);
    assert!(snap
        .events
        .iter()
        .any(|e| e.name == "query" && e.kind == TraceEventKind::Span && e.id == 7));
    assert!(snap
        .events
        .iter()
        .any(|e| e.name == "bypass" && e.kind == TraceEventKind::Instant));
    // The inner span nests inside the outer one on the same thread.
    let outer = snap.events.iter().find(|e| e.name == "query").unwrap();
    let inner = snap
        .events
        .iter()
        .find(|e| e.name == "column_scan")
        .unwrap();
    assert_eq!(outer.tid, inner.tid);
    assert!(inner.ts_us >= outer.ts_us);
    assert!(inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us);
    let json = snap.to_chrome_json();
    assert_eq!(
        json.matches("\"ph\":\"B\"").count(),
        json.matches("\"ph\":\"E\"").count()
    );

    // Clear: the window is empty afterwards, drops rebased.
    trace::clear();
    assert!(trace::snapshot().events.is_empty());
    assert_eq!(trace::dropped(), 0);

    // Sampling: with 1-in-4, 100 spans thin to ~25 (exactly, since the
    // per-thread tick is deterministic).
    trace::enable(TraceConfig {
        ring_capacity: 4096,
        sample_one_in: 4,
    });
    for _ in 0..100 {
        let _s = trace::span(TraceCat::Op, "sampled");
    }
    let sampled = trace::snapshot()
        .events
        .iter()
        .filter(|e| e.name == "sampled")
        .count();
    assert_eq!(sampled, 25, "1-in-4 sampling keeps exactly a quarter");

    trace::disable();
    assert!(!trace::enabled());
    {
        let g = trace::span(TraceCat::Op, "off-again");
        assert!(!g.is_recording());
    }
}
