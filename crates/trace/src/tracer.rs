//! The process-global tracer: enable/disable, per-thread ring
//! registration, span guards and snapshots.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::export::{ThreadInfo, TraceSnapshot};
use crate::ring::{Record, SpanRing, KIND_INSTANT, KIND_SPAN, MAX_NAME};
use crate::TraceCat;

/// Tuning knobs passed to [`enable`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Slots per thread-local ring; oldest records are overwritten (and
    /// counted as dropped) beyond this.
    pub ring_capacity: usize,
    /// Record only every N-th span per thread (`1` = record all). Lets
    /// tracing stay on under load at a bounded cost.
    pub sample_one_in: u32,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            ring_capacity: 4096,
            sample_one_in: 1,
        }
    }
}

/// Process-global tracer state. Use the free functions ([`enable`],
/// [`span`], [`snapshot`], …) rather than holding one of these.
pub struct Tracer {
    enabled: AtomicBool,
    ring_capacity: AtomicU64,
    sample_one_in: AtomicU32,
    next_tid: AtomicU32,
    /// Every ring ever registered, with its display identity. Entries
    /// outlive their threads so late snapshots still see final events;
    /// bounded by the number of distinct threads traced.
    rings: Mutex<Vec<RegisteredRing>>,
    /// Zero point for all timestamps (first use of the tracer).
    epoch: Instant,
}

struct RegisteredRing {
    ring: Arc<SpanRing>,
    tid: u32,
    thread_name: String,
}

fn global() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        ring_capacity: AtomicU64::new(TraceConfig::default().ring_capacity as u64),
        sample_one_in: AtomicU32::new(1),
        next_tid: AtomicU32::new(1),
        rings: Mutex::new(Vec::new()),
        epoch: Instant::now(),
    })
}

thread_local! {
    /// This thread's ring, installed on first recorded event. `None`
    /// until then so threads that never trace pay nothing but the
    /// enabled check.
    static LOCAL_RING: Cell<Option<&'static ThreadRing>> = const { Cell::new(None) };
}

/// Leaked per-thread handle: one `Arc` clone of the registered ring plus
/// the thread's sampling counter. Leaking (one small allocation per
/// traced thread, ever) keeps the hot path free of `RefCell` borrows.
struct ThreadRing {
    ring: Arc<SpanRing>,
    sample_tick: Cell<u32>,
}

// SAFETY-free justification: `ThreadRing` is only ever reached through
// the thread-local `LOCAL_RING`, so `sample_tick` is single-threaded
// despite the `&'static` reference.

fn local_ring(t: &'static Tracer) -> &'static ThreadRing {
    LOCAL_RING.with(|cell| match cell.get() {
        Some(r) => r,
        None => {
            let ring = Arc::new(SpanRing::new(
                t.ring_capacity.load(Ordering::Relaxed) as usize
            ));
            let tid = t.next_tid.fetch_add(1, Ordering::Relaxed);
            let thread_name = std::thread::current()
                .name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("thread-{tid}"));
            t.rings
                .lock()
                .expect("tracer registry")
                .push(RegisteredRing {
                    ring: Arc::clone(&ring),
                    tid,
                    thread_name,
                });
            let leaked: &'static ThreadRing = Box::leak(Box::new(ThreadRing {
                ring,
                sample_tick: Cell::new(0),
            }));
            cell.set(Some(leaked));
            leaked
        }
    })
}

/// Microseconds since the tracer's epoch.
fn now_us(t: &Tracer) -> u64 {
    t.epoch.elapsed().as_micros() as u64
}

/// Turns tracing on with the given configuration. Idempotent;
/// reconfiguring applies to rings created after the call.
pub fn enable(config: TraceConfig) {
    let t = global();
    t.ring_capacity
        .store(config.ring_capacity.max(8) as u64, Ordering::Relaxed);
    t.sample_one_in
        .store(config.sample_one_in.max(1), Ordering::Relaxed);
    t.enabled.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Already-recorded events stay snapshottable.
pub fn disable() {
    global().enabled.store(false, Ordering::Relaxed);
}

/// Whether tracing is currently on (one relaxed atomic load — this is
/// the entire cost of a disabled trace point).
#[inline]
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Starts a span; the record is written when the guard drops. Returns
/// an inert guard (no ring write ever) when tracing is disabled or this
/// span is sampled out.
#[inline]
pub fn span(cat: TraceCat, name: &str) -> SpanGuard {
    span_id(cat, name, 0)
}

/// Like [`span`] but tags the record with a correlation id (query id),
/// exported as `args.query`.
#[inline]
pub fn span_id(cat: TraceCat, name: &str, id: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    let t = global();
    let local = local_ring(t);
    let n = t.sample_one_in.load(Ordering::Relaxed);
    if n > 1 {
        let tick = local.sample_tick.get().wrapping_add(1);
        local.sample_tick.set(tick);
        if !tick.is_multiple_of(n) {
            return SpanGuard::inert();
        }
    }
    let mut name_buf = [0u8; MAX_NAME];
    let stored = crate::ring::truncated_utf8(name);
    name_buf[..stored.len()].copy_from_slice(stored);
    SpanGuard {
        local: Some(local),
        start_us: now_us(t),
        cat,
        id,
        name: name_buf,
        name_len: stored.len() as u8,
    }
}

/// Records a zero-duration instant event (admission bypass, timeout …).
pub fn instant(cat: TraceCat, name: &str) {
    instant_id(cat, name, 0);
}

/// Like [`instant`] with a correlation id.
pub fn instant_id(cat: TraceCat, name: &str, id: u64) {
    if !enabled() {
        return;
    }
    let t = global();
    let local = local_ring(t);
    local.ring.push(now_us(t), 0, KIND_INSTANT, cat, id, name);
}

/// An in-flight span; writes its record (start timestamp + duration)
/// into the owning thread's ring when dropped.
///
/// Dropping on a different thread than the one that created it would
/// break the single-writer ring protocol, so the guard is deliberately
/// `!Send` (it holds a thread-local reference).
pub struct SpanGuard {
    /// `None` for inert guards (tracing disabled / sampled out).
    local: Option<&'static ThreadRing>,
    start_us: u64,
    cat: TraceCat,
    id: u64,
    name: [u8; MAX_NAME],
    name_len: u8,
}

impl SpanGuard {
    fn inert() -> SpanGuard {
        SpanGuard {
            local: None,
            start_us: 0,
            cat: TraceCat::Query,
            id: 0,
            name: [0; MAX_NAME],
            name_len: 0,
        }
    }

    /// Whether this guard will record on drop.
    pub fn is_recording(&self) -> bool {
        self.local.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(local) = self.local {
            let end = now_us(global());
            let name = std::str::from_utf8(&self.name[..self.name_len as usize]).unwrap_or("");
            local.ring.push(
                self.start_us,
                end.saturating_sub(self.start_us),
                KIND_SPAN,
                self.cat,
                self.id,
                name,
            );
        }
    }
}

/// Collects every ring into one snapshot (events sorted per thread by
/// the exporter, drop totals summed across rings).
pub fn snapshot() -> TraceSnapshot {
    let t = global();
    let rings = t.rings.lock().expect("tracer registry");
    let mut events = Vec::new();
    let mut threads = Vec::with_capacity(rings.len());
    let mut dropped_total = 0u64;
    for reg in rings.iter() {
        let mut records: Vec<Record> = Vec::new();
        reg.ring.collect(&mut records);
        dropped_total += reg.ring.dropped();
        threads.push(ThreadInfo {
            tid: reg.tid,
            name: reg.thread_name.clone(),
        });
        events.extend(
            records
                .into_iter()
                .map(|r| crate::export::event_from_record(r, reg.tid)),
        );
    }
    TraceSnapshot {
        events,
        threads,
        dropped: dropped_total,
    }
}

/// Total records lost to ring wrap-around since the last [`clear`].
pub fn dropped() -> u64 {
    let t = global();
    t.rings
        .lock()
        .expect("tracer registry")
        .iter()
        .map(|r| r.ring.dropped())
        .sum()
}

/// Forgets all recorded events (`GET /trace?clear=1`): subsequent
/// snapshots only contain events recorded after this call.
pub fn clear() {
    let t = global();
    for reg in t.rings.lock().expect("tracer registry").iter() {
        reg.ring.clear();
    }
}
