//! The process-global tracer: enable/disable, per-thread ring
//! registration and recycling, span guards and snapshots.

use std::cell::{Cell, OnceCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::export::{ThreadInfo, TraceSnapshot};
use crate::ring::{Record, SpanRing, KIND_INSTANT, KIND_SPAN, MAX_NAME};
use crate::TraceCat;

/// Tuning knobs passed to [`enable`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Slots per thread-local ring; oldest records are overwritten (and
    /// counted as dropped) beyond this.
    pub ring_capacity: usize,
    /// Record only every N-th span per thread (`1` = record all). Lets
    /// tracing stay on under load at a bounded cost.
    pub sample_one_in: u32,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            ring_capacity: 4096,
            sample_one_in: 1,
        }
    }
}

/// Process-global tracer state. Use the free functions ([`enable`],
/// [`span`], [`snapshot`], …) rather than holding one of these.
pub struct Tracer {
    enabled: AtomicBool,
    ring_capacity: AtomicU64,
    sample_one_in: AtomicU32,
    next_tid: AtomicU32,
    /// Every live ring plus up to [`DEAD_RING_RETAIN`] rings of
    /// recently-exited threads (kept so late snapshots still see their
    /// final events — a query's spans outlive its worker). Beyond that
    /// budget, a new thread *recycles* the longest-dead ring instead of
    /// registering a fresh one, so the registry is bounded by the peak
    /// number of concurrently-traced threads plus the retention budget —
    /// not by the number of threads ever created (servers churn through
    /// one short-lived thread per connection). Ordered by registration
    /// recency: recycled entries move to the back.
    rings: Mutex<Vec<RegisteredRing>>,
    /// Zero point for all timestamps (first use of the tracer).
    epoch: Instant,
}

struct RegisteredRing {
    ring: Arc<SpanRing>,
    tid: u32,
    thread_name: String,
}

fn global() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        ring_capacity: AtomicU64::new(TraceConfig::default().ring_capacity as u64),
        sample_one_in: AtomicU32::new(1),
        next_tid: AtomicU32::new(1),
        rings: Mutex::new(Vec::new()),
        epoch: Instant::now(),
    })
}

thread_local! {
    /// This thread's ring handle, installed on first recorded event.
    /// Unset until then so threads that never trace pay nothing but the
    /// enabled check. Dropped at thread exit, which releases this
    /// thread's `Arc` clone — the registry detects that (strong count
    /// back at 1) and eventually hands the ring to a later registering
    /// thread (see [`register_local_ring`]).
    static LOCAL_RING: OnceCell<LocalRing> = const { OnceCell::new() };
}

/// Per-thread handle: one `Arc` clone of the registered ring plus the
/// thread's sampling counter.
struct LocalRing {
    ring: Arc<SpanRing>,
    sample_tick: Cell<u32>,
}

/// Runs `f` with this thread's ring handle, registering (or recycling)
/// a ring on first use. Returns `None` only during thread destruction,
/// when the thread-local is no longer accessible.
fn with_local<R>(t: &'static Tracer, f: impl FnOnce(&LocalRing) -> R) -> Option<R> {
    LOCAL_RING
        .try_with(|cell| f(cell.get_or_init(|| register_local_ring(t))))
        .ok()
}

/// Dead rings kept snapshottable before new threads start recycling
/// them. Deep enough that a `/trace` scrape still sees the spans of
/// query/connection threads that just exited, shallow enough that a
/// connection-churning server stays at a few MiB of retained rings.
const DEAD_RING_RETAIN: usize = 8;

/// Registers this thread with the tracer. A ring counts as *dead* when
/// the registry's `Arc` is the only clone left — the owner's
/// thread-local (and any span guards) are gone. Dead rings within the
/// [`DEAD_RING_RETAIN`] budget are left alone so their final events stay
/// snapshottable; past the budget, the longest-dead ring is recycled for
/// this thread instead of growing the registry. Dead rings whose
/// capacity no longer matches the configuration are pruned outright.
fn register_local_ring(t: &'static Tracer) -> LocalRing {
    // ORDERING: config knob and tid counter — the capacity is a hint
    // (rings created around a reconfigure may use either value) and the
    // tid only needs uniqueness, which fetch_add provides at any
    // strength.
    let capacity = (t.ring_capacity.load(Ordering::Relaxed) as usize).max(8);
    let thread_name = std::thread::current().name().map(str::to_owned);
    let tid = t.next_tid.fetch_add(1, Ordering::Relaxed);
    let thread_name = thread_name.unwrap_or_else(|| format!("thread-{tid}"));
    let mut rings = t.rings.lock().expect("tracer registry");
    rings.retain(|reg| Arc::strong_count(&reg.ring) > 1 || reg.ring.capacity() == capacity);
    let dead: Vec<usize> = (0..rings.len())
        .filter(|&i| Arc::strong_count(&rings[i].ring) == 1)
        .collect();
    let ring = if dead.len() >= DEAD_RING_RETAIN {
        // `dead[0]` is the least recently registered dead entry; move it
        // to the back so the order keeps tracking recency.
        let mut reg = rings.remove(dead[0]);
        reg.ring.recycle();
        reg.tid = tid;
        reg.thread_name = thread_name;
        let ring = Arc::clone(&reg.ring);
        rings.push(reg);
        ring
    } else {
        let ring = Arc::new(SpanRing::new(capacity));
        rings.push(RegisteredRing {
            ring: Arc::clone(&ring),
            tid,
            thread_name,
        });
        ring
    };
    LocalRing {
        ring,
        sample_tick: Cell::new(0),
    }
}

/// Microseconds since the tracer's epoch.
fn now_us(t: &Tracer) -> u64 {
    t.epoch.elapsed().as_micros() as u64
}

/// Turns tracing on with the given configuration. Idempotent;
/// reconfiguring applies to rings created after the call.
pub fn enable(config: TraceConfig) {
    let t = global();
    // ORDERING: independent config cells plus an on/off flag; trace
    // points that race the enable may record or skip a span either way,
    // and nothing downstream dereferences memory guarded by the flag.
    t.ring_capacity
        .store(config.ring_capacity.max(8) as u64, Ordering::Relaxed);
    t.sample_one_in
        .store(config.sample_one_in.max(1), Ordering::Relaxed);
    t.enabled.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Already-recorded events stay snapshottable.
pub fn disable() {
    // ORDERING: see `enable` — the flag gates only whether spans are
    // recorded, never what memory is safe to touch.
    global().enabled.store(false, Ordering::Relaxed);
}

/// Whether tracing is currently on (one relaxed atomic load — this is
/// the entire cost of a disabled trace point).
#[inline]
pub fn enabled() -> bool {
    // ORDERING: advisory flag read on the hot path; a stale value only
    // delays when trace points notice a toggle.
    global().enabled.load(Ordering::Relaxed)
}

/// Starts a span; the record is written when the guard drops. Returns
/// an inert guard (no ring write ever) when tracing is disabled or this
/// span is sampled out.
#[inline]
pub fn span(cat: TraceCat, name: &str) -> SpanGuard {
    span_id(cat, name, 0)
}

/// Like [`span`] but tags the record with a correlation id (query id),
/// exported as `args.query`.
#[inline]
pub fn span_id(cat: TraceCat, name: &str, id: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard::inert();
    }
    let t = global();
    let Some(ring) = with_local(t, |local| {
        // ORDERING: sampling knob — a racing reconfigure may sample one
        // span under the old rate; the tick itself is thread-local.
        let n = t.sample_one_in.load(Ordering::Relaxed);
        if n > 1 {
            let tick = local.sample_tick.get().wrapping_add(1);
            local.sample_tick.set(tick);
            if !tick.is_multiple_of(n) {
                return None;
            }
        }
        Some(Arc::clone(&local.ring))
    })
    .flatten() else {
        return SpanGuard::inert();
    };
    let mut name_buf = [0u8; MAX_NAME];
    let stored = crate::ring::truncated_utf8(name);
    name_buf[..stored.len()].copy_from_slice(stored);
    SpanGuard {
        ring: Some(ring),
        start_us: now_us(t),
        cat,
        id,
        name: name_buf,
        name_len: stored.len() as u8,
        _not_send: PhantomData,
    }
}

/// Records a zero-duration instant event (admission bypass, timeout …).
pub fn instant(cat: TraceCat, name: &str) {
    instant_id(cat, name, 0);
}

/// Like [`instant`] with a correlation id.
pub fn instant_id(cat: TraceCat, name: &str, id: u64) {
    if !enabled() {
        return;
    }
    let t = global();
    let _ = with_local(t, |local| {
        local.ring.push(now_us(t), 0, KIND_INSTANT, cat, id, name);
    });
}

/// An in-flight span; writes its record (start timestamp + duration)
/// into the owning thread's ring when dropped.
///
/// Dropping on a different thread than the one that created it would
/// break the single-writer ring protocol, so the guard is deliberately
/// `!Send`. It holds its own `Arc` clone of the ring, which also keeps
/// the ring out of the recycler while the span is open.
pub struct SpanGuard {
    /// `None` for inert guards (tracing disabled / sampled out).
    ring: Option<Arc<SpanRing>>,
    start_us: u64,
    cat: TraceCat,
    id: u64,
    name: [u8; MAX_NAME],
    name_len: u8,
    /// Keeps the guard `!Send` (see the type-level doc).
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    fn inert() -> SpanGuard {
        SpanGuard {
            ring: None,
            start_us: 0,
            cat: TraceCat::Query,
            id: 0,
            name: [0; MAX_NAME],
            name_len: 0,
            _not_send: PhantomData,
        }
    }

    /// Whether this guard will record on drop.
    pub fn is_recording(&self) -> bool {
        self.ring.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(ring) = &self.ring {
            let end = now_us(global());
            let name = std::str::from_utf8(&self.name[..self.name_len as usize]).unwrap_or("");
            ring.push(
                self.start_us,
                end.saturating_sub(self.start_us),
                KIND_SPAN,
                self.cat,
                self.id,
                name,
            );
        }
    }
}

/// Collects every ring into one snapshot (events sorted per thread by
/// the exporter, drop totals summed across rings).
pub fn snapshot() -> TraceSnapshot {
    snapshot_inner(false)
}

/// Like [`snapshot`], but additionally hides exactly the records the
/// snapshot observed (`GET /trace?clear=1`): spans recorded while the
/// snapshot was being taken stay visible for the next one, so a
/// scrape-then-clear loop sees each span exactly once.
pub fn snapshot_and_clear() -> TraceSnapshot {
    snapshot_inner(true)
}

fn snapshot_inner(clear: bool) -> TraceSnapshot {
    let t = global();
    let rings = t.rings.lock().expect("tracer registry");
    let mut events = Vec::new();
    let mut threads = Vec::with_capacity(rings.len());
    let mut dropped_total = 0u64;
    for reg in rings.iter() {
        let mut records: Vec<Record> = Vec::new();
        let head = reg.ring.collect(&mut records);
        dropped_total += reg.ring.dropped();
        if clear {
            reg.ring.clear_to(head);
        }
        threads.push(ThreadInfo {
            tid: reg.tid,
            name: reg.thread_name.clone(),
        });
        events.extend(
            records
                .into_iter()
                .map(|r| crate::export::event_from_record(r, reg.tid)),
        );
    }
    TraceSnapshot {
        events,
        threads,
        dropped: dropped_total,
    }
}

/// Point-in-time counters of the process tracer, cheap enough for a
/// `/stats` poll: how many rings exist (live threads plus retained dead
/// ones) and how many records were lost to wrap-around or recycling
/// since the last clear. A rising `dropped` under sustained load means
/// `/trace` timelines have holes — raise the ring capacity or scrape
/// (with `clear=1`) more often.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerStats {
    /// Whether tracing is currently enabled.
    pub enabled: bool,
    /// Registered rings (one per traced thread, plus retained dead rings).
    pub rings: usize,
    /// Records lost to ring wrap-around or recycling since the last clear,
    /// summed across rings.
    pub dropped: u64,
}

/// Snapshot of the tracer's ring/overflow counters (see [`TracerStats`]).
pub fn stats() -> TracerStats {
    let t = global();
    let rings = t.rings.lock().expect("tracer registry");
    TracerStats {
        // ORDERING: point-in-time stats read; staleness is inherent to a
        // scrape.
        enabled: t.enabled.load(Ordering::Relaxed),
        rings: rings.len(),
        dropped: rings.iter().map(|r| r.ring.dropped()).sum(),
    }
}

/// Total records lost to ring wrap-around since the last [`clear`].
pub fn dropped() -> u64 {
    let t = global();
    t.rings
        .lock()
        .expect("tracer registry")
        .iter()
        .map(|r| r.ring.dropped())
        .sum()
}

/// Forgets all recorded events: subsequent snapshots only contain events
/// recorded after this call. Prefer [`snapshot_and_clear`] when pairing
/// with a snapshot — a separate snapshot-then-`clear` sequence silently
/// hides anything recorded in between.
pub fn clear() {
    let t = global();
    for reg in t.rings.lock().expect("tracer registry").iter() {
        reg.ring.clear();
    }
}
