//! The bounded per-thread event ring with seqlock slots.
//!
//! One ring is owned (written) by exactly one thread; any thread may
//! snapshot it concurrently. Every field of every slot is an atomic, so
//! the whole structure is `unsafe`-free: torn reads are *detected* (via
//! the per-slot sequence number) rather than prevented.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::TraceCat;

/// Longest event name stored inline in a slot; longer names are
/// truncated (a fixed slot size is what keeps recording allocation-free).
pub(crate) const MAX_NAME: usize = 24;

/// Record kinds stored in a slot.
pub(crate) const KIND_SPAN: u8 = 0;
pub(crate) const KIND_INSTANT: u8 = 1;

/// One fixed-size event slot. Layout (8 × `u64` = 64 bytes, one cache
/// line on the paper's Broadwell target):
///
/// * `seq` — seqlock word: odd while the owner is writing, even and
///   equal to `2 × generation` once the record for write index `i`
///   (generation `i / capacity + 1`) is complete.
/// * `ts_us` / `dur_us` — start timestamp and duration in microseconds.
/// * `meta` — packed `kind | cat << 8 | name_len << 16`.
/// * `id` — correlation id (query id), `0` if none.
/// * `name` — up to [`MAX_NAME`] UTF-8 bytes, little-endian packed.
struct Slot {
    seq: AtomicU64,
    ts_us: AtomicU64,
    dur_us: AtomicU64,
    meta: AtomicU64,
    id: AtomicU64,
    name: [AtomicU64; 3],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            ts_us: AtomicU64::new(0),
            dur_us: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            id: AtomicU64::new(0),
            name: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
        }
    }
}

/// A decoded record read back out of a ring.
///
/// Public so external harnesses (the `ccp-verify` interleaving checker)
/// can drive a [`SpanRing`] directly and assert on what
/// [`collect`](SpanRing::collect) observed.
#[derive(Debug, Clone)]
pub struct Record {
    /// Start timestamp, microseconds since the tracer epoch.
    pub ts_us: u64,
    /// Duration in microseconds (`0` for instants).
    pub dur_us: u64,
    /// Record kind: `0` for spans, `1` for instants.
    pub kind: u8,
    /// Layer the record came from.
    pub cat: TraceCat,
    /// Correlation id (query id), `0` if none.
    pub id: u64,
    /// Event name (truncated to the inline limit).
    pub name: String,
}

/// A bounded single-writer, many-reader event ring.
///
/// The owning thread calls [`push`](SpanRing::push); snapshot readers
/// call [`collect`](SpanRing::collect). When the ring wraps, the oldest
/// record is overwritten and [`dropped`](SpanRing::dropped) increments.
pub struct SpanRing {
    slots: Vec<Slot>,
    /// Monotone count of records ever pushed (written only by the owner).
    head: AtomicU64,
    /// Records overwritten by wrap-around since creation.
    dropped: AtomicU64,
    /// Snapshot floor set by [`clear`](SpanRing::clear): records with
    /// write index below this are invisible to `collect`.
    cleared_upto: AtomicU64,
    /// `dropped` value at the last `clear`, so drop counts are reported
    /// per snapshot window.
    dropped_base: AtomicU64,
}

impl SpanRing {
    /// Creates a ring holding `capacity` slots (min 8).
    pub fn new(capacity: usize) -> SpanRing {
        let capacity = capacity.max(8);
        SpanRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cleared_upto: AtomicU64::new(0),
            dropped_base: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records overwritten by wrap-around since the last clear.
    pub fn dropped(&self) -> u64 {
        // ORDERING: statistics read of two monotone counters; a stale or
        // torn pair only misreports a count transiently, no memory is
        // accessed based on the result (hence saturating_sub).
        self.dropped
            .load(Ordering::Relaxed)
            .saturating_sub(self.dropped_base.load(Ordering::Relaxed))
    }

    /// Writes one span record (a completed span: start + duration).
    ///
    /// Must only be called by the ring's single owner — see
    /// [`push`](Self::push) for the seqlock contract.
    pub fn push_span(&self, ts_us: u64, dur_us: u64, cat: TraceCat, id: u64, name: &str) {
        self.push(ts_us, dur_us, KIND_SPAN, cat, id, name);
    }

    /// Writes one zero-duration instant record.
    ///
    /// Must only be called by the ring's single owner — see
    /// [`push`](Self::push) for the seqlock contract.
    pub fn push_instant(&self, ts_us: u64, cat: TraceCat, id: u64, name: &str) {
        self.push(ts_us, 0, KIND_INSTANT, cat, id, name);
    }

    /// Writes one record. Must only be called by the owning thread —
    /// the seqlock protocol assumes a single writer.
    pub(crate) fn push(
        &self,
        ts_us: u64,
        dur_us: u64,
        kind: u8,
        cat: TraceCat,
        id: u64,
        name: &str,
    ) {
        let cap = self.slots.len() as u64;
        // ORDERING: single-writer ring — only the owner mutates `head`, so
        // a relaxed self-read returns the exact last value it stored.
        let i = self.head.load(Ordering::Relaxed);
        let generation = i / cap + 1;
        let slot = &self.slots[(i % cap) as usize];

        // Seqlock write: mark odd, publish fields, mark even.
        // ORDERING: the odd-seq store may be relaxed because the Release
        // *fence* right after it orders it before every field store below
        // for any reader that acquires the final even seq; the field
        // stores themselves are relaxed for the same reason.
        slot.seq.store(2 * generation - 1, Ordering::Relaxed);
        fence(Ordering::Release);
        let name_bytes = truncated_utf8(name);
        slot.ts_us.store(ts_us, Ordering::Relaxed);
        slot.dur_us.store(dur_us, Ordering::Relaxed);
        // ORDERING: still inside the seqlock write window — these relaxed
        // stores are published by the closing Release on `seq`.
        slot.meta.store(
            kind as u64 | (cat as u64) << 8 | (name_bytes.len() as u64) << 16,
            Ordering::Relaxed,
        );
        slot.id.store(id, Ordering::Relaxed);
        let mut packed = [0u8; MAX_NAME];
        packed[..name_bytes.len()].copy_from_slice(name_bytes);
        // ORDERING: still inside the odd/even seq window opened above —
        // relaxed name-word stores are published by the Release below.
        for (w, chunk) in slot.name.iter().zip(packed.chunks_exact(8)) {
            w.store(
                u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")),
                Ordering::Relaxed,
            );
        }
        // ORDERING: Release closes the seqlock write: a reader that
        // acquire-loads this even seq sees every field store above it.
        slot.seq.store(2 * generation, Ordering::Release);

        // A wrap only drops a record the world could still see. Slots
        // below the cleared floor were either delivered to a snapshot
        // (`clear_to`) or already counted dropped (`recycle`); counting
        // them again would overstate loss — the ccp-verify recycle
        // harness found exactly that double-count under the schedule
        // "11 pushes, recycle, push".
        // ORDERING: relaxed floor read and counter bump — `dropped` is a
        // monotone statistic, and `cleared_upto` only ever grows, so a
        // stale read at worst counts a drop for an already-hidden record.
        if i >= cap && i - cap >= self.cleared_upto.load(Ordering::Relaxed) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        // ORDERING: Release publishes the completed slot (and its even
        // seq) before the new head; `collect`'s Acquire head-load is the
        // matching edge that makes index `i` safe to read.
        self.head.store(i + 1, Ordering::Release);
    }

    /// Reads every currently-valid record, skipping torn slots (slots
    /// the owner is rewriting right now, or has already lapped). Returns
    /// the head (write index) this snapshot observed, so callers can
    /// later [`clear_to`](SpanRing::clear_to) exactly what they read.
    ///
    /// Safe to call from any thread, concurrently with the owner's
    /// writes.
    pub fn collect(&self, out: &mut Vec<Record>) -> u64 {
        let cap = self.slots.len() as u64;
        // ORDERING: Acquire pairs with the writer's Release head-store —
        // every slot below this head is fully published before we read it.
        let head = self.head.load(Ordering::Acquire);
        // ORDERING: the floor is advisory (it only hides records); a stale
        // relaxed read shows at most already-cleared records again.
        let floor = self
            .cleared_upto
            .load(Ordering::Relaxed)
            .max(head.saturating_sub(cap));
        for i in floor..head {
            let slot = &self.slots[(i % cap) as usize];
            let expect = 2 * (i / cap + 1);
            // ORDERING: Acquire on the seq word pairs with the writer's
            // closing Release, ordering the field loads below after it.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != expect {
                continue; // being written, or already overwritten
            }
            // ORDERING: field loads are relaxed; the seqlock re-check
            // after the Acquire fence below rejects any torn read.
            let ts_us = slot.ts_us.load(Ordering::Relaxed);
            let dur_us = slot.dur_us.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let id = slot.id.load(Ordering::Relaxed);
            let mut packed = [0u8; MAX_NAME];
            // ORDERING: same seqlock-validated window as the loads above.
            for (w, chunk) in slot.name.iter().zip(packed.chunks_exact_mut(8)) {
                chunk.copy_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
            }
            // ORDERING: the fence orders the field loads above before the
            // relaxed seq re-load — if the writer touched the slot in
            // between, the seq changed and the record is discarded.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // torn: writer lapped us mid-read
            }
            let name_len = ((meta >> 16) & 0xff) as usize;
            out.push(Record {
                ts_us,
                dur_us,
                kind: (meta & 0xff) as u8,
                cat: TraceCat::from_u8(((meta >> 8) & 0xff) as u8),
                id,
                name: String::from_utf8_lossy(&packed[..name_len.min(MAX_NAME)]).into_owned(),
            });
        }
        head
    }

    /// Hides all current records from future snapshots and rebases the
    /// drop counter. The owner keeps writing unimpeded.
    pub fn clear(&self) {
        // ORDERING: Acquire matches the writer's Release head-store so the
        // floor lands at a head whose records are fully published.
        self.clear_to(self.head.load(Ordering::Acquire));
    }

    /// Hides records below write index `upto` (as previously observed by
    /// [`collect`](SpanRing::collect)) and rebases the drop counter.
    /// Records pushed after that observation stay visible, so a
    /// snapshot-then-clear pair never loses events recorded in between.
    /// The floor only moves forward.
    pub fn clear_to(&self, upto: u64) {
        // ORDERING: the floor is a monotone visibility hint (fetch_max
        // keeps it from moving backwards under racing clears) and the
        // drop rebase is statistics-only — neither guards other memory,
        // so relaxed suffices throughout.
        self.cleared_upto.fetch_max(upto, Ordering::Relaxed);
        self.dropped_base
            .store(self.dropped.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reclaims the ring for a new owner thread: the previous owner's
    /// still-visible records are *counted as dropped* (they are being
    /// discarded, and the retained-plus-dropped accounting must stay
    /// exact) and then hidden. `head` keeps rising monotonically, so the
    /// seqlock generations of already-written slots stay consistent for
    /// the next owner.
    pub fn recycle(&self) {
        let cap = self.slots.len() as u64;
        // ORDERING: Acquire pairs with the writer's Release head-store;
        // recycle runs when the owner thread is gone, so this head is
        // final.
        let head = self.head.load(Ordering::Acquire);
        // ORDERING: floor read, drop accounting, and floor raise are all
        // statistics/visibility updates with a dead writer — relaxed.
        let floor = self
            .cleared_upto
            .load(Ordering::Relaxed)
            .max(head.saturating_sub(cap));
        // ORDERING: monotone drop counter and monotone floor — relaxed,
        // as above.
        self.dropped
            .fetch_add(head.saturating_sub(floor), Ordering::Relaxed);
        self.cleared_upto.fetch_max(head, Ordering::Relaxed);
    }
}

/// Truncates `name` to at most [`MAX_NAME`] bytes on a char boundary so
/// the stored prefix stays valid UTF-8.
pub(crate) fn truncated_utf8(name: &str) -> &[u8] {
    if name.len() <= MAX_NAME {
        return name.as_bytes();
    }
    let mut end = MAX_NAME;
    while end > 0 && !name.is_char_boundary(end) {
        end -= 1;
    }
    &name.as_bytes()[..end]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push_named(ring: &SpanRing, n: u64, name: &str) {
        ring.push(n, 1, KIND_SPAN, TraceCat::Op, n, name);
    }

    #[test]
    fn records_round_trip() {
        let ring = SpanRing::new(16);
        ring.push(100, 25, KIND_SPAN, TraceCat::Bind, 7, "bind");
        ring.push(130, 0, KIND_INSTANT, TraceCat::Admission, 0, "bypass");
        let mut out = Vec::new();
        ring.collect(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].ts_us, 100);
        assert_eq!(out[0].dur_us, 25);
        assert_eq!(out[0].cat, TraceCat::Bind);
        assert_eq!(out[0].id, 7);
        assert_eq!(out[0].name, "bind");
        assert_eq!(out[1].kind, KIND_INSTANT);
        assert_eq!(out[1].name, "bypass");
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_drops() {
        let ring = SpanRing::new(8);
        for i in 0..20 {
            push_named(&ring, i, "e");
        }
        let mut out = Vec::new();
        ring.collect(&mut out);
        assert_eq!(out.len(), 8);
        assert_eq!(out.first().unwrap().ts_us, 12);
        assert_eq!(out.last().unwrap().ts_us, 19);
        assert_eq!(ring.dropped(), 12);
    }

    #[test]
    fn clear_hides_existing_records_and_rebases_drops() {
        let ring = SpanRing::new(8);
        for i in 0..10 {
            push_named(&ring, i, "e");
        }
        ring.clear();
        assert_eq!(ring.dropped(), 0);
        let mut out = Vec::new();
        ring.collect(&mut out);
        assert!(out.is_empty());
        push_named(&ring, 99, "after");
        ring.collect(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts_us, 99);
    }

    #[test]
    fn clear_to_keeps_records_pushed_after_the_observed_head() {
        let ring = SpanRing::new(8);
        push_named(&ring, 1, "before");
        let mut out = Vec::new();
        let head = ring.collect(&mut out);
        assert_eq!(out.len(), 1);
        // A record lands between the snapshot and the clear…
        push_named(&ring, 2, "between");
        ring.clear_to(head);
        // …and must survive for the next snapshot.
        out.clear();
        ring.collect(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "between");
        // The floor never moves backwards.
        ring.clear();
        ring.clear_to(head);
        out.clear();
        ring.collect(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn recycle_hides_records_and_counts_them_as_dropped() {
        let ring = SpanRing::new(8);
        for i in 0..10 {
            push_named(&ring, i, "e"); // 8 visible, 2 dropped by wrap
        }
        assert_eq!(ring.dropped(), 2);
        ring.recycle();
        let mut out = Vec::new();
        ring.collect(&mut out);
        assert!(out.is_empty(), "old owner's records are hidden");
        assert_eq!(ring.dropped(), 10, "hidden records count as dropped");
        push_named(&ring, 99, "next-owner");
        ring.collect(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts_us, 99);
    }

    #[test]
    fn long_names_truncate_on_char_boundary() {
        let ring = SpanRing::new(8);
        // 23 ASCII bytes + one 3-byte char straddling the 24-byte limit.
        let name = format!("{}€", "x".repeat(23));
        ring.push(1, 1, KIND_SPAN, TraceCat::Op, 0, &name);
        let mut out = Vec::new();
        ring.collect(&mut out);
        assert_eq!(out[0].name, "x".repeat(23));
    }
}
