//! # ccp-trace
//!
//! Query-level tracing for the whole workspace: where did query #4217
//! spend its 38 ms?  `ccp-obs` answers *how often* and *how long on
//! average* (counters, histograms); this crate answers *when exactly and
//! in what order* — one co-run of a polluting scan and a cache-sensitive
//! aggregation renders as a complete timeline in Perfetto or
//! `chrome://tracing`, with spans from admission wait, scheduler
//! decision, executor dispatch, resctrl mask-bind and operator execution
//! stacked per thread.
//!
//! ## Design
//!
//! * **Per-thread lock-free rings.** Each traced thread owns a bounded
//!   ring of fixed-size slots ([`ring::SpanRing`]). Only the owning
//!   thread writes; snapshot readers use a per-slot seqlock (odd/even
//!   sequence numbers) to detect and skip torn slots, so recording never
//!   takes a lock and never blocks on a reader.
//! * **Completed spans, not raw begin/end.** A [`SpanGuard`] captures
//!   the start timestamp on creation and writes one record (start +
//!   duration) when dropped. The exporter re-derives begin/end pairs,
//!   which makes the Chrome output balanced by construction even when
//!   the ring wraps mid-burst.
//! * **Bounded with drop counting.** When a ring wraps, the oldest
//!   record is overwritten and a drop counter increments; the `/trace`
//!   snapshot reports the total so truncation is visible, never silent.
//! * **Bounded across thread churn.** A ring whose owner thread exited
//!   stays snapshottable (late scrapes still see its final events) until
//!   the small dead-ring retention budget fills up; after that, each new
//!   thread recycles the longest-dead ring — its leftover records are
//!   counted as dropped. Memory is therefore bounded by the peak number
//!   of *concurrently* traced threads plus that budget, even for servers
//!   that spawn one short-lived thread per connection.
//! * **Zero-cost when disabled.** Every recording call first reads one
//!   process-global relaxed [`AtomicBool`]; when tracing is off nothing
//!   else happens — no thread-local access, no timestamp, no allocation.
//!   The `micro_alloc` perf gate runs with tracing disabled and must not
//!   move.
//! * **Sampling.** [`TraceConfig::sample_one_in`] records only every
//!   N-th span per thread for always-on production tracing at low cost.
//!
//! [`AtomicBool`]: std::sync::atomic::AtomicBool
//!
//! ## Example
//!
//! ```
//! use ccp_trace::{self as trace, TraceCat, TraceConfig};
//!
//! trace::enable(TraceConfig::default());
//! {
//!     let _outer = trace::span_id(TraceCat::Op, "column_scan", 42);
//!     trace::instant(TraceCat::Admission, "bypass");
//! } // span recorded on drop
//! let snap = trace::snapshot();
//! assert_eq!(snap.events.len(), 2);
//! let json = snap.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! trace::disable();
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]

mod export;
mod ring;
mod tracer;

pub use export::{ThreadInfo, TraceEvent, TraceEventKind, TraceSnapshot};
pub use ring::{Record, SpanRing};
pub use tracer::{
    clear, disable, dropped, enable, enabled, instant, instant_id, snapshot, snapshot_and_clear,
    span, span_id, stats, SpanGuard, TraceConfig, Tracer, TracerStats,
};

/// Category a trace event belongs to; becomes the Chrome `cat` field so
/// Perfetto can filter one layer of the stack at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceCat {
    /// HTTP service layer: request handling, response writing.
    Server = 0,
    /// Admission queue: enqueue, wait, bypass, timeout.
    Admission = 1,
    /// Scheduler decision: slot acquisition, co-run admissibility.
    Sched = 2,
    /// resctrl mask-bind on an executor worker (the paper's <100 µs
    /// fast path).
    Bind = 3,
    /// Operator execution: scan, aggregate, join phases.
    Op = 4,
    /// Whole-query envelope spans.
    Query = 5,
    /// Reuse cache: artifact hit/miss/install/evict instants.
    Reuse = 6,
}

impl TraceCat {
    /// Stable lowercase label used in exported JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceCat::Server => "server",
            TraceCat::Admission => "admission",
            TraceCat::Sched => "sched",
            TraceCat::Bind => "bind",
            TraceCat::Op => "op",
            TraceCat::Query => "query",
            TraceCat::Reuse => "reuse",
        }
    }

    pub(crate) fn from_u8(v: u8) -> TraceCat {
        match v {
            0 => TraceCat::Server,
            1 => TraceCat::Admission,
            2 => TraceCat::Sched,
            3 => TraceCat::Bind,
            4 => TraceCat::Op,
            5 => TraceCat::Query,
            _ => TraceCat::Reuse,
        }
    }
}
