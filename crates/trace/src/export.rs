//! Snapshot types and Chrome trace-event JSON export.
//!
//! The output loads directly in Perfetto / `chrome://tracing`: a JSON
//! object with a `traceEvents` array of `B`/`E` duration pairs, `i`
//! instants and `M` metadata (process/thread names). Spans are stored as
//! completed records (start + duration), so the exporter re-derives
//! begin/end pairs per thread with an explicit nesting stack — output is
//! balanced and properly nested by construction, even when rings wrapped
//! mid-run.

use crate::ring::{Record, KIND_INSTANT};
use crate::TraceCat;

/// What kind of record an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A completed span with a duration.
    Span,
    /// A zero-duration point event.
    Instant,
}

/// One decoded event from a thread's ring.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Tracer-assigned thread id (stable per thread for the process).
    pub tid: u32,
    /// Start time, microseconds since the tracer epoch.
    pub ts_us: u64,
    /// Duration in microseconds (`0` for instants).
    pub dur_us: u64,
    /// Span or instant.
    pub kind: TraceEventKind,
    /// Layer the event came from.
    pub cat: TraceCat,
    /// Correlation id (query id), `0` if none.
    pub id: u64,
    /// Event name (truncated to the ring's inline limit).
    pub name: String,
}

/// Identity of one traced thread, for Perfetto's track labels.
#[derive(Debug, Clone)]
pub struct ThreadInfo {
    /// Tracer-assigned thread id.
    pub tid: u32,
    /// OS thread name at registration time.
    pub name: String,
}

/// A point-in-time copy of every thread's ring.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// All readable events, unsorted (the exporter sorts per thread).
    pub events: Vec<TraceEvent>,
    /// Threads that have recorded at least one event.
    pub threads: Vec<ThreadInfo>,
    /// Records lost to ring wrap-around since the last clear — nonzero
    /// means the timeline has holes.
    pub dropped: u64,
}

pub(crate) fn event_from_record(r: Record, tid: u32) -> TraceEvent {
    TraceEvent {
        tid,
        ts_us: r.ts_us,
        dur_us: r.dur_us,
        kind: if r.kind == KIND_INSTANT {
            TraceEventKind::Instant
        } else {
            TraceEventKind::Span
        },
        cat: r.cat,
        id: r.id,
        name: r.name,
    }
}

impl TraceSnapshot {
    /// Keeps only the events of one query (`GET /trace?ticket=N`): spans
    /// and instants whose correlation id equals `query_id`, plus the
    /// thread metadata of the threads that still have events. The drop
    /// counter is passed through untouched — losses are a property of the
    /// whole capture, not of one query.
    pub fn filter_query(mut self, query_id: u64) -> TraceSnapshot {
        self.events.retain(|e| e.id == query_id);
        self.threads
            .retain(|t| self.events.iter().any(|e| e.tid == t.tid));
        self
    }

    /// Renders the snapshot as Chrome trace-event JSON.
    ///
    /// Per thread, spans are sorted by start time (longest first on
    /// ties) and emitted through a nesting stack: every `B` gets exactly
    /// one `E`, and a span that would cross its parent's end (possible
    /// only via torn/partial ring reads) is clamped, so the result is
    /// always well-nested.
    pub fn to_chrome_json(&self) -> String {
        let mut arr = EventArray {
            out: String::with_capacity(128 + self.events.len() * 96),
            first: true,
        };
        arr.out.push_str("{\"traceEvents\":[");
        arr.emit(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"ccp\"}}",
        );
        for t in &self.threads {
            let mut m = String::new();
            m.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            m.push_str(&t.tid.to_string());
            m.push_str(",\"args\":{\"name\":");
            escape_json_into(&mut m, &t.name);
            m.push_str("}}");
            arr.emit(&m);
        }

        let mut tids: Vec<u32> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        for tid in tids {
            let mut evs: Vec<&TraceEvent> = self.events.iter().filter(|e| e.tid == tid).collect();
            // Longest span first on equal start so parents open before
            // children; instants (dur 0) sort after span begins.
            evs.sort_by_key(|e| (e.ts_us, u64::MAX - e.dur_us));
            // Stack of (end_ts, name, cat) for currently-open spans.
            let mut open: Vec<(u64, String, TraceCat)> = Vec::new();
            for e in evs {
                arr.close_until(e.ts_us, &mut open, tid);
                match e.kind {
                    TraceEventKind::Instant => {
                        arr.emit(&format_event("i", &e.name, e.cat, e.ts_us, tid, e.id));
                    }
                    TraceEventKind::Span => {
                        let mut end = e.ts_us + e.dur_us;
                        if let Some((parent_end, _, _)) = open.last() {
                            end = end.min(*parent_end); // clamp crossings
                        }
                        arr.emit(&format_event("B", &e.name, e.cat, e.ts_us, tid, e.id));
                        open.push((end, e.name.clone(), e.cat));
                    }
                }
            }
            arr.close_until(u64::MAX, &mut open, tid);
        }
        let mut out = arr.out;
        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":");
        out.push_str(&self.dropped.to_string());
        out.push_str("}}");
        out
    }
}

/// Comma-separated JSON array writer plus the span-closing helper.
struct EventArray {
    out: String,
    first: bool,
}

impl EventArray {
    fn emit(&mut self, s: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(s);
    }

    /// Emits `E` events for every open span that ends at or before `ts`.
    fn close_until(&mut self, ts: u64, open: &mut Vec<(u64, String, TraceCat)>, tid: u32) {
        while open.last().is_some_and(|(end, _, _)| *end <= ts) {
            let (end, name, cat) = open.pop().expect("non-empty");
            self.emit(&format_event("E", &name, cat, end, tid, 0));
        }
    }
}

fn format_event(ph: &str, name: &str, cat: TraceCat, ts_us: u64, tid: u32, id: u64) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"name\":");
    escape_json_into(&mut s, name);
    s.push_str(",\"cat\":\"");
    s.push_str(cat.as_str());
    s.push_str("\",\"ph\":\"");
    s.push_str(ph);
    s.push_str("\",\"ts\":");
    s.push_str(&ts_us.to_string());
    s.push_str(",\"pid\":1,\"tid\":");
    s.push_str(&tid.to_string());
    if ph == "i" {
        s.push_str(",\"s\":\"t\"");
    }
    if id != 0 {
        s.push_str(",\"args\":{\"query\":");
        s.push_str(&id.to_string());
        s.push('}');
    }
    s.push('}');
    s
}

/// Appends `s` as a JSON string literal (with quotes) onto `out`.
pub(crate) fn escape_json_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(tid: u32, ts: u64, dur: u64, name: &str) -> TraceEvent {
        TraceEvent {
            tid,
            ts_us: ts,
            dur_us: dur,
            kind: TraceEventKind::Span,
            cat: TraceCat::Op,
            id: 0,
            name: name.to_string(),
        }
    }

    fn balanced(json: &str) -> bool {
        let b = json.matches("\"ph\":\"B\"").count();
        let e = json.matches("\"ph\":\"E\"").count();
        b == e
    }

    #[test]
    fn nested_spans_emit_balanced_well_ordered_pairs() {
        let snap = TraceSnapshot {
            events: vec![
                span(1, 0, 100, "outer"),
                span(1, 10, 20, "inner"),
                span(1, 50, 10, "inner2"),
            ],
            threads: vec![ThreadInfo {
                tid: 1,
                name: "w".into(),
            }],
            dropped: 0,
        };
        let json = snap.to_chrome_json();
        assert!(balanced(&json), "{json}");
        let outer_b = json
            .find("\"name\":\"outer\",\"cat\":\"op\",\"ph\":\"B\"")
            .unwrap();
        let inner_b = json
            .find("\"name\":\"inner\",\"cat\":\"op\",\"ph\":\"B\"")
            .unwrap();
        assert!(outer_b < inner_b, "parent opens before child: {json}");
        assert!(json.contains("\"otherData\":{\"dropped\":0}"));
    }

    #[test]
    fn crossing_span_is_clamped_to_parent() {
        // A child that (impossibly) outlives its parent — as can appear
        // after a partial ring wrap — must still nest.
        let snap = TraceSnapshot {
            events: vec![span(1, 0, 50, "parent"), span(1, 40, 100, "child")],
            threads: vec![],
            dropped: 3,
        };
        let json = snap.to_chrome_json();
        assert!(balanced(&json), "{json}");
        assert!(json.contains("\"dropped\":3"));
        // The child's E is clamped to ts=50 (the parent's end).
        let child_b = json.find("\"name\":\"child\"").unwrap();
        let after = &json[child_b..];
        assert!(after.contains("\"ph\":\"E\",\"ts\":50"), "{json}");
    }

    #[test]
    fn names_are_escaped() {
        let snap = TraceSnapshot {
            events: vec![span(1, 0, 1, "a\"b\\c\n")],
            threads: vec![ThreadInfo {
                tid: 1,
                name: "t\"1".into(),
            }],
            dropped: 0,
        };
        let json = snap.to_chrome_json();
        assert!(json.contains(r#""a\"b\\c\n""#), "{json}");
        assert!(json.contains(r#""t\"1""#), "{json}");
    }

    #[test]
    fn instants_carry_scope_and_query_args() {
        let snap = TraceSnapshot {
            events: vec![TraceEvent {
                tid: 2,
                ts_us: 5,
                dur_us: 0,
                kind: TraceEventKind::Instant,
                cat: TraceCat::Admission,
                id: 9,
                name: "bypass".into(),
            }],
            threads: vec![],
            dropped: 0,
        };
        let json = snap.to_chrome_json();
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"args\":{\"query\":9}"));
    }
}
