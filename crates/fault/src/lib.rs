//! Deterministic named failpoints for fault-injection testing.
//!
//! A failpoint is a named site in production code that normally does
//! nothing. A test (or an operator running a chaos drill) *arms* a set
//! of failpoints by installing a [`FaultPlan`], after which each hit of
//! an armed site is counted and — when its trigger matches — fires an
//! action: report failure to the caller, delay, or panic.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero cost when disarmed.** With no plan installed a call to
//!    [`should_fail`] is one relaxed atomic load and a branch; no lock
//!    is taken and no state is mutated.
//! 2. **Deterministic.** Triggers depend only on the per-point hit
//!    counter (and, for probability, a caller-chosen seed), never on
//!    wall-clock time or global randomness, so failures replay exactly.
//! 3. **Std-only.** No dependencies; usable from every crate in the
//!    workspace including `ccp-resctrl` at the bottom of the stack.
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of clauses, each
//! `name=action[@trigger]`:
//!
//! ```text
//! resctrl.write_schemata=err@1+40,sampler.probe=delay10@every2,engine.bind=err@p25s42
//! ```
//!
//! Actions: `err` (site returns its error), `err:<errno>` (site
//! fabricates that specific OS error — `err:enospc`, `err:eio` — so
//! exhaustion paths are distinguishable from generic I/O failure),
//! `delay<ms>` (sleep, then proceed), `panic`. Triggers: `<n>` (fire on
//! the n-th hit only),
//! `<n>+<count>` (a window of `count` consecutive hits starting at the
//! n-th), `every<k>` (every k-th hit), `p<pct>s<seed>` (fire with
//! probability `pct`% decided by a SplitMix64 hash of `seed ^ hit`).
//! Omitting the trigger fires on every hit.
//!
//! Plans install process-wide from the `CCP_FAULTS` environment
//! variable ([`install_from_env`]) or programmatically ([`install`]).

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread;
use std::time::Duration;

// ORDERING: relaxed — `ARMED` is a pure fast-path gate. A site racing
// with `install`/`clear` may evaluate against the old arming state for
// a few hits, which is acceptable for fault injection; keeping it
// relaxed is what makes the disarmed hot path fence-free.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Registry of armed points. `None` when no plan is installed. Guarded
/// by a plain mutex: it is only locked when `ARMED` is set, i.e. during
/// chaos runs and fault tests, never on the production fast path.
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

struct Registry {
    plan: FaultPlan,
    points: HashMap<String, PointState>,
}

struct PointState {
    spec: FaultSpec,
    hits: u64,
    fires: u64,
}

/// The specific OS error a typed `err:<errno>` action fabricates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Errno {
    /// `ENOSPC` — "No space left on device". What resctrl reports on
    /// CLOSID/RMID exhaustion (`mkdir` of one group too many).
    Enospc,
    /// `EIO` — "Input/output error". A generic kernel-side failure.
    Eio,
}

impl Errno {
    /// The strerror-style message real kernels put in the `io::Error`,
    /// so sites can fabricate errors indistinguishable from real ones.
    pub fn message(self) -> &'static str {
        match self {
            Errno::Enospc => "No space left on device",
            Errno::Eio => "Input/output error",
        }
    }

    /// The raw OS error number (Linux values).
    pub fn code(self) -> i32 {
        match self {
            Errno::Enospc => 28,
            Errno::Eio => 5,
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Errno::Enospc => write!(f, "enospc"),
            Errno::Eio => write!(f, "eio"),
        }
    }
}

/// What an armed failpoint does when its trigger matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// The site reports failure to its caller ([`should_fail`] returns
    /// `true`); the site fabricates whatever typed error fits.
    Err,
    /// Like [`Action::Err`], but naming the OS error the site should
    /// fabricate (`err:enospc`, `err:eio`) so exhaustion is
    /// distinguishable from generic I/O failure at the injection site.
    ErrNo(Errno),
    /// Sleep this many milliseconds, then let the site proceed.
    Delay(u64),
    /// Panic with a message naming the failpoint.
    Panic,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Err => write!(f, "err"),
            Action::ErrNo(e) => write!(f, "err:{e}"),
            Action::Delay(ms) => write!(f, "delay{ms}"),
            Action::Panic => write!(f, "panic"),
        }
    }
}

/// When an armed failpoint fires, as a function of its 1-based hit
/// counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// Fire on hits `start .. start + count` (a deterministic window;
    /// `count == 1` is the classic "nth hit" trigger).
    Nth { start: u64, count: u64 },
    /// Fire on every k-th hit (`hit % k == 0`).
    EveryK(u64),
    /// Fire with probability `pct`% per hit, decided by a SplitMix64
    /// hash of `seed ^ hit` — deterministic per (seed, hit) pair.
    Prob { pct: u8, seed: u64 },
    /// Fire on every hit.
    Always,
}

impl Trigger {
    fn fires(&self, hit: u64) -> bool {
        match *self {
            Trigger::Nth { start, count } => hit >= start && hit - start < count,
            Trigger::EveryK(k) => hit.is_multiple_of(k),
            Trigger::Prob { pct, seed } => splitmix64(seed ^ hit) % 100 < u64::from(pct),
            Trigger::Always => true,
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Trigger::Nth { start, count: 1 } => write!(f, "@{start}"),
            Trigger::Nth { start, count } => write!(f, "@{start}+{count}"),
            Trigger::EveryK(k) => write!(f, "@every{k}"),
            Trigger::Prob { pct, seed } => write!(f, "@p{pct}s{seed}"),
            Trigger::Always => Ok(()),
        }
    }
}

/// One armed failpoint: a site name plus what to do and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    pub name: String,
    pub action: Action,
    pub trigger: Trigger,
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}{}", self.name, self.action, self.trigger)
    }
}

/// A parsed fault plan: the ordered list of clauses from a
/// `CCP_FAULTS` / `--faults` string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub specs: Vec<FaultSpec>,
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, spec) in self.specs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{spec}")?;
        }
        Ok(())
    }
}

/// A malformed plan string. Always names the offending clause so the
/// operator can find it inside a long `CCP_FAULTS` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// The clause that failed to parse, verbatim.
    pub clause: String,
    /// Why it failed.
    pub reason: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault clause {:?}: {}", self.clause, self.reason)
    }
}

impl std::error::Error for PlanError {}

impl FromStr for FaultPlan {
    type Err = PlanError;

    fn from_str(s: &str) -> Result<Self, PlanError> {
        let mut specs = Vec::new();
        for clause in s.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            specs.push(parse_clause(clause)?);
        }
        Ok(FaultPlan { specs })
    }
}

fn parse_clause(clause: &str) -> Result<FaultSpec, PlanError> {
    let err = |reason: &str| PlanError {
        clause: clause.to_string(),
        reason: reason.to_string(),
    };
    let (name, rest) = clause
        .split_once('=')
        .ok_or_else(|| err("expected name=action[@trigger]"))?;
    if name.is_empty() {
        return Err(err("empty failpoint name"));
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
    {
        return Err(err(
            "failpoint names may only contain [A-Za-z0-9._-] characters",
        ));
    }
    let (action_str, trigger_str) = match rest.split_once('@') {
        Some((a, t)) => (a, Some(t)),
        None => (rest, None),
    };
    let action = parse_action(action_str).map_err(|reason| err(&reason))?;
    let trigger = match trigger_str {
        None => Trigger::Always,
        Some(t) => parse_trigger(t).map_err(|reason| err(&reason))?,
    };
    Ok(FaultSpec {
        name: name.to_string(),
        action,
        trigger,
    })
}

fn parse_action(s: &str) -> Result<Action, String> {
    if s == "err" {
        return Ok(Action::Err);
    }
    if let Some(errno) = s.strip_prefix("err:") {
        return match errno {
            "enospc" => Ok(Action::ErrNo(Errno::Enospc)),
            "eio" => Ok(Action::ErrNo(Errno::Eio)),
            other => Err(format!(
                "unknown errno {other:?} (want err:enospc or err:eio)"
            )),
        };
    }
    if s == "panic" {
        return Ok(Action::Panic);
    }
    if let Some(ms) = s.strip_prefix("delay") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad delay milliseconds {ms:?} (want delay<ms>)"))?;
        return Ok(Action::Delay(ms));
    }
    Err(format!(
        "unknown action {s:?} (want err, err:<errno>, delay<ms>, or panic)"
    ))
}

fn parse_trigger(s: &str) -> Result<Trigger, String> {
    if let Some(k) = s.strip_prefix("every") {
        let k: u64 = k
            .parse()
            .map_err(|_| format!("bad every-k count {k:?} (want every<k>)"))?;
        if k == 0 {
            return Err("every-k count must be >= 1".to_string());
        }
        return Ok(Trigger::EveryK(k));
    }
    if let Some(rest) = s.strip_prefix('p') {
        let (pct, seed) = rest
            .split_once('s')
            .ok_or_else(|| format!("bad probability trigger {s:?} (want p<pct>s<seed>)"))?;
        let pct: u8 = pct
            .parse()
            .map_err(|_| format!("bad probability percent {pct:?}"))?;
        if pct > 100 {
            return Err(format!("probability percent {pct} out of range 0..=100"));
        }
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("bad probability seed {seed:?}"))?;
        return Ok(Trigger::Prob { pct, seed });
    }
    let (start_str, count_str) = match s.split_once('+') {
        Some((a, b)) => (a, Some(b)),
        None => (s, None),
    };
    let start: u64 = start_str.parse().map_err(|_| {
        format!("unknown trigger {s:?} (want <n>, <n>+<count>, every<k>, or p<pct>s<seed>)")
    })?;
    if start == 0 {
        return Err("nth-hit trigger is 1-based; hit 0 never occurs".to_string());
    }
    let count = match count_str {
        None => 1,
        Some(c) => {
            let count: u64 = c
                .parse()
                .map_err(|_| format!("bad window count {c:?} (want <n>+<count>)"))?;
            if count == 0 {
                return Err("window count must be >= 1".to_string());
            }
            count
        }
    };
    Ok(Trigger::Nth { start, count })
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer used to
/// derive the per-hit coin flip for probability triggers.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn lock_registry() -> std::sync::MutexGuard<'static, Option<Registry>> {
    // A panic action fired while holding this lock would poison it;
    // the map itself is always left consistent, so keep going.
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan` process-wide, replacing any previous plan and
/// resetting all hit counters. An empty plan disarms everything
/// (equivalent to [`clear`]).
pub fn install(plan: FaultPlan) {
    let mut guard = lock_registry();
    if plan.specs.is_empty() {
        *guard = None;
        // ORDERING: relaxed — see the `ARMED` declaration; the registry
        // update above is what sites observe, under the mutex.
        ARMED.store(false, Ordering::Relaxed);
        return;
    }
    let mut points = HashMap::new();
    for spec in &plan.specs {
        points.insert(
            spec.name.clone(),
            PointState {
                spec: spec.clone(),
                hits: 0,
                fires: 0,
            },
        );
    }
    *guard = Some(Registry { plan, points });
    // ORDERING: relaxed — the registry is published under the mutex;
    // `ARMED` is only the advisory fast-path gate (see its declaration).
    ARMED.store(true, Ordering::Relaxed);
}

/// Parses and installs a plan string (the `--faults` flag).
pub fn install_str(s: &str) -> Result<FaultPlan, PlanError> {
    let plan: FaultPlan = s.parse()?;
    install(plan.clone());
    Ok(plan)
}

/// Reads `CCP_FAULTS` and installs it if set and non-empty. Returns
/// the installed plan, `None` when the variable is unset or empty.
pub fn install_from_env() -> Result<Option<FaultPlan>, PlanError> {
    match std::env::var("CCP_FAULTS") {
        Ok(s) if !s.trim().is_empty() => install_str(&s).map(Some),
        _ => Ok(None),
    }
}

/// Disarms every failpoint and drops the installed plan.
pub fn clear() {
    let mut guard = lock_registry();
    *guard = None;
    // ORDERING: relaxed — advisory gate; see the `ARMED` declaration.
    ARMED.store(false, Ordering::Relaxed);
}

/// Whether any plan is installed. Cheap (one relaxed load).
pub fn armed() -> bool {
    // ORDERING: relaxed — advisory gate; see the `ARMED` declaration.
    ARMED.load(Ordering::Relaxed)
}

/// The `Display` form of the installed plan, if any.
pub fn active_plan() -> Option<String> {
    let guard = lock_registry();
    guard.as_ref().map(|r| r.plan.to_string())
}

/// How a fired failpoint wants its site to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Failure {
    /// Bare `err`: the site fabricates whatever typed error fits.
    Generic,
    /// `err:<errno>`: the site should fabricate this specific OS error.
    Errno(Errno),
}

/// Evaluates the named failpoint.
///
/// Returns `true` when the site should fail (an `err` or `err:<errno>`
/// action fired); the site fabricates its own typed error. A `delay`
/// action sleeps here and returns `false`; a `panic` action panics
/// here. When no plan is installed this is one relaxed load and a
/// branch — no lock, no counter update. Sites that distinguish
/// exhaustion from generic I/O failure use [`check`] instead.
pub fn should_fail(name: &str) -> bool {
    check(name).is_some()
}

/// Evaluates the named failpoint, reporting *how* to fail.
///
/// `None` means proceed (disarmed, trigger not matched, or a `delay`
/// action that already slept here). `Some(Failure::Generic)` is a bare
/// `err`; `Some(Failure::Errno(e))` is a typed `err:<errno>` whose
/// message/code the site should put in its fabricated error. A `panic`
/// action panics here. Same disarmed fast path as [`should_fail`].
pub fn check(name: &str) -> Option<Failure> {
    // ORDERING: relaxed — this load is the whole disarmed fast path; a
    // stale read delays (dis)arming by a few hits, by design (see the
    // `ARMED` declaration).
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(name)
}

#[inline(never)]
fn check_slow(name: &str) -> Option<Failure> {
    let action = {
        let mut guard = lock_registry();
        let reg = guard.as_mut()?;
        let point = reg.points.get_mut(name)?;
        point.hits += 1;
        if !point.spec.trigger.fires(point.hits) {
            return None;
        }
        point.fires += 1;
        point.spec.action.clone()
    };
    match action {
        Action::Err => Some(Failure::Generic),
        Action::ErrNo(e) => Some(Failure::Errno(e)),
        Action::Delay(ms) => {
            thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Panic => panic!("ccp-fault: failpoint {name:?} fired panic action"),
    }
}

/// Hit/fire counters for one armed failpoint (for tests and `/stats`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointStatus {
    pub name: String,
    pub hits: u64,
    pub fires: u64,
}

/// Counters for every armed failpoint, sorted by name. Empty when
/// disarmed.
pub fn snapshot() -> Vec<PointStatus> {
    let guard = lock_registry();
    let mut out: Vec<PointStatus> = match guard.as_ref() {
        None => Vec::new(),
        Some(reg) => reg
            .points
            .iter()
            .map(|(name, p)| PointStatus {
                name: name.clone(),
                hits: p.hits,
                fires: p.fires,
            })
            .collect(),
    };
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-global registry: tests that install plans serialize on
    /// this so `cargo test`'s parallel threads don't fight over it.
    static TEST_GATE: Mutex<()> = Mutex::new(());

    fn with_plan<R>(plan: &str, f: impl FnOnce() -> R) -> R {
        let _gate = TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        install_str(plan).expect("test plan parses");
        let out = f();
        clear();
        out
    }

    #[test]
    fn parse_issue_example() {
        let plan: FaultPlan = "resctrl.write_schemata=err@3".parse().expect("parses");
        assert_eq!(
            plan.specs,
            vec![FaultSpec {
                name: "resctrl.write_schemata".to_string(),
                action: Action::Err,
                trigger: Trigger::Nth { start: 3, count: 1 },
            }]
        );
        assert_eq!(plan.to_string(), "resctrl.write_schemata=err@3");
    }

    #[test]
    fn parse_all_forms_round_trip() {
        let s = "a=err@1+40,b.c=delay10@every2,d_e=panic@p25s42,f-g=err,\
                 h=err:enospc@1+20,i=err:eio@every3";
        let s = s.replace(char::is_whitespace, "");
        let plan: FaultPlan = s.parse().expect("parses");
        assert_eq!(plan.to_string(), s);
        assert_eq!(plan.specs.len(), 6);
        assert_eq!(plan.specs[3].trigger, Trigger::Always);
        assert_eq!(plan.specs[4].action, Action::ErrNo(Errno::Enospc));
        assert_eq!(plan.specs[5].action, Action::ErrNo(Errno::Eio));
    }

    #[test]
    fn typed_errno_actions_surface_through_check() {
        with_plan("t.space=err:enospc@2,t.io=err:eio", || {
            assert_eq!(check("t.space"), None);
            assert_eq!(check("t.space"), Some(Failure::Errno(Errno::Enospc)));
            assert_eq!(check("t.io"), Some(Failure::Errno(Errno::Eio)));
            assert_eq!(Errno::Enospc.message(), "No space left on device");
            assert_eq!(Errno::Eio.code(), 5);
        });
        // A bare `err` through the richer API is a generic failure, and
        // `should_fail` keeps treating typed errnos as plain failures.
        with_plan("t.plain=err,t.typed=err:eio", || {
            assert_eq!(check("t.plain"), Some(Failure::Generic));
            assert!(should_fail("t.typed"));
        });
    }

    #[test]
    fn unknown_errno_is_rejected() {
        let e = "x=err:ebusy".parse::<FaultPlan>().expect_err("bad errno");
        assert!(e.reason.contains("unknown errno"), "{e}");
    }

    #[test]
    fn malformed_clause_named_in_error() {
        let e = "ok=err,bogus~name=err@3"
            .parse::<FaultPlan>()
            .expect_err("must fail");
        assert_eq!(e.clause, "bogus~name=err@3");
        assert!(e.to_string().contains("bogus~name=err@3"), "{e}");

        let e = "x=err@p200s1".parse::<FaultPlan>().expect_err("pct range");
        assert!(e.reason.contains("out of range"), "{e}");
        let e = "x=zap@3".parse::<FaultPlan>().expect_err("bad action");
        assert!(e.reason.contains("unknown action"), "{e}");
        let e = "x=err@0".parse::<FaultPlan>().expect_err("hit 0");
        assert!(e.reason.contains("1-based"), "{e}");
        let e = "noequals".parse::<FaultPlan>().expect_err("no =");
        assert_eq!(e.clause, "noequals");
    }

    #[test]
    fn empty_and_whitespace_plans_are_empty() {
        assert!("".parse::<FaultPlan>().expect("ok").specs.is_empty());
        assert!(" , ,".parse::<FaultPlan>().expect("ok").specs.is_empty());
    }

    #[test]
    fn nth_window_fires_exactly() {
        with_plan("t.window=err@3+2", || {
            let fired: Vec<bool> = (0..6).map(|_| should_fail("t.window")).collect();
            assert_eq!(fired, vec![false, false, true, true, false, false]);
        });
    }

    #[test]
    fn every_k_fires_periodically() {
        with_plan("t.every=err@every3", || {
            let fired: Vec<bool> = (0..9).map(|_| should_fail("t.every")).collect();
            assert_eq!(
                fired,
                vec![false, false, true, false, false, true, false, false, true]
            );
        });
    }

    #[test]
    fn probability_is_deterministic_and_roughly_calibrated() {
        let sample = |plan: &str| -> Vec<bool> {
            with_plan(plan, || (0..200).map(|_| should_fail("t.prob")).collect())
        };
        let a = sample("t.prob=err@p30s7");
        let b = sample("t.prob=err@p30s7");
        assert_eq!(a, b, "same seed must replay identically");
        let fires = a.iter().filter(|&&f| f).count();
        assert!((20..=100).contains(&fires), "30% of 200 ~ 60, got {fires}");
        let c = sample("t.prob=err@p30s8");
        assert_ne!(a, c, "different seed should differ");
    }

    #[test]
    fn delay_sleeps_then_proceeds() {
        with_plan("t.delay=delay30@1", || {
            let t0 = std::time::Instant::now();
            assert!(!should_fail("t.delay"));
            assert!(t0.elapsed() >= Duration::from_millis(25));
            let t1 = std::time::Instant::now();
            assert!(!should_fail("t.delay"));
            assert!(
                t1.elapsed() < Duration::from_millis(25),
                "only hit 1 delays"
            );
        });
    }

    #[test]
    fn panic_action_panics_with_name() {
        with_plan("t.boom=panic@1", || {
            let result = std::panic::catch_unwind(|| should_fail("t.boom"));
            let msg = *result
                .expect_err("must panic")
                .downcast::<String>()
                .expect("string payload");
            assert!(msg.contains("t.boom"), "{msg}");
        });
    }

    #[test]
    fn disarmed_point_counts_nothing() {
        let _gate = TEST_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        assert!(!armed());
        // Hitting a point with no plan installed must not fail, must not
        // arm anything, and must not materialize registry state — the
        // observable half of the "branch-only when disarmed" contract.
        for _ in 0..1000 {
            assert!(!should_fail("t.cold"));
        }
        assert!(snapshot().is_empty());
        assert_eq!(active_plan(), None);
    }

    #[test]
    fn unknown_point_under_armed_plan_is_ignored() {
        with_plan("t.known=err", || {
            assert!(!should_fail("t.unknown"));
            assert!(should_fail("t.known"));
            let snap = snapshot();
            assert_eq!(snap.len(), 1);
            assert_eq!(snap[0].name, "t.known");
            assert_eq!(snap[0].hits, 1);
            assert_eq!(snap[0].fires, 1);
        });
    }

    #[test]
    fn install_resets_counters() {
        with_plan("t.reset=err", || {
            assert!(should_fail("t.reset"));
            install_str("t.reset=err@2").expect("parses");
            assert!(!should_fail("t.reset"), "counter restarted at hit 1");
            assert!(should_fail("t.reset"));
        });
    }
}
