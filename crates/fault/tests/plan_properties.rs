//! Property tests for the fault-plan grammar: every plan the library
//! can represent must survive a `Display` → `FromStr` round trip
//! unchanged, and malformed clauses must be rejected with an error that
//! names the offending clause verbatim.

use ccp_fault::{Action, Errno, FaultPlan, FaultSpec, Trigger};
use proptest::prelude::*;

/// Every character the grammar allows in a failpoint name.
const NAME_ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";

/// Valid failpoint names, built by mapping index vectors into the
/// grammar's alphabet (the vendored proptest has no string strategies).
fn name_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..NAME_ALPHABET.len(), 1..16)
        .prop_map(|ix| ix.iter().map(|&i| NAME_ALPHABET[i] as char).collect())
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        Just(Action::Err),
        Just(Action::ErrNo(Errno::Enospc)),
        Just(Action::ErrNo(Errno::Eio)),
        (0u64..100_000).prop_map(Action::Delay),
        Just(Action::Panic),
    ]
}

fn trigger_strategy() -> impl Strategy<Value = Trigger> {
    prop_oneof![
        (1u64..10_000).prop_map(|start| Trigger::Nth { start, count: 1 }),
        ((1u64..10_000), (1u64..1_000)).prop_map(|(start, count)| Trigger::Nth { start, count }),
        (1u64..10_000).prop_map(Trigger::EveryK),
        ((0u32..=100), (0u64..u64::MAX)).prop_map(|(pct, seed)| Trigger::Prob {
            pct: pct as u8,
            seed,
        }),
        Just(Trigger::Always),
    ]
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    proptest::collection::vec(
        (name_strategy(), action_strategy(), trigger_strategy()).prop_map(
            |(name, action, trigger)| FaultSpec {
                name,
                action,
                trigger,
            },
        ),
        0..6,
    )
    .prop_map(|specs| FaultPlan { specs })
}

proptest! {
    /// `Display` → `FromStr` is the identity on every representable plan.
    #[test]
    fn display_parse_round_trips(plan in plan_strategy()) {
        let rendered = plan.to_string();
        let reparsed: FaultPlan = rendered
            .parse()
            .unwrap_or_else(|e| panic!("rendered plan {rendered:?} failed to parse: {e}"));
        prop_assert_eq!(reparsed, plan);
    }

    /// A garbage clause appended to any valid plan fails the whole
    /// parse, and the error's message quotes that clause verbatim.
    #[test]
    fn malformed_tail_clause_is_named_in_error(
        plan in plan_strategy(),
        junk in proptest::collection::vec(0usize..NAME_ALPHABET.len(), 1..10),
    ) {
        // A bare name with no '=' can never be a valid clause.
        let bad: String = junk.iter().map(|&i| NAME_ALPHABET[i] as char).collect();
        let mut s = plan.to_string();
        if !s.is_empty() {
            s.push(',');
        }
        s.push_str(&bad);
        let err = s.parse::<FaultPlan>().expect_err("clause without '=' must fail");
        prop_assert_eq!(&err.clause, &bad);
        prop_assert!(
            err.to_string().contains(&format!("{bad:?}")),
            "error {:?} does not quote the offending clause {:?}",
            err.to_string(),
            bad
        );
    }

    /// Nonsense triggers are rejected, never mis-parsed: `@` followed by
    /// anything that is not a number, window, every-k, or probability.
    #[test]
    fn unknown_trigger_is_rejected(start in 1u64..1000) {
        let s = format!("a=err@x{start}");
        prop_assert!(s.parse::<FaultPlan>().is_err());
    }
}
