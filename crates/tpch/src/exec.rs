//! Native execution of representative TPC-H queries over the sample
//! tables — the end-to-end demonstration that the engine's operators
//! compose into real queries (the simulated Figure 11 harness uses the
//! profile models in [`crate::queries`] instead).
//!
//! Implemented natively: **Q1** (pricing summary — the paper's flagship
//! cache-sensitive TPC-H query) and **Q6** (forecasting revenue change —
//! the scan-dominated one).

use crate::gen;
use ccp_engine::job::{CacheUsageClass, Job};
use ccp_engine::JobExecutor;
use ccp_storage::{AggHashTable, Aggregate, Column, Table};
use parking_lot::Mutex;
use std::ops::Bound;
use std::sync::Arc;

/// One result row of the native Q1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Q1Row {
    /// `L_RETURNFLAG` value.
    pub returnflag: i64,
    /// `L_LINESTATUS` value.
    pub linestatus: i64,
    /// `SUM(L_EXTENDEDPRICE)`.
    pub sum_extendedprice: i64,
    /// `COUNT(*)`.
    pub count: u64,
}

fn int_column<'t>(t: &'t Table, name: &str) -> &'t ccp_storage::DictColumn<i64> {
    match t.column(name) {
        Some(Column::Int(c)) => c,
        _ => panic!("lineitem sample always has integer column {name:?}"),
    }
}

/// Native TPC-H Q1 (simplified to the columns the sample carries):
/// `SELECT l_returnflag, l_linestatus, SUM(l_extendedprice), COUNT(*)
///  FROM lineitem GROUP BY l_returnflag, l_linestatus`.
///
/// Runs as cache-sensitive jobs (the paper's class *ii*): each chunk
/// pre-aggregates into a thread-local table keyed by the combined
/// `(returnflag, linestatus)` code, then the tables merge. Results are
/// sorted by `(returnflag, linestatus)`.
pub fn q1_pricing_summary(ex: &JobExecutor, lineitem: &Arc<Table>) -> Vec<Q1Row> {
    let n = lineitem.row_count();
    let status_card = int_column(lineitem, "L_LINESTATUS").dict().len() as u32;
    let locals: Arc<Mutex<Vec<AggHashTable>>> = Arc::new(Mutex::new(Vec::new()));
    const CHUNK: usize = 32 * 1024;
    let chunks = n.div_ceil(CHUNK).max(1);
    let mut jobs = Vec::with_capacity(chunks);
    for c in 0..chunks {
        let lo = c * CHUNK;
        let hi = ((c + 1) * CHUNK).min(n);
        if lo >= hi {
            break;
        }
        let t = lineitem.clone();
        let locals = locals.clone();
        jobs.push(Job::new(
            format!("q1[{c}]"),
            CacheUsageClass::Sensitive,
            move || {
                let flag = int_column(&t, "L_RETURNFLAG");
                let status = int_column(&t, "L_LINESTATUS");
                let price = int_column(&t, "L_EXTENDEDPRICE");
                let mut local = AggHashTable::new(Aggregate::Sum, 8);
                for row in lo..hi {
                    let key = flag.code_at(row) * status_card + status.code_at(row);
                    // Decode through the (29 MiB at SF 100) price dictionary —
                    // the access pattern that makes Q1 cache-sensitive.
                    local.update(key, *price.dict().decode(price.code_at(row)));
                }
                locals.lock().push(local);
            },
        ));
    }
    ex.run_batch(jobs);

    let mut global = AggHashTable::new(Aggregate::Sum, 8);
    for local in locals.lock().iter() {
        global.merge(local);
    }
    let flag_dict = int_column(lineitem, "L_RETURNFLAG").dict();
    let status_dict = int_column(lineitem, "L_LINESTATUS").dict();
    let mut rows: Vec<Q1Row> = global
        .iter()
        .map(|(key, sum, count)| Q1Row {
            returnflag: *flag_dict.decode(key / status_card),
            linestatus: *status_dict.decode(key % status_card),
            sum_extendedprice: sum,
            count,
        })
        .collect();
    rows.sort_by_key(|r| (r.returnflag, r.linestatus));
    rows
}

/// Native TPC-H Q6 (adapted to integer columns):
/// `SELECT SUM(l_extendedprice * l_discount) FROM lineitem
///  WHERE l_quantity < max_quantity AND l_discount BETWEEN lo AND hi`.
///
/// The quantity predicate runs on compressed codes (the scan kernel); only
/// qualifying rows decode price and discount. Runs as polluting jobs — Q6
/// is the scan-dominated query.
pub fn q6_forecast_revenue(
    ex: &JobExecutor,
    lineitem: &Arc<Table>,
    max_quantity: i64,
    discount: std::ops::RangeInclusive<i64>,
) -> i64 {
    let n = lineitem.row_count();
    let qty_range = int_column(lineitem, "L_QUANTITY")
        .dict()
        .code_range(Bound::Unbounded, Bound::Excluded(&max_quantity));
    let disc_range = int_column(lineitem, "L_DISCOUNT").dict().code_range(
        Bound::Included(discount.start()),
        Bound::Included(discount.end()),
    );
    const CHUNK: usize = 32 * 1024;
    let chunks = n.div_ceil(CHUNK).max(1);
    let t = lineitem.clone();
    ex.parallel_sum("q6", CacheUsageClass::Polluting, n, chunks, move |rows| {
        let qty = int_column(&t, "L_QUANTITY");
        let disc = int_column(&t, "L_DISCOUNT");
        let price = int_column(&t, "L_EXTENDEDPRICE");
        let mut revenue = 0i64;
        for row in rows {
            let qc = qty.code_at(row);
            if !(qty_range.start <= qc && qc < qty_range.end) {
                continue;
            }
            let dc = disc.code_at(row);
            if !(disc_range.start <= dc && dc < disc_range.end) {
                continue;
            }
            revenue += *price.dict().decode(price.code_at(row)) * *disc.dict().decode(dc);
        }
        revenue as u64
    }) as i64
}

/// Builds the sample database (`lineitem` + `orders`) used by the native
/// queries and examples.
pub fn sample_database(lineitem_rows: usize, orders: usize, seed: u64) -> (Arc<Table>, Arc<Table>) {
    (
        Arc::new(gen::lineitem_sample(lineitem_rows, orders, seed)),
        Arc::new(gen::orders_sample(orders, seed ^ 0xbeef)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccp_cachesim::HierarchyConfig;
    use ccp_engine::alloc::{NoopAllocator, RecordingAllocator};
    use ccp_engine::partition::PartitionPolicy;

    fn executor(alloc: Arc<dyn ccp_engine::alloc::CacheAllocator>) -> JobExecutor {
        let cfg = HierarchyConfig::broadwell_e5_2699_v4();
        JobExecutor::new(
            4,
            PartitionPolicy::paper_default(cfg.llc, cfg.l2.size_bytes),
            alloc,
        )
    }

    #[test]
    fn q1_matches_naive_reference() {
        let (lineitem, _) = sample_database(60_000, 5_000, 99);
        let ex = executor(Arc::new(NoopAllocator));
        let rows = q1_pricing_summary(&ex, &lineitem);
        // 3 flags x 2 statuses = 6 groups on any non-trivial sample.
        assert_eq!(rows.len(), 6);

        // Naive reference over decoded values.
        let flag = int_column(&lineitem, "L_RETURNFLAG");
        let status = int_column(&lineitem, "L_LINESTATUS");
        let price = int_column(&lineitem, "L_EXTENDEDPRICE");
        let mut naive = std::collections::BTreeMap::<(i64, i64), (i64, u64)>::new();
        for row in 0..lineitem.row_count() {
            let e = naive
                .entry((*flag.value_at(row), *status.value_at(row)))
                .or_insert((0, 0));
            e.0 += *price.value_at(row);
            e.1 += 1;
        }
        for r in &rows {
            let &(sum, count) = naive
                .get(&(r.returnflag, r.linestatus))
                .expect("group exists");
            assert_eq!((r.sum_extendedprice, r.count), (sum, count));
        }
        let total: u64 = rows.iter().map(|r| r.count).sum();
        assert_eq!(total, 60_000);
    }

    #[test]
    fn q6_matches_naive_reference() {
        let (lineitem, _) = sample_database(40_000, 3_000, 7);
        let ex = executor(Arc::new(NoopAllocator));
        let revenue = q6_forecast_revenue(&ex, &lineitem, 24, 5..=7);

        let qty = int_column(&lineitem, "L_QUANTITY");
        let disc = int_column(&lineitem, "L_DISCOUNT");
        let price = int_column(&lineitem, "L_EXTENDEDPRICE");
        let mut naive = 0i64;
        for row in 0..lineitem.row_count() {
            let q = *qty.value_at(row);
            let d = *disc.value_at(row);
            if q < 24 && (5..=7).contains(&d) {
                naive += *price.value_at(row) * d;
            }
        }
        assert_eq!(revenue, naive);
        assert!(revenue > 0);
    }

    #[test]
    fn q1_runs_sensitive_and_q6_runs_polluting() {
        let (lineitem, _) = sample_database(10_000, 1_000, 1);
        let rec = Arc::new(RecordingAllocator::new());
        let ex = executor(rec.clone());
        q1_pricing_summary(&ex, &lineitem);
        assert!(rec.calls().iter().all(|(_, m)| m.bits() == 0xfffff));
        q6_forecast_revenue(&ex, &lineitem, 24, 5..=7);
        assert!(rec.calls().iter().any(|(_, m)| m.bits() == 0x3));
    }

    #[test]
    fn empty_selectivity_yields_zero_revenue() {
        let (lineitem, _) = sample_database(1_000, 100, 2);
        let ex = executor(Arc::new(NoopAllocator));
        // No discount above 10 exists.
        assert_eq!(q6_forecast_revenue(&ex, &lineitem, 24, 11..=15), 0);
        // No quantity below 1 exists.
        assert_eq!(q6_forecast_revenue(&ex, &lineitem, 1, 5..=7), 0);
    }
}
