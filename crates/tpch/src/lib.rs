//! # ccp-tpch
//!
//! TPC-H at scale factor 100, modeled for cache-behaviour reproduction
//! (paper Section VI-D / Figure 11).
//!
//! A full SQL engine is out of scope for this reproduction; what Figure 11
//! needs is each TPC-H query's *cache and bandwidth footprint*: how many
//! bytes it streams, which dictionaries it decompresses (and their sizes),
//! how many groups its aggregations produce, and how large the bit vectors
//! of its foreign-key joins are. All of that is derivable from the TPC-H
//! specification's data distributions at SF 100 and is encoded here:
//!
//! * [`schema`] — table row counts and per-column NDV/dictionary-size
//!   model at SF 100 (the paper itself confirms the key number: the
//!   `L_EXTENDEDPRICE` dictionary is ≈ 29 MiB).
//! * [`queries`] — the 22 queries expressed as phase sequences (scan /
//!   join / aggregate) over the engine's operator twins, with a short
//!   per-query rationale.
//! * [`gen`] — a miniature native TPC-H-like data generator for examples
//!   and tests of the native operators.

pub mod exec;
pub mod gen;
pub mod queries;
pub mod schema;

pub use exec::{q1_pricing_summary, q6_forecast_revenue, sample_database, Q1Row};
pub use queries::{build_query, query_ids, QueryProfile};
