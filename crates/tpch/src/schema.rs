//! TPC-H SF 100 size model.
//!
//! Row counts follow the TPC-H specification (`SF × base cardinality`);
//! dictionary sizes use the reproduction's 8-bytes-per-entry integer
//! dictionary model over the column's number of distinct values (NDV).
//! NDVs come from the spec's value ranges (e.g. `L_QUANTITY ∈ 1..=50`,
//! prices are `retailprice`-derived with ≈ 3.7 M distinct values at any
//! scale — which yields the ≈ 29 MiB `L_EXTENDEDPRICE` dictionary the
//! paper reports).

/// Scale factor of the modeled database (the paper uses SF 100).
pub const SCALE_FACTOR: u64 = 100;

/// Rows per table at SF 100.
pub mod rows {
    /// `lineitem`: 6,000,000 × SF.
    pub const LINEITEM: u64 = 600_000_000;
    /// `orders`: 1,500,000 × SF.
    pub const ORDERS: u64 = 150_000_000;
    /// `partsupp`: 800,000 × SF.
    pub const PARTSUPP: u64 = 80_000_000;
    /// `part`: 200,000 × SF.
    pub const PART: u64 = 20_000_000;
    /// `customer`: 150,000 × SF.
    pub const CUSTOMER: u64 = 15_000_000;
    /// `supplier`: 10,000 × SF.
    pub const SUPPLIER: u64 = 1_000_000;
    /// `nation`: fixed 25.
    pub const NATION: u64 = 25;
    /// `region`: fixed 5.
    pub const REGION: u64 = 5;
}

/// Dictionary sizes (bytes) of the columns the 22 queries decompress.
pub mod dict {
    /// `L_EXTENDEDPRICE`: ≈ 3.8 M distinct price values → ≈ 29 MiB — the
    /// number the paper quotes for why TPC-H Q1 benefits from partitioning.
    pub const L_EXTENDEDPRICE: u64 = 29 << 20;
    /// `L_QUANTITY`: 50 distinct values.
    pub const L_QUANTITY: u64 = 50 * 8;
    /// `L_DISCOUNT`: 11 distinct values.
    pub const L_DISCOUNT: u64 = 11 * 8;
    /// `L_TAX`: 9 distinct values.
    pub const L_TAX: u64 = 9 * 8;
    /// Date columns: ≈ 2,526 distinct days.
    pub const DATES: u64 = 2_526 * 8;
    /// `PS_SUPPLYCOST`: ≈ 100 k distinct values.
    pub const PS_SUPPLYCOST: u64 = 100_000 * 8;
    /// `C_ACCTBAL`: ≈ 1.1 M distinct values → ≈ 9 MB.
    pub const C_ACCTBAL: u64 = 1_100_000 * 8;
    /// `O_TOTALPRICE`: nearly unique per order → ≈ 800 MB, never worth
    /// caching.
    pub const O_TOTALPRICE: u64 = 100_000_000 * 8;
    /// Small enumerated string columns (flags, priorities, modes, ...).
    pub const TINY: u64 = 64 * 8;
}

/// Bit-vector bytes for a foreign-key join whose build side has `keys`
/// distinct keys (one bit per key in the dense key range).
pub fn join_bitvec_bytes(keys: u64) -> u64 {
    keys.div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_scale_from_spec() {
        assert_eq!(rows::LINEITEM, 6_000_000 * SCALE_FACTOR);
        assert_eq!(rows::ORDERS, 1_500_000 * SCALE_FACTOR);
        assert_eq!(rows::SUPPLIER, 10_000 * SCALE_FACTOR);
        assert_eq!(rows::NATION, 25);
    }

    #[test]
    fn extendedprice_dictionary_matches_paper() {
        // The paper (Section VI-D): "the column L_EXTENDEDPRICE with a
        // dictionary size of approximately 29 MiB".
        assert_eq!(dict::L_EXTENDEDPRICE, 30_408_704);
    }

    #[test]
    fn join_bitvec_sizes() {
        // orders: 150 M keys -> 18.75 MB, LLC-comparable.
        assert_eq!(join_bitvec_bytes(rows::ORDERS), 18_750_000);
        // supplier: 1 M keys -> 125 KB, L2-resident.
        assert_eq!(join_bitvec_bytes(rows::SUPPLIER), 125_000);
        // part: 20 M keys -> 2.5 MB.
        assert_eq!(join_bitvec_bytes(rows::PART), 2_500_000);
    }
}
