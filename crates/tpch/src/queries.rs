//! The 22 TPC-H queries as cache-footprint profiles.
//!
//! Each query is a sequence of phases over the engine's operator twins:
//! sequential scans, bit-vector foreign-key joins, and hash aggregations
//! with their dominant decompressed dictionary. Cardinalities follow the
//! TPC-H specification at SF 100; where a parameter is ambiguous (e.g. how
//! many rows survive a filter before the aggregation), we pick the value
//! the specification's selectivities imply, so that the resulting
//! sensitivity classes match the paper's observation: queries touching the
//! ≈ 29 MiB `L_EXTENDEDPRICE` dictionary over many rows (Q1, Q7, Q8, Q9)
//! are cache-sensitive, queries with tiny or hopelessly oversized working
//! sets are not.
//!
//! Row counts are scaled by [`ROW_SCALE`] at build time (see
//! `ccp_engine::sim` for why scaling row counts — but never structure
//! sizes — preserves the normalized-throughput curves).

use crate::schema::{dict, rows};
use ccp_cachesim::AddrSpace;
use ccp_engine::sim::{AggregationSim, ColumnScanSim, CompositeSim, FkJoinSim, Phase, SimOperator};

/// Row-count scale-down applied when building operators (sizes stay real).
pub const ROW_SCALE: u64 = 1_000;

/// One phase of a query profile, in full SF 100 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseSpec {
    /// Sequential scan of `rows` rows at `bytes_per_row` packed bytes.
    Scan {
        /// Rows scanned.
        rows: u64,
        /// Packed bytes per row (all scanned columns combined).
        bytes_per_row: u64,
    },
    /// Bit-vector foreign-key join: build over `build_keys` keys, probe
    /// with `probe_rows` rows.
    Join {
        /// Distinct keys on the build side (bit vector = keys/8 bytes).
        build_keys: u64,
        /// Probe-side rows.
        probe_rows: u64,
    },
    /// Hash aggregation of `rows` input rows, decompressing through a
    /// dictionary of `dict_bytes`, producing `groups` groups.
    Aggregate {
        /// Input rows.
        rows: u64,
        /// Dominant decompressed dictionary size in bytes.
        dict_bytes: u64,
        /// Result group count.
        groups: u64,
    },
}

/// A TPC-H query's cache profile.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Query number, 1–22.
    pub id: u8,
    /// Short TPC-H name.
    pub name: &'static str,
    /// One-line cache-behaviour rationale.
    pub rationale: &'static str,
    /// Phase sequence.
    pub phases: Vec<PhaseSpec>,
}

/// All query ids.
pub fn query_ids() -> impl Iterator<Item = u8> {
    1..=22
}

/// The profile of query `id`.
///
/// # Panics
/// Panics when `id` is not in `1..=22`.
pub fn profile(id: u8) -> QueryProfile {
    use PhaseSpec::*;
    let (name, rationale, phases): (&'static str, &'static str, Vec<PhaseSpec>) = match id {
        1 => (
            "pricing summary report",
            "aggregates nearly all of lineitem through the 29 MiB L_EXTENDEDPRICE \
             dictionary into 4 groups: the paper's flagship cache-sensitive query",
            vec![Aggregate {
                rows: 590_000_000,
                dict_bytes: dict::L_EXTENDEDPRICE,
                groups: 4,
            }],
        ),
        2 => (
            "minimum cost supplier",
            "small tables and a 0.8 MB supplycost dictionary: nothing LLC-sized",
            vec![
                Scan {
                    rows: rows::PART,
                    bytes_per_row: 8,
                },
                Join {
                    build_keys: rows::SUPPLIER,
                    probe_rows: rows::PARTSUPP,
                },
                Aggregate {
                    rows: 320_000,
                    dict_bytes: dict::PS_SUPPLYCOST,
                    groups: 460,
                },
            ],
        ),
        3 => (
            "shipping priority",
            "revenue per order: ~3M groups make the hash table far larger than \
             the LLC, so the query is bandwidth- rather than LLC-bound",
            vec![
                Join {
                    build_keys: rows::CUSTOMER,
                    probe_rows: rows::ORDERS,
                },
                Join {
                    build_keys: rows::ORDERS,
                    probe_rows: rows::LINEITEM,
                },
                Aggregate {
                    rows: 30_000_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 3_000_000,
                },
            ],
        ),
        4 => (
            "order priority checking",
            "semi-join plus a 5-group count: tiny working set",
            vec![
                Join {
                    build_keys: rows::ORDERS,
                    probe_rows: rows::LINEITEM,
                },
                Aggregate {
                    rows: 5_000_000,
                    dict_bytes: dict::TINY,
                    groups: 5,
                },
            ],
        ),
        5 => (
            "local supplier volume",
            "join-heavy; the revenue aggregation touches L_EXTENDEDPRICE but over \
             a filtered ~2.8% of lineitem, diluting its cache sensitivity",
            vec![
                Join {
                    build_keys: rows::CUSTOMER,
                    probe_rows: rows::ORDERS,
                },
                Join {
                    build_keys: rows::ORDERS,
                    probe_rows: rows::LINEITEM,
                },
                Join {
                    build_keys: rows::SUPPLIER,
                    probe_rows: 90_000_000,
                },
                Aggregate {
                    rows: 17_000_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 25,
                },
            ],
        ),
        6 => (
            "forecasting revenue change",
            "a pure predicate scan; only ~1.9% of rows reach the revenue sum",
            vec![
                Scan {
                    rows: rows::LINEITEM,
                    bytes_per_row: 12,
                },
                Aggregate {
                    rows: 11_000_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 1,
                },
            ],
        ),
        7 => (
            "volume shipping",
            "two-nation filter keeps ~60M lineitem rows flowing through the \
             29 MiB price dictionary into 4 groups: cache-sensitive (paper: improves)",
            vec![
                Join {
                    build_keys: rows::SUPPLIER,
                    probe_rows: rows::LINEITEM,
                },
                Join {
                    build_keys: rows::ORDERS,
                    probe_rows: 120_000_000,
                },
                Aggregate {
                    rows: 60_000_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 4,
                },
            ],
        ),
        8 => (
            "national market share",
            "volume over two order years (~180M lineitem rows joined, ~45M \
             aggregated through the price dictionary): cache-sensitive (paper: improves)",
            vec![
                Join {
                    build_keys: rows::PART,
                    probe_rows: rows::LINEITEM,
                },
                Join {
                    build_keys: rows::ORDERS,
                    probe_rows: 180_000_000,
                },
                Aggregate {
                    rows: 45_000_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 14,
                },
            ],
        ),
        9 => (
            "product type profit measure",
            "~5% part filter leaves ~30M amount computations, each decoding BOTH \
             l_extendedprice and ps_supplycost (modeled as 60M dictionary-bound \
             rows), 175 nation×year groups: cache-sensitive (paper: improves)",
            vec![
                Join {
                    build_keys: rows::PART,
                    probe_rows: rows::LINEITEM,
                },
                Join {
                    build_keys: rows::SUPPLIER,
                    probe_rows: rows::LINEITEM,
                },
                Aggregate {
                    rows: 60_000_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 175,
                },
            ],
        ),
        10 => (
            "returned item reporting",
            "~380k customer groups put the hash table at ~200 MB, well past the \
             LLC: bandwidth-bound despite the price dictionary",
            vec![
                Join {
                    build_keys: rows::ORDERS,
                    probe_rows: rows::LINEITEM,
                },
                Join {
                    build_keys: rows::CUSTOMER,
                    probe_rows: 57_000_000,
                },
                Aggregate {
                    rows: 15_000_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 380_000,
                },
            ],
        ),
        11 => (
            "important stock identification",
            "partsupp value per part: 1M groups, 0.8 MB dictionary — oversized \
             hash table, small dictionary",
            vec![
                Scan {
                    rows: rows::PARTSUPP,
                    bytes_per_row: 12,
                },
                Aggregate {
                    rows: 3_200_000,
                    dict_bytes: dict::PS_SUPPLYCOST,
                    groups: 1_000_000,
                },
            ],
        ),
        12 => (
            "shipping modes / order priority",
            "semi-join plus a 2-group count over tiny dictionaries",
            vec![
                Join {
                    build_keys: rows::ORDERS,
                    probe_rows: rows::LINEITEM,
                },
                Aggregate {
                    rows: 3_000_000,
                    dict_bytes: dict::TINY,
                    groups: 2,
                },
            ],
        ),
        13 => (
            "customer distribution",
            "order counts per customer then a 42-group histogram: streaming with \
             tiny dictionaries",
            vec![
                Join {
                    build_keys: rows::CUSTOMER,
                    probe_rows: rows::ORDERS,
                },
                Aggregate {
                    rows: rows::ORDERS,
                    dict_bytes: dict::TINY,
                    groups: 42,
                },
            ],
        ),
        14 => (
            "promotion effect",
            "the date predicate still scans all of lineitem; only one month \
             (~7.5M rows) survives into the join and the price-dictionary \
             aggregation, so the bandwidth-bound scan dominates",
            vec![
                Scan {
                    rows: rows::LINEITEM,
                    bytes_per_row: 8,
                },
                Join {
                    build_keys: rows::PART,
                    probe_rows: 7_500_000,
                },
                Aggregate {
                    rows: 7_500_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 2,
                },
            ],
        ),
        15 => (
            "top supplier",
            "revenue per supplier: 1M groups → ~550 MB hash table, bandwidth-bound",
            vec![
                Aggregate {
                    rows: 22_000_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 1_000_000,
                },
                Join {
                    build_keys: rows::SUPPLIER,
                    probe_rows: rows::SUPPLIER,
                },
            ],
        ),
        16 => (
            "parts/supplier relationship",
            "distinct-supplier counts over partsupp with enumerated-string \
             dictionaries: modest working set",
            vec![
                Scan {
                    rows: rows::PARTSUPP,
                    bytes_per_row: 8,
                },
                Aggregate {
                    rows: 47_000_000,
                    dict_bytes: dict::TINY,
                    groups: 18_000,
                },
            ],
        ),
        17 => (
            "small-quantity-order revenue",
            "a 0.1% part filter probed by all of lineitem; the final average is \
             over ~600k rows",
            vec![
                Join {
                    build_keys: rows::PART,
                    probe_rows: rows::LINEITEM,
                },
                Aggregate {
                    rows: 600_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 1,
                },
            ],
        ),
        18 => (
            "large volume customer",
            "groups by order key: ~150M groups, a multi-GB hash table — the \
             heaviest bandwidth consumer of the suite (the paper notes the \
             co-running scan speeds up most with Q18)",
            vec![
                Aggregate {
                    rows: rows::LINEITEM,
                    dict_bytes: dict::L_QUANTITY,
                    groups: rows::ORDERS,
                },
                Join {
                    build_keys: rows::ORDERS,
                    probe_rows: rows::LINEITEM,
                },
            ],
        ),
        19 => (
            "discounted revenue",
            "three narrow part/quantity predicates: ~120k rows reach the revenue sum",
            vec![
                Join {
                    build_keys: rows::PART,
                    probe_rows: rows::LINEITEM,
                },
                Aggregate {
                    rows: 120_000,
                    dict_bytes: dict::L_EXTENDEDPRICE,
                    groups: 1,
                },
            ],
        ),
        20 => (
            "potential part promotion",
            "half-year lineitem quantities per part: 2M groups → oversized hash table",
            vec![
                Join {
                    build_keys: rows::PART,
                    probe_rows: rows::PARTSUPP,
                },
                Aggregate {
                    rows: 30_000_000,
                    dict_bytes: dict::L_QUANTITY,
                    groups: 2_000_000,
                },
            ],
        ),
        21 => (
            "suppliers who kept orders waiting",
            "double lineitem pass against the 18.75 MB orders bit vector, then a \
             40k-group count: join-dominated",
            vec![
                Join {
                    build_keys: rows::SUPPLIER,
                    probe_rows: rows::LINEITEM,
                },
                Join {
                    build_keys: rows::ORDERS,
                    probe_rows: rows::LINEITEM,
                },
                Aggregate {
                    rows: 12_000_000,
                    dict_bytes: dict::TINY,
                    groups: 40_000,
                },
            ],
        ),
        22 => (
            "global sales opportunity",
            "customer-only query over the 9 MB acctbal dictionary: small and fast",
            vec![
                Scan {
                    rows: rows::CUSTOMER,
                    bytes_per_row: 10,
                },
                Aggregate {
                    rows: 1_900_000,
                    dict_bytes: dict::C_ACCTBAL,
                    groups: 7,
                },
            ],
        ),
        _ => panic!("TPC-H defines queries 1..=22, got {id}"),
    };
    QueryProfile {
        id,
        name,
        rationale,
        phases,
    }
}

/// Builds the simulated composite operator for query `id` in `space`.
///
/// # Panics
/// Panics when `id` is not in `1..=22`.
pub fn build_query(space: &mut AddrSpace, id: u8) -> Box<dyn SimOperator> {
    let prof = profile(id);
    let phases = prof
        .phases
        .iter()
        .map(|p| match *p {
            PhaseSpec::Scan {
                rows,
                bytes_per_row,
            } => {
                let scaled = (rows / ROW_SCALE).max(1);
                Phase {
                    op: Box::new(ColumnScanSim::new(space, scaled, bytes_per_row * 8)),
                    quota: scaled,
                }
            }
            PhaseSpec::Join {
                build_keys,
                probe_rows,
            } => {
                let scaled = (probe_rows / ROW_SCALE).max(1);
                let join = FkJoinSim::new(space, build_keys, scaled);
                let quota = join.cycle_rows();
                Phase {
                    op: Box::new(join),
                    quota,
                }
            }
            PhaseSpec::Aggregate {
                rows,
                dict_bytes,
                groups,
            } => {
                let scaled = (rows / ROW_SCALE).max(1);
                Phase {
                    op: Box::new(AggregationSim::paper_q2(space, scaled, dict_bytes, groups)),
                    quota: scaled,
                }
            }
        })
        .collect();
    Box::new(CompositeSim::new(format!("tpch-q{:02}", prof.id), phases))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_have_profiles() {
        for id in query_ids() {
            let p = profile(id);
            assert_eq!(p.id, id);
            assert!(!p.phases.is_empty(), "q{id} has no phases");
            assert!(!p.rationale.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "1..=22")]
    fn query_23_rejected() {
        let _ = profile(23);
    }

    #[test]
    fn q1_matches_paper_description() {
        let p = profile(1);
        assert_eq!(p.phases.len(), 1);
        match p.phases[0] {
            PhaseSpec::Aggregate {
                dict_bytes, groups, ..
            } => {
                assert_eq!(dict_bytes, dict::L_EXTENDEDPRICE);
                assert_eq!(groups, 4);
            }
            _ => panic!("Q1 must be a single aggregation"),
        }
    }

    #[test]
    fn sensitive_queries_use_the_price_dictionary_heavily() {
        // The paper: Q1, Q7, Q8, Q9 improve with partitioning. In the
        // model this corresponds to many aggregation rows through the
        // 29 MiB dictionary with an LLC-fitting hash table.
        for id in [1u8, 7, 8, 9] {
            let p = profile(id);
            let heavy = p.phases.iter().any(|ph| {
                matches!(ph, PhaseSpec::Aggregate { rows, dict_bytes, groups }
                    if *dict_bytes == dict::L_EXTENDEDPRICE
                        && *rows >= 30_000_000
                        && *groups * ccp_engine::sim::HT_BYTES_PER_GROUP
                            < 55 * 1024 * 1024)
            });
            assert!(heavy, "q{id} should be modeled as price-dictionary-heavy");
        }
    }

    #[test]
    fn all_queries_build() {
        let mut space = AddrSpace::new();
        for id in query_ids() {
            let q = build_query(&mut space, id);
            assert!(q.name().contains(&format!("q{id:02}")));
        }
    }

    #[test]
    fn built_queries_execute_deterministically() {
        use ccp_cachesim::{HierarchyConfig, MemoryHierarchy};
        let run = || {
            let mut space = AddrSpace::new();
            let mut q = build_query(&mut space, 6);
            let mut mem = MemoryHierarchy::new(HierarchyConfig::broadwell_e5_2699_v4(), 1);
            let mut work = 0;
            for _ in 0..200 {
                work += q.batch(&mut mem, 0);
            }
            (work, mem.clock(0))
        };
        assert_eq!(run(), run());
    }
}
