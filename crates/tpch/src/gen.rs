//! Miniature native TPC-H-like data generator.
//!
//! Generates small, distribution-faithful samples of the `lineitem` /
//! `orders` columns for exercising the *native* operators (`ccp-engine`'s
//! `ops`) in examples and integration tests. Not a dbgen replacement: the
//! simulated Figure 11 harness uses [`crate::queries`] instead.

use ccp_storage::gen as sgen;
use ccp_storage::{Column, DictColumn, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scaled-down `lineitem` with the columns the example queries need.
///
/// * `L_ORDERKEY` — foreign key into [`orders_sample`] (dense `1..=orders`).
/// * `L_QUANTITY` — uniform `1..=50` (per spec).
/// * `L_EXTENDEDPRICE` — wide-domain prices (≈ `rows/2` distinct values,
///   mirroring the real column's high NDV).
/// * `L_DISCOUNT` — uniform `0..=10` (percent, per spec).
pub fn lineitem_sample(rows: usize, orders: usize, seed: u64) -> Table {
    assert!(rows > 0 && orders > 0, "sample needs rows and orders");
    let mut rng = StdRng::seed_from_u64(seed);
    let orderkey: Vec<i64> = (0..rows)
        .map(|_| rng.gen_range(1..=orders as i64))
        .collect();
    let quantity: Vec<i64> = (0..rows).map(|_| rng.gen_range(1..=50)).collect();
    let price_domain = (rows as i64 / 2).max(10);
    let extendedprice: Vec<i64> = (0..rows)
        .map(|_| rng.gen_range(90_000..90_000 + price_domain))
        .collect();
    let discount: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..=10)).collect();
    // Return flag A/N/R and line status F/O, encoded as small integers
    // (0..3 and 0..2) with the spec's rough proportions.
    let returnflag: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..3)).collect();
    let linestatus: Vec<i64> = (0..rows).map(|_| rng.gen_range(0..2)).collect();

    let mut t = Table::new("lineitem");
    t.add_column("L_ORDERKEY", Column::Int(DictColumn::build(&orderkey)));
    t.add_column("L_QUANTITY", Column::Int(DictColumn::build(&quantity)));
    t.add_column(
        "L_EXTENDEDPRICE",
        Column::Int(DictColumn::build(&extendedprice)),
    );
    t.add_column("L_DISCOUNT", Column::Int(DictColumn::build(&discount)));
    t.add_column("L_RETURNFLAG", Column::Int(DictColumn::build(&returnflag)));
    t.add_column("L_LINESTATUS", Column::Int(DictColumn::build(&linestatus)));
    t
}

/// A scaled-down `orders` table: `O_ORDERKEY` is a shuffled dense primary
/// key `1..=rows`.
pub fn orders_sample(rows: usize, seed: u64) -> Table {
    let keys = sgen::primary_keys(rows, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
    let totalprice: Vec<i64> = (0..rows).map(|_| rng.gen_range(1_000..500_000)).collect();
    let mut t = Table::new("orders");
    t.add_column("O_ORDERKEY", Column::Int(DictColumn::build(&keys)));
    t.add_column("O_TOTALPRICE", Column::Int(DictColumn::build(&totalprice)));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineitem_has_spec_distributions() {
        let t = lineitem_sample(10_000, 1_000, 7);
        assert_eq!(t.row_count(), 10_000);
        assert_eq!(t.column_count(), 6);
        let Column::Int(q) = t.column("L_QUANTITY").unwrap() else {
            panic!()
        };
        // Quantity domain is 1..=50.
        assert!(q.dict().len() <= 50);
        for i in 0..100 {
            let v = *q.value_at(i);
            assert!((1..=50).contains(&v));
        }
        // Extended price has a wide domain.
        let Column::Int(p) = t.column("L_EXTENDEDPRICE").unwrap() else {
            panic!()
        };
        assert!(p.dict().len() > 1_000);
    }

    #[test]
    fn orders_keys_are_dense_primary_keys() {
        let t = orders_sample(1_000, 3);
        let Column::Int(k) = t.column("O_ORDERKEY").unwrap() else {
            panic!()
        };
        assert_eq!(k.dict().len(), 1_000); // all distinct
                                           // The dictionary is the sorted key set 1..=1000.
        assert_eq!(*k.dict().decode(0), 1);
        assert_eq!(*k.dict().decode(999), 1_000);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = lineitem_sample(100, 10, 1);
        let b = lineitem_sample(100, 10, 1);
        let Column::Int(ca) = a.column("L_EXTENDEDPRICE").unwrap() else {
            panic!()
        };
        let Column::Int(cb) = b.column("L_EXTENDEDPRICE").unwrap() else {
            panic!()
        };
        for i in 0..100 {
            assert_eq!(ca.value_at(i), cb.value_at(i));
        }
    }
}
