//! Property-based tests for the reuse cache: key canonicalization is
//! insensitive to conjunct order, spacing, case and duplication; and
//! the byte budget plus pinning invariants survive arbitrary
//! insert/lookup/bump sequences.

use ccp_reuse::{canonicalize_predicate, Artifact, ReuseCache, ReuseConfig, ReuseKey, TryBegin};
use ccp_storage::BitVec;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// One simple conjunct (`colN < V`) plus presentation noise: a sort
/// rank for permuting, a left/right padding width, and a case flag.
fn arb_conjunct() -> impl Strategy<Value = (String, u64, u8, bool)> {
    (0u8..5, 0u16..100, 0u64..1_000_000, 0u8..4, 0u8..2)
        .prop_map(|(c, v, rank, pad, upper)| (format!("col{c} < {v}"), rank, pad, upper == 1))
}

/// Decorates one conjunct with the generated noise: padding, tabs and
/// upper-casing — all of which canonicalization must erase.
fn decorate(text: &str, pad: u8, upper: bool) -> String {
    let body = if upper {
        text.to_uppercase()
    } else {
        text.to_string()
    };
    let spaces = " ".repeat(pad as usize);
    format!("{spaces}\t{body}{spaces}")
}

proptest! {
    /// Permuting conjuncts, injecting whitespace/tabs, changing case and
    /// duplicating a conjunct all canonicalize to the same predicate —
    /// so equivalent spellings share one cache entry.
    #[test]
    fn canonicalization_erases_order_spacing_case_and_duplicates(
        conjuncts in proptest::collection::vec(arb_conjunct(), 1..5),
    ) {
        let plain = conjuncts
            .iter()
            .map(|(text, ..)| text.as_str())
            .collect::<Vec<_>>()
            .join(" and ");

        // A permutation (sort by the generated ranks) with per-conjunct
        // decoration, joined with a differently-cased connective.
        let mut shuffled = conjuncts.clone();
        shuffled.sort_by_key(|&(_, rank, ..)| rank);
        let noisy = shuffled
            .iter()
            .map(|(text, _, pad, upper)| decorate(text, *pad, *upper))
            .collect::<Vec<_>>()
            .join(" AND ");

        let canon = canonicalize_predicate(&plain);
        prop_assert_eq!(&canonicalize_predicate(&noisy), &canon);

        // Repeating any conjunct is a no-op after dedup.
        let duplicated = format!("{plain} and {}", conjuncts[0].0);
        prop_assert_eq!(&canonicalize_predicate(&duplicated), &canon);
    }

    /// Two keys are equal exactly when their canonical predicates (and
    /// version) are — key identity is semantic, not syntactic.
    #[test]
    fn key_equality_follows_canonical_form(
        a in arb_conjunct(),
        b in arb_conjunct(),
        version in 0u64..4,
    ) {
        let ka = ReuseKey::new("q1", &a.0, version);
        let kb = ReuseKey::new("q1", &b.0, version);
        prop_assert_eq!(
            ka == kb,
            canonicalize_predicate(&a.0) == canonicalize_predicate(&b.0)
        );
        // The same predicate decorated differently is the same key.
        let kc = ReuseKey::new("q1", &decorate(&a.0, a.2, a.3), version);
        prop_assert_eq!(ka, kc);
    }
}

/// One step of the randomized cache exercise.
#[derive(Debug, Clone)]
enum Op {
    /// Get-or-compute for query `q`, installing a `words × 8`-byte bit
    /// vector on a miss.
    Insert { q: u8, words: u16 },
    /// Lookup only — never installs.
    Probe { q: u8 },
    /// Advance the data-version epoch.
    Bump,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 1u16..64).prop_map(|(q, words)| Op::Insert { q, words }),
        (0u8..6).prop_map(|q| Op::Probe { q }),
        Just(Op::Bump),
    ]
}

fn key_for(cache: &ReuseCache, q: u8) -> ReuseKey {
    cache.key(&format!("q{q}"), "x < 1")
}

fn bits_artifact(words: u16) -> Artifact {
    // BitVec footprint is words × 8 bytes (one u64 per 64 bits).
    Artifact::JoinBits(Arc::new(BitVec::zeros(words as u64 * 64)))
}

proptest! {
    /// Across arbitrary insert/probe/bump sequences the cache never
    /// exceeds its byte budget, and — single-threaded, so no `Pending`
    /// — every lookup resolves as exactly one hit or one miss.
    #[test]
    fn budget_and_counters_hold_under_arbitrary_ops(
        ops in proptest::collection::vec(arb_op(), 1..80),
    ) {
        const BUDGET: u64 = 256; // fits only a handful of entries
        let cache = ReuseCache::new(ReuseConfig::with_budget(BUDGET));
        let mut lookups = 0u64;
        for op in &ops {
            match op {
                Op::Insert { q, words } => {
                    lookups += 1;
                    if let TryBegin::Build(guard) = cache.try_begin(&key_for(&cache, *q)) {
                        guard.publish(bits_artifact(*words), Duration::from_micros(50));
                    }
                }
                Op::Probe { q } => {
                    lookups += 1;
                    if let TryBegin::Build(guard) = cache.try_begin(&key_for(&cache, *q)) {
                        drop(guard); // abandon: a probe never installs
                    }
                }
                Op::Bump => {
                    cache.bump_version();
                }
            }
            let stats = cache.stats();
            prop_assert!(
                stats.bytes <= BUDGET,
                "{} bytes exceed the {BUDGET}-byte budget after {op:?}",
                stats.bytes
            );
            prop_assert_eq!(stats.hits + stats.misses, lookups);
        }
    }

    /// An artifact a reader still holds (its `Arc` is shared) is never
    /// evicted, no matter how much insert pressure follows: the pinned
    /// entry keeps hitting and keeps returning the same allocation.
    #[test]
    fn pinned_entries_survive_arbitrary_insert_pressure(
        inserts in proptest::collection::vec((0u8..6, 1u16..64), 1..60),
    ) {
        const BUDGET: u64 = 256;
        let cache = ReuseCache::new(ReuseConfig::with_budget(BUDGET));
        let pinned_key = cache.key("pinned", "x < 1");
        let TryBegin::Build(guard) = cache.try_begin(&pinned_key) else {
            panic!("fresh cache must grant the build");
        };
        prop_assert!(guard.publish(bits_artifact(8), Duration::from_micros(50)));
        let TryBegin::Hit(artifact) = cache.try_begin(&pinned_key) else {
            panic!("just-published entry must hit");
        };
        let pinned = artifact.join_bits().expect("bit-vector artifact");

        // No bumps here: epoch invalidation legitimately removes even
        // shared entries; this property isolates *eviction*.
        for (q, words) in &inserts {
            if let TryBegin::Build(g) = cache.try_begin(&key_for(&cache, *q)) {
                g.publish(bits_artifact(*words), Duration::from_micros(50));
            }
            prop_assert!(cache.stats().bytes <= BUDGET);
            let TryBegin::Hit(again) = cache.try_begin(&pinned_key) else {
                panic!("pinned entry was evicted while a reader held it");
            };
            let held = again.join_bits().expect("bit-vector artifact");
            prop_assert!(
                Arc::ptr_eq(&pinned, &held),
                "pinned entry was replaced, not preserved"
            );
        }
    }
}
