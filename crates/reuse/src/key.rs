//! Canonicalized cache keys.
//!
//! Two textually different spellings of the same predicate must land on
//! the same cache entry, or the cache silently degrades into a miss
//! machine. Canonicalization is deliberately syntactic — no expression
//! parser — and normalizes exactly the two degrees of freedom our
//! query front end produces: whitespace and conjunct order.

use std::fmt;

/// The identity of a cacheable artifact: which query shape produced it
/// (`query_id`), under which canonicalized predicate, against which
/// data-version epoch. Keys with different versions never collide, so a
/// version bump invalidates without touching the map.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReuseKey {
    query_id: String,
    predicate: String,
    data_version: u64,
}

impl ReuseKey {
    /// Builds a key, canonicalizing `predicate` (see
    /// [`canonicalize_predicate`]).
    pub fn new(query_id: &str, predicate: &str, data_version: u64) -> Self {
        ReuseKey {
            query_id: query_id.to_string(),
            predicate: canonicalize_predicate(predicate),
            data_version,
        }
    }

    /// The workload name this key belongs to (`q1`, `tpch-5`, …).
    pub fn query_id(&self) -> &str {
        &self.query_id
    }

    /// The canonical predicate text.
    pub fn predicate(&self) -> &str {
        &self.predicate
    }

    /// The data-version epoch the key was minted under.
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// The version-independent part of the key, used for shard routing
    /// (the same logical query always lands on the same shard, whatever
    /// the epoch).
    pub(crate) fn shard_seed(&self) -> (&str, &str) {
        (&self.query_id, &self.predicate)
    }
}

impl fmt::Display for ReuseKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]@v{}",
            self.query_id, self.predicate, self.data_version
        )
    }
}

/// Normalizes a predicate string so equivalent spellings compare equal:
///
/// 1. lowercase (SQL keywords and identifiers are case-insensitive in
///    our front end);
/// 2. split into conjuncts on the `and` keyword;
/// 3. strip *all* whitespace inside each conjunct
///    (`threshold < 100` ≡ `threshold<100`);
/// 4. sort and deduplicate the conjuncts, then rejoin with ` and `.
///
/// The result is stable: canonicalizing a canonical string is a no-op.
pub fn canonicalize_predicate(raw: &str) -> String {
    let lowered = raw.to_ascii_lowercase();
    // Squash runs of whitespace so the `and` separators are uniform.
    let squashed = lowered.split_whitespace().collect::<Vec<_>>().join(" ");
    let mut conjuncts: Vec<String> = squashed
        .split(" and ")
        .map(|clause| clause.split_whitespace().collect::<String>())
        .filter(|clause| !clause.is_empty())
        .collect();
    conjuncts.sort();
    conjuncts.dedup();
    conjuncts.join(" and ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_and_case_are_normalized() {
        assert_eq!(
            canonicalize_predicate("  Threshold   <  100 "),
            "threshold<100"
        );
        assert_eq!(canonicalize_predicate("threshold<100"), "threshold<100");
    }

    #[test]
    fn conjunct_order_is_normalized() {
        let a = canonicalize_predicate("b = 2 AND a < 1");
        let b = canonicalize_predicate("a<1 and  B=2");
        assert_eq!(a, b);
        assert_eq!(a, "a<1 and b=2");
    }

    #[test]
    fn duplicate_conjuncts_collapse() {
        assert_eq!(canonicalize_predicate("x=1 and x = 1"), "x=1");
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let once = canonicalize_predicate("C=3 and a=1  AND b = 2");
        assert_eq!(canonicalize_predicate(&once), once);
    }

    #[test]
    fn keys_differ_by_version() {
        let k1 = ReuseKey::new("q1", "t<5", 0);
        let k2 = ReuseKey::new("q1", "t<5", 1);
        assert_ne!(k1, k2);
        assert_eq!(k1.shard_seed(), k2.shard_seed());
        assert_eq!(format!("{k1}"), "q1[t<5]@v0");
    }

    #[test]
    fn empty_predicate_is_legal() {
        let k = ReuseKey::new("q3", "", 0);
        assert_eq!(k.predicate(), "");
    }
}
