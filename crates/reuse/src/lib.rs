//! # ccp-reuse — footprint-aware intermediate/result reuse cache
//!
//! The paper's whole premise is that a query's cache footprint (its
//! CUID) decides how it should be scheduled and partitioned. A reuse
//! hit is the one event that *changes* a query's footprint at runtime:
//! an expensive aggregation whose hash table is already resident
//! becomes a near-free lookup, and the polluting scan whose result
//! count is memoized stops streaming gigabytes through the LLC
//! altogether. This crate supplies the cache; the server consults it
//! *before* CUID classification so a predicted hit is admitted under
//! the non-polluting class, and the adaptive controller then sees the
//! shifted CUID mix through the existing occupancy loop.
//!
//! ## Design
//!
//! * **Canonical keys.** Entries are keyed on a
//!   `(query_id, predicate, data_version)` triple ([`ReuseKey`]);
//!   predicates are canonicalized (whitespace squashed, conjuncts
//!   sorted) so `"b = 2 AND a < 1"` and `"a<1 and b=2"` share one
//!   entry.
//! * **Exactly our modeled artifacts.** [`Artifact`] stores what the
//!   engine's operators already build: aggregation hash tables
//!   ([`ccp_storage::AggHashTable`]), join bit vectors
//!   ([`ccp_storage::BitVec`]) and full result sets ([`ResultSet`]).
//! * **Byte-budgeted, cost-aware eviction.** Every entry carries its
//!   measured footprint and rebuild cost. When an install would
//!   overflow the budget, victims are chosen by *highest*
//!   `bytes / rebuild_cost` — the big-but-cheap entries go first, never
//!   plain LRU. `ccp_reuse_bytes` never exceeds the budget, and an
//!   entry whose artifact is currently borrowed by a reader is never
//!   evicted.
//! * **Single-flight get-or-compute.** Concurrent identical queries
//!   coalesce onto one builder: the first `begin()` returns a
//!   [`BuildGuard`], later ones block until the guard publishes (a
//!   coalesced hit) or is abandoned (the next waiter becomes the
//!   builder). A non-blocking [`ReuseCache::try_begin`] twin exists so
//!   the `ccp-verify` interleaving explorer can model-check the
//!   protocol step by step.
//! * **Epoch-based lazy invalidation.** [`ReuseCache::bump_version`]
//!   only increments a global data-version epoch; stale entries are
//!   swept out lazily, the first time their shard is touched in the
//!   new epoch, and counted as invalidations.
//!
//! Counters (`ccp_reuse_{hits,misses,inserts,evictions,invalidations,
//! coalesced,mispredictions}_total`) plus the `ccp_reuse_bytes` gauge
//! attach to any [`ccp_obs::Registry`] via
//! [`ReuseCache::register_into`], and every hit/miss/install/evict
//! drops a [`ccp_trace`] instant under the `reuse` category.
//!
//! ## Example
//!
//! ```
//! use ccp_reuse::{Artifact, Begin, ResultSet, ReuseCache, ReuseConfig};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let cache = ReuseCache::new(ReuseConfig::with_budget(1 << 20));
//! let key = cache.key("q1", "threshold < 100");
//! // First execution: build and publish.
//! match cache.begin(&key) {
//!     Begin::Build(guard) => {
//!         let rs = Arc::new(ResultSet { rows: 60_000, result: 119 });
//!         guard.publish(Artifact::ResultSet(rs), Duration::from_millis(3));
//!     }
//!     Begin::Hit(_) => unreachable!("cache starts empty"),
//! }
//! // Second execution: near-free lookup.
//! assert!(matches!(cache.begin(&key), Begin::Hit(_)));
//! // A data change invalidates lazily: new keys carry the new version.
//! cache.bump_version();
//! assert!(!cache.predict(&cache.key("q1", "threshold < 100")));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]
#![forbid(unsafe_code)]

mod cache;
mod key;

pub use cache::{
    Artifact, Begin, BuildGuard, ResultSet, ReuseCache, ReuseConfig, ReuseHandle, ReuseStats,
    TryBegin,
};
pub use key::{canonicalize_predicate, ReuseKey};

/// Failpoint name: the exec-time artifact lookup. Arming it (e.g.
/// `reuse.lookup=err@1`) makes [`ReuseCache::begin`]/`try_begin` treat a
/// published entry as vanished — the misprediction path a server hits
/// when an entry is evicted between admission and execution.
pub const FAULT_REUSE_LOOKUP: &str = "reuse.lookup";

/// Failpoint name: an artifact install. Arming it (e.g.
/// `reuse.install=err@every2`) makes [`BuildGuard::publish`] drop the
/// freshly built artifact instead of installing it; the builder's own
/// result is unaffected, waiters fall through to building themselves.
pub const FAULT_REUSE_INSTALL: &str = "reuse.install";

/// How a query interacted with the reuse cache, rendered into `/query`
/// responses so load generators can split hit-path and miss-path
/// latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReuseStatus {
    /// Served from a cached artifact.
    Hit,
    /// Built (and, fault plans permitting, installed) the artifact.
    Miss,
    /// The workload is not cacheable (or reuse is disabled).
    Bypass,
}

impl ReuseStatus {
    /// Stable lowercase label (`hit`/`miss`/`bypass`).
    pub fn label(self) -> &'static str {
        match self {
            ReuseStatus::Hit => "hit",
            ReuseStatus::Miss => "miss",
            ReuseStatus::Bypass => "bypass",
        }
    }
}
