//! The sharded, byte-budgeted artifact store with single-flight
//! get-or-compute and cost-aware eviction.
//!
//! ## Locking discipline
//!
//! Two lock kinds exist: one global *install* lock serializing every
//! byte-budget check-then-reserve, and one mutex (plus condvar) per
//! shard. The order is always install-lock → shard-lock; lookups and
//! purges take only their shard lock, and nothing blocks while holding
//! two shard locks at once (cross-shard eviction scans lock shards one
//! at a time). Because every *addition* to `total_bytes` happens under
//! the install lock after a fit check, and all other mutations only
//! subtract, the published byte count can never exceed the budget.

use crate::key::ReuseKey;
use crate::{ReuseStatus, FAULT_REUSE_INSTALL, FAULT_REUSE_LOOKUP};
use ccp_obs::{Counter, Gauge, Registry};
use ccp_storage::{AggHashTable, BitVec};
use ccp_trace::TraceCat;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// A memoized full query result: the row count the query reported
/// processing and its scalar result. Small (one entry is ~32 bytes of
/// footprint) but it converts a whole profile playback into a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultSet {
    /// Input rows the original execution processed.
    pub rows: u64,
    /// The workload-specific scalar result.
    pub result: i64,
}

/// One cached artifact — exactly the intermediates our operators model.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A merged grouped-aggregation hash table (paper Q2 / TPC-H 1).
    AggTable(Arc<AggHashTable>),
    /// A foreign-key join's build-side bit vector (paper Q3).
    JoinBits(Arc<BitVec>),
    /// A full memoized result set (selective scans, profile playback).
    ResultSet(Arc<ResultSet>),
}

impl Artifact {
    /// The artifact's accounted footprint in bytes.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Artifact::AggTable(t) => t.size_bytes(),
            Artifact::JoinBits(b) => b.size_bytes(),
            // rows + result + Arc bookkeeping, rounded up.
            Artifact::ResultSet(_) => 32,
        }
    }

    /// The aggregation table, if that is what this artifact holds.
    pub fn agg_table(&self) -> Option<Arc<AggHashTable>> {
        match self {
            Artifact::AggTable(t) => Some(Arc::clone(t)),
            _ => None,
        }
    }

    /// The join bit vector, if that is what this artifact holds.
    pub fn join_bits(&self) -> Option<Arc<BitVec>> {
        match self {
            Artifact::JoinBits(b) => Some(Arc::clone(b)),
            _ => None,
        }
    }

    /// The memoized result set, if that is what this artifact holds.
    pub fn result_set(&self) -> Option<Arc<ResultSet>> {
        match self {
            Artifact::ResultSet(r) => Some(Arc::clone(r)),
            _ => None,
        }
    }

    /// Whether a reader currently borrows the artifact (a clone of the
    /// inner `Arc` is alive outside the cache). Shared artifacts are
    /// never chosen as eviction victims.
    fn is_shared(&self) -> bool {
        match self {
            Artifact::AggTable(t) => Arc::strong_count(t) > 1,
            Artifact::JoinBits(b) => Arc::strong_count(b) > 1,
            Artifact::ResultSet(r) => Arc::strong_count(r) > 1,
        }
    }
}

/// Construction parameters for a [`ReuseCache`].
#[derive(Debug, Clone, Copy)]
pub struct ReuseConfig {
    /// Total artifact bytes the cache may hold.
    pub budget_bytes: u64,
    /// Number of shards (keys are hashed version-independently).
    pub shards: usize,
}

impl ReuseConfig {
    /// A config with the given budget and the default shard count (8).
    pub fn with_budget(budget_bytes: u64) -> Self {
        ReuseConfig {
            budget_bytes,
            shards: 8,
        }
    }
}

/// A published entry.
struct Entry {
    artifact: Artifact,
    bytes: u64,
    /// Measured build time in microseconds (≥ 1); the denominator of
    /// the eviction score.
    cost_us: u64,
    /// The epoch the entry was installed under.
    version: u64,
    /// Logical recency stamp (eviction tie-break only).
    last_hit: u64,
}

impl Entry {
    /// Cost-aware eviction score: bytes per microsecond of rebuild
    /// work. The *highest* score — big and cheap to rebuild — is
    /// evicted first.
    fn evict_score(&self) -> f64 {
        self.bytes as f64 / self.cost_us.max(1) as f64
    }
}

/// One key's slot: a published artifact, or a claim by the single
/// builder currently computing it.
enum Slot {
    Published(Entry),
    Building,
}

struct Shard {
    slots: HashMap<ReuseKey, Slot>,
    /// Epoch this shard last purged against; entries older than the
    /// global epoch are swept the first time the shard is touched.
    seen_version: u64,
}

struct ShardCell {
    state: Mutex<Shard>,
    /// Signalled on publish/abandon so single-flight waiters re-check.
    published: Condvar,
}

/// The non-blocking result of one lookup step (the unit the
/// `ccp-verify` harness interleaves).
pub enum TryBegin {
    /// A published artifact matched the key.
    Hit(Artifact),
    /// The caller is now the single builder for this key.
    Build(BuildGuard),
    /// Another builder holds the key; retry after it publishes or
    /// abandons ([`ReuseCache::begin`] blocks on the shard condvar).
    Pending,
}

/// The blocking result of [`ReuseCache::begin`].
pub enum Begin {
    /// A published artifact matched the key.
    Hit(Artifact),
    /// The caller is the single builder: compute the artifact, then
    /// [`BuildGuard::publish`] it (or drop the guard to abandon).
    Build(BuildGuard),
}

/// Point-in-time cache statistics (for `/stats.reuse`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReuseStats {
    /// Lookups served from a published artifact.
    pub hits: u64,
    /// Lookups that claimed a build.
    pub misses: u64,
    /// Artifacts installed.
    pub inserts: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Stale entries swept after a version bump (plus stale in-flight
    /// builds discarded at publish time).
    pub invalidations: u64,
    /// Lookups that waited for a concurrent builder and then hit.
    pub coalesced: u64,
    /// Predicted hits that had vanished by execution time.
    pub mispredictions: u64,
    /// Bytes currently accounted.
    pub bytes: u64,
    /// The configured budget.
    pub budget_bytes: u64,
    /// The current data-version epoch.
    pub data_version: u64,
    /// Published entries currently resident.
    pub entries: u64,
}

#[derive(Clone)]
struct Instruments {
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    evictions: Counter,
    invalidations: Counter,
    coalesced: Counter,
    mispredictions: Counter,
    bytes: Gauge,
}

impl Instruments {
    fn new() -> Self {
        Instruments {
            hits: Counter::new(),
            misses: Counter::new(),
            inserts: Counter::new(),
            evictions: Counter::new(),
            invalidations: Counter::new(),
            coalesced: Counter::new(),
            mispredictions: Counter::new(),
            bytes: Gauge::new(),
        }
    }
}

struct Inner {
    shards: Vec<ShardCell>,
    budget: u64,
    /// Serializes every budget check-then-reserve (see the module docs
    /// for the locking discipline).
    install: Mutex<()>,
    total_bytes: AtomicU64,
    version: AtomicU64,
    /// Logical clock for entry recency (eviction tie-break).
    tick: AtomicU64,
    m: Instruments,
}

/// The cache. Cloning shares state (an `Arc` inside), so the engine,
/// the admission path and the `/data/bump` route can all hold handles.
#[derive(Clone)]
pub struct ReuseCache {
    inner: Arc<Inner>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ReuseCache {
    /// Builds an empty cache.
    pub fn new(config: ReuseConfig) -> Self {
        let shards = config.shards.max(1);
        ReuseCache {
            inner: Arc::new(Inner {
                shards: (0..shards)
                    .map(|_| ShardCell {
                        state: Mutex::new(Shard {
                            slots: HashMap::new(),
                            seen_version: 0,
                        }),
                        published: Condvar::new(),
                    })
                    .collect(),
                budget: config.budget_bytes,
                install: Mutex::new(()),
                total_bytes: AtomicU64::new(0),
                version: AtomicU64::new(0),
                tick: AtomicU64::new(0),
                m: Instruments::new(),
            }),
        }
    }

    /// Mints a key for `query_id`/`predicate` under the *current*
    /// data-version epoch.
    pub fn key(&self, query_id: &str, predicate: &str) -> ReuseKey {
        ReuseKey::new(query_id, predicate, self.current_version())
    }

    /// The current data-version epoch.
    pub fn current_version(&self) -> u64 {
        // ORDERING: the epoch is a monotone counter; readers minting
        // keys only need *a* recent value — a stale read just produces
        // a key that the lazy purge treats as stale.
        self.inner.version.load(Ordering::Relaxed)
    }

    /// Bumps the data-version epoch and returns the new value. O(1):
    /// stale entries are swept lazily, the first time each shard is
    /// touched under the new epoch.
    pub fn bump_version(&self) -> u64 {
        // ORDERING: monotone epoch bump; purge correctness only needs
        // the new value to become visible eventually, and every lookup
        // re-reads it under the shard lock's synchronization.
        let v = self.inner.version.fetch_add(1, Ordering::Relaxed) + 1;
        ccp_trace::instant(TraceCat::Reuse, "reuse_version_bump");
        v
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.inner.budget
    }

    /// Bytes currently accounted to published artifacts.
    pub fn bytes(&self) -> u64 {
        // ORDERING: statistics read; mutations are guarded by the
        // install lock / shard locks.
        self.inner.total_bytes.load(Ordering::Relaxed)
    }

    /// Whether a lookup for `key` would hit *right now*. The admission
    /// path calls this before classification; no counters move (only
    /// exec-time lookups participate in `hits + misses == lookups`).
    pub fn predict(&self, key: &ReuseKey) -> bool {
        let cell = self.shard_for(key);
        let mut shard = lock(&cell.state);
        self.purge_locked(&mut shard);
        matches!(shard.slots.get(key), Some(Slot::Published(_)))
    }

    /// Non-blocking single-flight lookup step. [`ReuseCache::begin`] is
    /// the blocking composition; this twin exists so the interleaving
    /// explorer can drive the protocol one step at a time.
    pub fn try_begin(&self, key: &ReuseKey) -> TryBegin {
        self.try_begin_inner(key, false)
    }

    fn try_begin_inner(&self, key: &ReuseKey, waited: bool) -> TryBegin {
        let vanished = ccp_fault::should_fail(FAULT_REUSE_LOOKUP);
        let cell = self.shard_for(key);
        let mut shard = lock(&cell.state);
        self.purge_locked(&mut shard);
        match shard.slots.get_mut(key) {
            Some(Slot::Published(entry)) if !vanished => {
                // ORDERING: logical recency clock; only uniqueness-ish
                // monotonicity matters for the eviction tie-break.
                entry.last_hit = self.inner.tick.fetch_add(1, Ordering::Relaxed);
                let artifact = entry.artifact.clone();
                drop(shard);
                self.inner.m.hits.inc();
                if waited {
                    self.inner.m.coalesced.inc();
                }
                ccp_trace::instant(TraceCat::Reuse, "reuse_hit");
                TryBegin::Hit(artifact)
            }
            Some(Slot::Building) => TryBegin::Pending,
            other => {
                // A fault-forced "vanished" lookup drops the published
                // entry, exactly as if eviction had raced the query.
                if let Some(Slot::Published(entry)) = other {
                    let freed = entry.bytes;
                    shard.slots.remove(key);
                    self.sub_bytes(freed);
                }
                shard.slots.insert(key.clone(), Slot::Building);
                drop(shard);
                self.inner.m.misses.inc();
                ccp_trace::instant(TraceCat::Reuse, "reuse_miss");
                TryBegin::Build(BuildGuard {
                    cache: self.clone(),
                    key: key.clone(),
                    done: false,
                })
            }
        }
    }

    /// Blocking single-flight lookup: returns a hit, or makes the
    /// caller the single builder. Concurrent callers with the same key
    /// wait (on the shard condvar) for the builder to publish; if the
    /// builder abandons, one waiter takes over.
    pub fn begin(&self, key: &ReuseKey) -> Begin {
        let mut waited = false;
        loop {
            match self.try_begin_inner(key, waited) {
                TryBegin::Hit(a) => return Begin::Hit(a),
                TryBegin::Build(g) => return Begin::Build(g),
                TryBegin::Pending => {
                    waited = true;
                    let cell = self.shard_for(key);
                    let shard = lock(&cell.state);
                    if matches!(shard.slots.get(key), Some(Slot::Building)) {
                        // Bounded wait: a missed wakeup (or an epoch
                        // bump racing the builder) degrades to a
                        // re-check, never a hang.
                        let _ = cell
                            .published
                            .wait_timeout(shard, Duration::from_millis(20))
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        }
    }

    /// Records a misprediction: admission predicted a hit, but the
    /// entry had vanished by execution time.
    pub fn note_misprediction(&self) {
        self.inner.m.mispredictions.inc();
        ccp_trace::instant(TraceCat::Reuse, "reuse_mispredict");
    }

    /// Attaches the `ccp_reuse_*` instruments to `registry`.
    pub fn register_into(&self, registry: &Registry) {
        let m = &self.inner.m;
        let counters: [(&str, &str, &Counter); 7] = [
            (
                "ccp_reuse_hits_total",
                "Reuse-cache lookups served from a published artifact",
                &m.hits,
            ),
            (
                "ccp_reuse_misses_total",
                "Reuse-cache lookups that claimed a build",
                &m.misses,
            ),
            (
                "ccp_reuse_inserts_total",
                "Artifacts installed into the reuse cache",
                &m.inserts,
            ),
            (
                "ccp_reuse_evictions_total",
                "Entries evicted by the byte budget (highest bytes/rebuild-cost first)",
                &m.evictions,
            ),
            (
                "ccp_reuse_invalidations_total",
                "Stale entries swept after a data-version bump",
                &m.invalidations,
            ),
            (
                "ccp_reuse_coalesced_total",
                "Lookups that waited for a concurrent builder and then hit",
                &m.coalesced,
            ),
            (
                "ccp_reuse_mispredictions_total",
                "Predicted hits that had vanished by execution time",
                &m.mispredictions,
            ),
        ];
        for (name, help, counter) in counters {
            registry
                .counter_family(name, help)
                .register(&[], (*counter).clone());
        }
        registry
            .gauge_family(
                "ccp_reuse_bytes",
                "Bytes currently held by reuse-cache artifacts (never exceeds the budget)",
            )
            .register(&[], m.bytes.clone());
    }

    /// Point-in-time statistics (for `/stats.reuse`).
    pub fn stats(&self) -> ReuseStats {
        let m = &self.inner.m;
        let entries = self
            .inner
            .shards
            .iter()
            .map(|cell| {
                lock(&cell.state)
                    .slots
                    .values()
                    .filter(|s| matches!(s, Slot::Published(_)))
                    .count() as u64
            })
            .sum();
        ReuseStats {
            hits: m.hits.get(),
            misses: m.misses.get(),
            inserts: m.inserts.get(),
            evictions: m.evictions.get(),
            invalidations: m.invalidations.get(),
            coalesced: m.coalesced.get(),
            mispredictions: m.mispredictions.get(),
            bytes: self.bytes(),
            budget_bytes: self.inner.budget,
            data_version: self.current_version(),
            entries,
        }
    }

    fn shard_for(&self, key: &ReuseKey) -> &ShardCell {
        let mut h = DefaultHasher::new();
        key.shard_seed().hash(&mut h);
        let idx = (h.finish() as usize) % self.inner.shards.len();
        &self.inner.shards[idx]
    }

    /// Sweeps entries older than the current epoch out of a locked
    /// shard; first touch per shard per epoch, amortized O(1).
    fn purge_locked(&self, shard: &mut Shard) {
        let version = self.current_version();
        if shard.seen_version == version {
            return;
        }
        shard.seen_version = version;
        let mut freed = 0u64;
        let mut swept = 0u64;
        shard.slots.retain(|key, slot| match slot {
            Slot::Published(entry) if entry.version < version => {
                let _ = key;
                freed += entry.bytes;
                swept += 1;
                false
            }
            // Building claims survive: their publish notices the stale
            // epoch and discards the artifact itself.
            _ => true,
        });
        if swept > 0 {
            self.sub_bytes(freed);
            self.inner.m.invalidations.add(swept);
            ccp_trace::instant(TraceCat::Reuse, "reuse_invalidate");
        }
    }

    fn sub_bytes(&self, n: u64) {
        // ORDERING: statistics-grade accounting; the budget invariant
        // is enforced by additions under the install lock, and
        // subtractions can only move the total further below budget.
        self.inner.total_bytes.fetch_sub(n, Ordering::Relaxed);
        self.inner.m.bytes.set(self.bytes() as f64);
    }

    /// Evicts until `incoming` fits in the budget. Called with the
    /// install lock held. Returns `false` when not enough unpinned
    /// bytes exist (the incoming artifact is then not installed, so the
    /// budget invariant holds either way).
    fn make_room(&self, incoming: u64) -> bool {
        if incoming > self.inner.budget {
            return false;
        }
        while self.bytes() + incoming > self.inner.budget {
            let mut victim: Option<(usize, ReuseKey, f64, u64)> = None;
            for (idx, cell) in self.inner.shards.iter().enumerate() {
                let shard = lock(&cell.state);
                for (key, slot) in &shard.slots {
                    let Slot::Published(entry) = slot else {
                        continue;
                    };
                    if entry.artifact.is_shared() {
                        continue; // a reader holds it: not a victim
                    }
                    let score = entry.evict_score();
                    let better = match &victim {
                        None => true,
                        Some((_, _, best, last_hit)) => {
                            score > *best || (score == *best && entry.last_hit < *last_hit)
                        }
                    };
                    if better {
                        victim = Some((idx, key.clone(), score, entry.last_hit));
                    }
                }
            }
            let Some((idx, key, _, _)) = victim else {
                return false; // everything left is pinned or building
            };
            let cell = &self.inner.shards[idx];
            let mut shard = lock(&cell.state);
            // Re-check under the lock: a reader may have pinned the
            // victim between the scan and now.
            let evictable = matches!(
                shard.slots.get(&key),
                Some(Slot::Published(e)) if !e.artifact.is_shared()
            );
            if evictable {
                if let Some(Slot::Published(entry)) = shard.slots.remove(&key) {
                    drop(shard);
                    self.sub_bytes(entry.bytes);
                    self.inner.m.evictions.inc();
                    ccp_trace::instant(TraceCat::Reuse, "reuse_evict");
                }
            }
            // If the victim got pinned, loop and pick another.
        }
        true
    }

    /// Installs `artifact` for `key`, replacing the caller's Building
    /// claim. Returns whether the artifact was actually published.
    fn install(&self, key: &ReuseKey, artifact: Artifact, cost: Duration) -> bool {
        let bytes = artifact.size_bytes();
        let reserved = {
            let _g = lock(&self.inner.install);
            if self.make_room(bytes) {
                // ORDERING: the reserve itself; the fit check above ran
                // under the install lock, and concurrent mutations only
                // subtract, so this add cannot overshoot the budget.
                self.inner.total_bytes.fetch_add(bytes, Ordering::Relaxed);
                true
            } else {
                false
            }
        };
        let stale = key.data_version() < self.current_version();
        let cell = self.shard_for(key);
        let mut shard = lock(&cell.state);
        // Whatever happens, the Building claim is released.
        if matches!(shard.slots.get(key), Some(Slot::Building)) {
            shard.slots.remove(key);
        }
        let published = reserved && !stale;
        if published {
            let cost_us = (cost.as_micros() as u64).max(1);
            // ORDERING: logical recency clock (see try_begin_inner).
            let last_hit = self.inner.tick.fetch_add(1, Ordering::Relaxed);
            shard.slots.insert(
                key.clone(),
                Slot::Published(Entry {
                    artifact,
                    bytes,
                    cost_us,
                    version: key.data_version(),
                    last_hit,
                }),
            );
        }
        cell.published.notify_all();
        drop(shard);
        if published {
            self.inner.m.bytes.set(self.bytes() as f64);
            self.inner.m.inserts.inc();
            ccp_trace::instant(TraceCat::Reuse, "reuse_install");
        } else if reserved {
            // Reserved but stale: a version bump raced the build.
            self.sub_bytes(bytes);
            self.inner.m.invalidations.inc();
        }
        published
    }

    /// Releases a Building claim without publishing; one waiter (if
    /// any) becomes the next builder.
    fn abandon(&self, key: &ReuseKey) {
        let cell = self.shard_for(key);
        let mut shard = lock(&cell.state);
        if matches!(shard.slots.get(key), Some(Slot::Building)) {
            shard.slots.remove(key);
        }
        cell.published.notify_all();
    }
}

/// The single builder's claim on a key (see [`Begin::Build`]).
/// Dropping the guard without publishing abandons the claim.
pub struct BuildGuard {
    cache: ReuseCache,
    key: ReuseKey,
    done: bool,
}

impl BuildGuard {
    /// The key this guard claims.
    pub fn key(&self) -> &ReuseKey {
        &self.key
    }

    /// Publishes the built artifact with its measured rebuild cost.
    /// Returns `false` when the artifact was dropped instead: the
    /// `reuse.install` failpoint fired, the artifact did not fit the
    /// budget next to pinned entries, or a version bump made the key
    /// stale mid-build.
    pub fn publish(mut self, artifact: Artifact, cost: Duration) -> bool {
        self.done = true;
        if ccp_fault::should_fail(FAULT_REUSE_INSTALL) {
            ccp_trace::instant(TraceCat::Reuse, "reuse_install_failed");
            self.cache.abandon(&self.key);
            return false;
        }
        self.cache.install(&self.key, artifact, cost)
    }
}

impl Drop for BuildGuard {
    fn drop(&mut self) {
        if !self.done {
            self.cache.abandon(&self.key);
        }
    }
}

/// One query's pre-bound view of the cache: the shared cache plus the
/// query's canonical key. Engine operators take `Option<&ReuseHandle>`
/// and capture/install artifacts through it without knowing how keys
/// are minted.
pub struct ReuseHandle {
    cache: ReuseCache,
    key: ReuseKey,
}

impl ReuseHandle {
    /// Binds `key` to `cache`.
    pub fn new(cache: ReuseCache, key: ReuseKey) -> Self {
        ReuseHandle { cache, key }
    }

    /// The bound key.
    pub fn key(&self) -> &ReuseKey {
        &self.key
    }

    /// Blocking single-flight lookup for the bound key.
    pub fn begin(&self) -> Begin {
        self.cache.begin(&self.key)
    }

    /// Status label helper: `Hit` for a hit, `Miss` otherwise.
    pub fn status_of(begin: &Begin) -> ReuseStatus {
        match begin {
            Begin::Hit(_) => ReuseStatus::Hit,
            Begin::Build(_) => ReuseStatus::Miss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(budget: u64) -> ReuseCache {
        ReuseCache::new(ReuseConfig {
            budget_bytes: budget,
            shards: 4,
        })
    }

    fn result_artifact(rows: u64, result: i64) -> Artifact {
        Artifact::ResultSet(Arc::new(ResultSet { rows, result }))
    }

    #[test]
    fn build_then_hit_round_trip() {
        let c = cache(1 << 16);
        let key = c.key("q1", "t<100");
        let Begin::Build(guard) = c.begin(&key) else {
            panic!("empty cache must miss");
        };
        assert!(guard.publish(result_artifact(10, 7), Duration::from_micros(500)));
        let Begin::Hit(a) = c.begin(&key) else {
            panic!("published entry must hit");
        };
        assert_eq!(a.result_set().map(|r| r.result), Some(7));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
        assert_eq!(s.hits + s.misses, 2, "hits + misses == lookups");
        assert_eq!(s.entries, 1);
        assert!(s.bytes > 0 && s.bytes <= s.budget_bytes);
    }

    #[test]
    fn abandoned_build_lets_the_next_caller_build() {
        let c = cache(1 << 16);
        let key = c.key("q1", "t<1");
        let Begin::Build(guard) = c.begin(&key) else {
            panic!("must miss");
        };
        drop(guard); // abandon
        assert!(matches!(c.begin(&key), Begin::Build(_)));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn single_flight_coalesces_concurrent_identical_queries() {
        let c = cache(1 << 16);
        let key = c.key("q2", "agg=sum");
        let Begin::Build(guard) = c.begin(&key) else {
            panic!("must miss");
        };
        let waiter = {
            let c = c.clone();
            let key = key.clone();
            std::thread::spawn(move || match c.begin(&key) {
                Begin::Hit(a) => a.result_set().map(|r| r.result),
                Begin::Build(_) => None,
            })
        };
        // Give the waiter a moment to park on the condvar.
        std::thread::sleep(Duration::from_millis(30));
        assert!(guard.publish(result_artifact(5, 42), Duration::from_micros(900)));
        assert_eq!(waiter.join().ok().flatten(), Some(42));
        let s = c.stats();
        assert_eq!(s.coalesced, 1, "the waiter hit without building");
        assert_eq!(s.hits + s.misses, 2);
    }

    #[test]
    fn version_bump_invalidates_lazily() {
        let c = cache(1 << 16);
        let key = c.key("q1", "t<5");
        if let Begin::Build(g) = c.begin(&key) {
            g.publish(result_artifact(1, 1), Duration::from_micros(10));
        }
        assert!(c.predict(&key));
        let v = c.bump_version();
        assert_eq!(v, 1);
        // The old-version key no longer predicts, the new one misses.
        let fresh = c.key("q1", "t<5");
        assert!(!c.predict(&fresh));
        assert!(matches!(c.begin(&fresh), Begin::Build(_)));
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0, "invalidation returns the bytes");
    }

    #[test]
    fn stale_build_is_discarded_at_publish() {
        let c = cache(1 << 16);
        let key = c.key("q1", "t<5");
        let Begin::Build(guard) = c.begin(&key) else {
            panic!("must miss");
        };
        c.bump_version();
        assert!(!guard.publish(result_artifact(1, 1), Duration::from_micros(10)));
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert!(s.invalidations >= 1);
    }

    #[test]
    fn eviction_is_cost_aware_not_lru() {
        // Two bit vectors: same bytes, one cheap to rebuild, one
        // expensive. The cheap one must be the victim even though the
        // expensive one is older.
        let c = cache(300);
        let expensive = c.key("join", "big");
        if let Begin::Build(g) = c.begin(&expensive) {
            let bits = Arc::new(BitVec::zeros(1024)); // 128 bytes
            g.publish(Artifact::JoinBits(bits), Duration::from_millis(50));
        }
        let cheap = c.key("join", "small");
        if let Begin::Build(g) = c.begin(&cheap) {
            let bits = Arc::new(BitVec::zeros(1024)); // 128 bytes
            g.publish(Artifact::JoinBits(bits), Duration::from_micros(2));
        }
        // 256 of 300 bytes used; a third 128-byte entry forces one out.
        let third = c.key("join", "third");
        if let Begin::Build(g) = c.begin(&third) {
            let bits = Arc::new(BitVec::zeros(1024));
            g.publish(Artifact::JoinBits(bits), Duration::from_millis(10));
        }
        assert!(c.predict(&expensive), "high rebuild cost is retained");
        assert!(!c.predict(&cheap), "cheap-to-rebuild entry evicted");
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.budget_bytes);
    }

    #[test]
    fn pinned_entries_are_never_evicted() {
        let c = cache(300);
        let pinned_key = c.key("join", "pinned");
        if let Begin::Build(g) = c.begin(&pinned_key) {
            g.publish(
                Artifact::JoinBits(Arc::new(BitVec::zeros(1600))), // 200 B
                Duration::from_micros(1),
            );
        }
        // Hold a reader reference: strong count > 1.
        let Begin::Hit(held) = c.begin(&pinned_key) else {
            panic!("must hit");
        };
        // This install cannot fit without evicting the pinned entry,
        // so it must be refused — never evict what a reader holds.
        let other = c.key("join", "other");
        if let Begin::Build(g) = c.begin(&other) {
            assert!(!g.publish(
                Artifact::JoinBits(Arc::new(BitVec::zeros(1600))),
                Duration::from_micros(1),
            ));
        }
        assert!(c.predict(&pinned_key));
        assert!(c.bytes() <= c.budget_bytes());
        // Release the pin; now the same install succeeds by evicting.
        drop(held);
        if let Begin::Build(g) = c.begin(&other) {
            assert!(g.publish(
                Artifact::JoinBits(Arc::new(BitVec::zeros(1600))),
                Duration::from_micros(1),
            ));
        }
        assert!(!c.predict(&c.key("join", "pinned")));
    }

    #[test]
    fn oversized_artifact_is_refused_outright() {
        let c = cache(64);
        let key = c.key("join", "huge");
        if let Begin::Build(g) = c.begin(&key) {
            assert!(!g.publish(
                Artifact::JoinBits(Arc::new(BitVec::zeros(1 << 20))),
                Duration::from_secs(1),
            ));
        }
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.stats().inserts, 0);
    }

    #[test]
    fn lookup_failpoint_forces_the_vanished_entry_path() {
        let c = cache(1 << 16);
        let key = c.key("q1", "t<9");
        if let Begin::Build(g) = c.begin(&key) {
            g.publish(result_artifact(3, 3), Duration::from_micros(10));
        }
        ccp_fault::install_str("reuse.lookup=err@1").expect("plan parses");
        // The armed lookup treats the entry as vanished: a miss, and
        // the entry is gone afterwards (as if evicted mid-flight).
        assert!(matches!(c.begin(&key), Begin::Build(_)));
        ccp_fault::clear();
        assert_eq!(c.stats().entries, 0);
        assert_eq!(c.bytes(), 0);
    }

    #[test]
    fn install_failpoint_drops_the_artifact() {
        let c = cache(1 << 16);
        ccp_fault::install_str("reuse.install=err@1").expect("plan parses");
        let key = c.key("q1", "t<9");
        if let Begin::Build(g) = c.begin(&key) {
            assert!(!g.publish(result_artifact(3, 3), Duration::from_micros(10)));
        }
        ccp_fault::clear();
        assert_eq!(c.stats().inserts, 0);
        assert!(matches!(c.begin(&key), Begin::Build(_)), "still a miss");
    }

    #[test]
    fn handle_wraps_begin_and_reports_status() {
        let c = cache(1 << 16);
        let h = ReuseHandle::new(c.clone(), c.key("q2", "agg=max"));
        let b = h.begin();
        assert_eq!(ReuseHandle::status_of(&b), crate::ReuseStatus::Miss);
        if let Begin::Build(g) = b {
            g.publish(
                Artifact::AggTable(Arc::new(AggHashTable::new(ccp_storage::Aggregate::Max, 8))),
                Duration::from_micros(40),
            );
        }
        let b = h.begin();
        assert_eq!(ReuseHandle::status_of(&b), crate::ReuseStatus::Hit);
        if let Begin::Hit(a) = b {
            assert!(a.agg_table().is_some());
            assert!(a.join_bits().is_none());
        }
    }
}
